"""Exception hierarchy for the Snowcat reproduction.

All library-specific failures derive from :class:`ReproError` so callers can
catch a single base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class KernelBuildError(ReproError):
    """Raised when a synthetic kernel cannot be constructed as requested."""


class ExecutionError(ReproError):
    """Raised when the interpreter encounters an invalid machine state."""


class ExecutionLimitExceeded(ExecutionError):
    """Raised when an execution exceeds its instruction budget.

    Used to bound runaway loops in the synthetic kernel; executors treat it
    as a failed (but recorded) test rather than a crash of the framework.
    """


class InvalidInstruction(ExecutionError):
    """Raised when the interpreter decodes an unknown or malformed opcode."""


class WorkerCrashError(ExecutionError):
    """Raised when a supervised worker process dies mid-execution.

    The supervisor converts crashes into retries (and eventually a
    quarantined result); this error only escapes when supervision is off.
    """


class ScheduleError(ReproError):
    """Raised when scheduling hints are inconsistent (e.g. unknown thread)."""


class FaultSpecError(ReproError):
    """Raised when a fault-injection spec string cannot be parsed."""


class JournalError(ReproError):
    """Raised when a campaign journal is corrupt or inconsistent with the
    run being resumed (wrong seed, wrong CTI stream, missing checkpoint)."""


class OracleError(ReproError):
    """Raised when a ground-truth oracle cannot be constructed or applied."""


class OracleLimitError(OracleError):
    """Raised when exhaustive exploration exceeds one of its bounds.

    Exceeding a budget means the derived sets would be *partial* ground
    truth, which is worse than no ground truth — conformance checks against
    them could pass vacuously or fail spuriously — so the explorer refuses
    to return them.

    ``limit`` names the bound that was hit (``"threads"``, ``"steps"``,
    ``"schedules"``, ...) and ``observed`` carries the offending value, so
    callers can distinguish "CT too large for this oracle configuration"
    from "exploration blew its budget" programmatically.
    """

    def __init__(self, message, *, limit=None, observed=None):
        super().__init__(message)
        self.limit = limit
        self.observed = observed


class QualityGateError(OracleError):
    """Raised when a model-quality baseline is missing, malformed, or was
    produced under different pinned-configuration settings than the run
    being gated (comparing those numbers would be meaningless)."""


class DatasetError(ReproError):
    """Raised when a graph dataset is malformed or empty."""


class ModelError(ReproError):
    """Raised on invalid model configuration or shape mismatches."""


class ServeError(ReproError):
    """Raised when the prediction service cannot satisfy a request
    (unknown model version, server unreachable, server-side failure)."""


class AdmissionError(ServeError):
    """Raised when the micro-batcher's bounded queue rejects a request.

    Only raised under the non-blocking admission policy; the default
    policy applies backpressure (blocks the submitter) instead.
    """


class ProtocolError(ServeError):
    """Raised on a malformed frame or payload on the serving socket."""


class CheckpointError(ModelError):
    """Raised when a model checkpoint cannot be saved or restored."""


class FleetError(ReproError):
    """Raised when a distributed campaign fleet cannot make progress
    (a job exhausted its attempt budget, every worker is quarantined,
    or a provenance receipt fails verification)."""
