"""Differential conformance harness: declarative "fast == slow" checks.

Scattered across the test suite are equivalence assertions of the same
shape — the batched scorer must reproduce the per-graph scorer, the
process-pool runner must reproduce the serial runner, a journaled
campaign must replay byte-identically.  :class:`DifferentialRunner`
lifts that shape into one declarative API: register named checks as
``(reference thunk, candidate thunk, comparator)`` triples, run them
all, and get back a :class:`ConformanceReport` of structured
:class:`Mismatch` records instead of a bare ``assert``.

Every check and mismatch is wired into :mod:`repro.obs` (counters
``oracle.checks`` / ``oracle.mismatches`` and one ``oracle.mismatch``
event per discrepancy), so a conformance sweep inside a larger run
leaves an audit trail in the trace.

Comparators are plain callables ``(reference, candidate) -> [(field,
detail), ...]`` returning an *empty* list on agreement; the runner
stamps the check name onto each pair to build :class:`Mismatch`
records.  Factory helpers below pre-package the repo's three recurring
check families (scoring, execution runners, campaigns).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import OracleError

__all__ = [
    "Mismatch",
    "CheckOutcome",
    "ConformanceReport",
    "DifferentialRunner",
    "compare_equal",
    "compare_array_sequences",
    "compare_campaigns",
    "add_scoring_checks",
    "add_runner_checks",
    "add_campaign_check",
]

#: (field, detail) pairs; empty means the two values agree.
Comparator = Callable[[object, object], List[Tuple[str, str]]]

#: Campaign fields compared by :func:`compare_campaigns` — the exact set
#: the hand-written equivalence tests pinned before this harness existed.
CAMPAIGN_FIELDS: Tuple[str, ...] = (
    "history",
    "bug_history",
    "manifested_bugs",
    "ledger.executions",
    "ledger.inferences",
    "ledger.total_hours",
    "per_cti",
)


@dataclass(frozen=True)
class Mismatch:
    """One structured disagreement between reference and candidate."""

    check: str
    field: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.check}: {self.field}: {self.detail}"


@dataclass(frozen=True)
class CheckOutcome:
    """The result of running a single registered check."""

    name: str
    mismatches: Tuple[Mismatch, ...]

    @property
    def passed(self) -> bool:
        return not self.mismatches


@dataclass(frozen=True)
class ConformanceReport:
    """Aggregate of every check outcome from one :meth:`DifferentialRunner.run`."""

    runner: str
    outcomes: Tuple[CheckOutcome, ...]

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def mismatches(self) -> Tuple[Mismatch, ...]:
        return tuple(
            mismatch
            for outcome in self.outcomes
            for mismatch in outcome.mismatches
        )

    def summary(self) -> str:
        """Human-readable pass/fail roll-up, one line per check."""
        lines = [
            f"conformance[{self.runner}]: "
            f"{sum(o.passed for o in self.outcomes)}/{len(self.outcomes)} "
            "checks passed"
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.passed else "MISMATCH"
            lines.append(f"  {outcome.name}: {status}")
            for mismatch in outcome.mismatches:
                lines.append(f"    {mismatch.field}: {mismatch.detail}")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.passed:
            raise OracleError(self.summary())


def _describe(value: object, limit: int = 120) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


# -- comparators ---------------------------------------------------------------


def compare_equal(reference: object, candidate: object) -> List[Tuple[str, str]]:
    """Plain ``==`` with a bounded repr diff on disagreement."""
    if reference == candidate:
        return []
    return [
        (
            "value",
            f"reference={_describe(reference)} candidate={_describe(candidate)}",
        )
    ]


def compare_array_sequences(atol: float = 1e-9) -> Comparator:
    """Element-wise comparison of two same-length sequences of arrays."""

    def compare(reference: object, candidate: object) -> List[Tuple[str, str]]:
        ref = list(reference)  # type: ignore[arg-type]
        cand = list(candidate)  # type: ignore[arg-type]
        if len(ref) != len(cand):
            return [("length", f"reference={len(ref)} candidate={len(cand)}")]
        problems: List[Tuple[str, str]] = []
        for index, (one, many) in enumerate(zip(ref, cand)):
            one = np.asarray(one)
            many = np.asarray(many)
            if one.shape != many.shape:
                problems.append(
                    (f"[{index}].shape", f"{one.shape} != {many.shape}")
                )
            elif not np.allclose(one, many, rtol=0.0, atol=atol):
                worst = float(np.max(np.abs(one - many))) if one.size else 0.0
                problems.append(
                    (f"[{index}]", f"max abs deviation {worst:g} > atol {atol:g}")
                )
        return problems

    return compare


def _lookup(value: object, dotted: str) -> object:
    for part in dotted.split("."):
        value = getattr(value, part)
    return value


def compare_campaigns(reference: object, candidate: object) -> List[Tuple[str, str]]:
    """Field-by-field :data:`CAMPAIGN_FIELDS` comparison of campaign results."""
    problems: List[Tuple[str, str]] = []
    for dotted in CAMPAIGN_FIELDS:
        one = _lookup(reference, dotted)
        many = _lookup(candidate, dotted)
        if one != many:
            problems.append(
                (dotted, f"reference={_describe(one)} candidate={_describe(many)}")
            )
    return problems


# -- the runner ----------------------------------------------------------------


@dataclass(frozen=True)
class _Check:
    name: str
    reference: Callable[[], object]
    candidate: Callable[[], object]
    comparator: Comparator = field(default=compare_equal)


class DifferentialRunner:
    """Collect named differential checks and run them as one report.

    Thunks are evaluated lazily at :meth:`run` time (reference first,
    then candidate), so registering a check costs nothing and expensive
    setups can be shared via closures.
    """

    def __init__(self, name: str = "conformance") -> None:
        self.name = name
        self._checks: List[_Check] = []

    def add(
        self,
        name: str,
        reference: Callable[[], object],
        candidate: Callable[[], object],
        comparator: Optional[Comparator] = None,
    ) -> "DifferentialRunner":
        """Register a check; returns ``self`` for chaining."""
        self._checks.append(
            _Check(name, reference, candidate, comparator or compare_equal)
        )
        return self

    def __len__(self) -> int:
        return len(self._checks)

    def run(self) -> ConformanceReport:
        """Evaluate every registered check, never short-circuiting.

        A later check still runs after an earlier one mismatches: the
        report is most useful when it shows the full agreement surface,
        not just the first crack in it.
        """
        outcomes: List[CheckOutcome] = []
        with obs.span("oracle.conformance", runner=self.name, checks=len(self._checks)):
            for check in self._checks:
                obs.add("oracle.checks")
                reference = check.reference()
                candidate = check.candidate()
                pairs = check.comparator(reference, candidate)
                mismatches = tuple(
                    Mismatch(check=check.name, field=where, detail=detail)
                    for where, detail in pairs
                )
                if mismatches:
                    obs.add("oracle.mismatches", len(mismatches))
                    for mismatch in mismatches:
                        obs.point(
                            "oracle.mismatch",
                            runner=self.name,
                            check=mismatch.check,
                            field=mismatch.field,
                            detail=mismatch.detail,
                        )
                outcomes.append(CheckOutcome(check.name, mismatches))
        return ConformanceReport(runner=self.name, outcomes=tuple(outcomes))


# -- standard check factories --------------------------------------------------


def add_scoring_checks(
    runner: DifferentialRunner,
    model,
    graphs: Sequence[object],
    atol: float = 1e-9,
) -> DifferentialRunner:
    """Batched model inference must reproduce the per-graph path.

    Registers probability and boolean-prediction checks covering the
    invariants previously pinned ad hoc in ``tests/test_scoring.py``.
    """
    graphs = list(graphs)
    runner.add(
        "scoring.proba.batch_vs_single",
        lambda: [model.predict_proba(g) for g in graphs],
        lambda: model.predict_proba_batch(graphs),
        compare_array_sequences(atol),
    )
    runner.add(
        "scoring.predict.batch_vs_single",
        lambda: [np.asarray(model.predict(g)) for g in graphs],
        lambda: [np.asarray(p) for p in model.predict_batch(graphs)],
        compare_array_sequences(0.0),
    )
    return runner


def add_runner_checks(
    runner: DifferentialRunner,
    kernel,
    tasks: Sequence[object],
    workers: int = 2,
    supervised: bool = True,
) -> DifferentialRunner:
    """Serial, process-pool, and supervised execution must agree.

    The serial runner is the reference; the pool and the (fault-free)
    supervised runner are candidates.  Results are ``ConcurrentResult``
    dataclasses, so plain equality is the right comparator.
    """
    from repro.execution.parallel import ProcessPoolCTRunner, SerialCTRunner

    tasks = list(tasks)

    def run_serial() -> object:
        return SerialCTRunner().run_many(kernel, tasks)

    def run_pool() -> object:
        pool = ProcessPoolCTRunner(workers=workers)
        try:
            return pool.run_many(kernel, tasks)
        finally:
            pool.close()

    runner.add("execution.pool_vs_serial", run_serial, run_pool)
    if supervised:
        from repro.resilience.supervisor import SupervisedRunner

        def run_supervised() -> object:
            supervisor = SupervisedRunner(workers=workers)
            try:
                return supervisor.run_many(kernel, tasks)
            finally:
                supervisor.close()

        runner.add("execution.supervised_vs_serial", run_serial, run_supervised)
    return runner


def add_campaign_check(
    runner: DifferentialRunner,
    name: str,
    reference: Callable[[], object],
    candidate: Callable[[], object],
) -> DifferentialRunner:
    """A campaign-equivalence check using :func:`compare_campaigns`.

    ``reference``/``candidate`` are thunks returning campaign results —
    e.g. the same MLPCT campaign with ``score_batch_size=1`` vs ``32``,
    ``parallel_workers=0`` vs ``2``, or plain vs journal-resumed.
    """
    return runner.add(name, reference, candidate, compare_campaigns)
