"""Bounded exhaustive interleaving exploration: the ground-truth oracle.

Everything else in this repository compares the system against itself —
PCT against MLPCT, serial against parallel, batched against per-graph.
This module provides the independent reference: for a *tiny* concurrent
test (a bounded number of threads, a handful of shared accesses each) it
enumerates every schedule the serializing machine can produce and derives
the complete ground truth — every reachable block, every cross-thread
conflicting access pair, every bug manifestation, whether a deadlock is
reachable — against which any single observed execution must be
*subsumed*.

Enumeration is stateless-model-checking style: schedules are replayed
from scratch along a DFS over scheduler choice points, so no machine
snapshotting is needed. Three pruning modes are offered:

- ``"none"``: a scheduler choice at every machine step. Exact but
  factorial; only usable on micro-programs (property tests use it to
  validate the pruned modes).
- ``"por"``: partial-order reduction by *visible-operation chunking*.
  Thread-local instructions (register arithmetic, local branches,
  syscall dispatch) commute with everything other threads can do, so
  they are glued to the preceding visible operation and scheduler
  choices happen only between shared-memory/lock operations. Every
  Mazurkiewicz trace keeps a representative, so all derived *sets* are
  identical to ``"none"``; only the schedule count shrinks.
- ``"sleep"``: ``"por"`` plus sleep sets (Godefroid): after exploring
  thread ``t`` at a choice node, the sibling branch keeps ``t`` asleep
  until an operation *dependent* with ``t``'s next operation executes,
  pruning commuted duplicates of independent operations.

Scenario axes beyond plain SC thread interleaving appear as additional
scheduler choices (``docs/TESTING.md`` "Scenario axes"):

- **IRQ injection** (``irq_handlers``/``max_irqs``): before every
  decision the explorer may fire any configured handler on any live
  thread. These *special* choices are computed before invisible
  advancement — a handler can fire on a thread whose remaining work is
  entirely thread-local — and are never sleep-pruned; executing one
  conservatively wakes all sleepers (a handler may touch anything).
- **TSO weak memory** (``memory_model="tso"``): stores sit in per-thread
  FIFO buffers; besides the machine's own fence/overflow drains, the
  explorer may voluntarily commit a thread's oldest buffered store at
  any decision, modelling hardware draining at arbitrary points. Under
  TSO sleep-set injection is disabled (store visibility is deferred, so
  parked-operation independence no longer implies commutation) and
  ``"sleep"`` degenerates to ``"por"`` — fewer prunes, still sound.

The soundness claims above are not taken on faith: the property suite
asserts pruned and unpruned ground truths are equal on known shapes
(``tests/test_oracle_explorer.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import rng as rngmod
from repro.errors import ExecutionLimitExceeded, OracleError, OracleLimitError
from repro.execution.alias import AliasPair, alias_coverage
from repro.execution.concurrent import ConcurrentSink
from repro.execution.machine import Machine, ThreadContext, ThreadStatus
from repro.execution.races import (
    DEFAULT_PROXIMITY_WINDOW,
    PotentialRace,
    find_potential_races,
)
from repro.execution.trace import ConcurrentResult, MemoryAccess
from repro.kernel.code import Kernel
from repro.kernel.isa import Opcode

__all__ = [
    "PRUNING_MODES",
    "DEFAULT_MAX_THREADS",
    "GroundTruth",
    "ExhaustiveExplorer",
    "explore_interleavings",
    "conflicting_pairs",
    "reference_potential_races",
    "reference_alias_pairs",
]

PRUNING_MODES = ("none", "por", "sleep")

#: Operations observable by the other thread; everything else is
#: thread-local and commutes with any concurrent operation.
_VISIBLE = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.STOREI, Opcode.LOCK, Opcode.UNLOCK})

#: Default per-replay instruction budget — tiny programs only.
DEFAULT_MAX_STEPS = 5_000

#: Default bound on enumerated schedules before the explorer refuses.
DEFAULT_MAX_SCHEDULES = 20_000

#: Default thread-count bound; exploration is exponential in it.
DEFAULT_MAX_THREADS = 4


# -- reference (naive) trace scans --------------------------------------------
#
# Pure-Python mirrors of the vectorised detectors, used two ways: to derive
# ground-truth universes here, and as the independent reference side of the
# differential conformance checks in repro.oracle.differential.


def _disjoint_locksets(a: MemoryAccess, b: MemoryAccess) -> bool:
    return not (a.locks_held & b.locks_held)


def conflicting_pairs(accesses: Sequence[MemoryAccess]) -> Set[PotentialRace]:
    """All cross-thread conflicting pairs, with *no* proximity condition.

    Two accesses conflict when they touch the same address from different
    threads, at least one writes, and no lock is held in common. This is
    the maximal race universe of one execution: any proximity- or
    epoch-windowed detector output over the same access stream is a
    subset of it.
    """
    pairs: Set[PotentialRace] = set()
    for i, first in enumerate(accesses):
        for second in accesses[i + 1 :]:
            if first.address != second.address:
                continue
            if first.thread == second.thread:
                continue
            if not (first.is_write or second.is_write):
                continue
            if not _disjoint_locksets(first, second):
                continue
            pairs.add(PotentialRace.of(first.iid, second.iid, first.address))
    return pairs


def reference_potential_races(
    accesses: Sequence[MemoryAccess],
    proximity_window: int = DEFAULT_PROXIMITY_WINDOW,
    adjacent_epochs: bool = True,
) -> Set[PotentialRace]:
    """Naive O(n²) mirror of :func:`repro.execution.races.find_potential_races`.

    Same semantics, no NumPy: the differential harness runs both over the
    same access streams and reports any divergence.
    """
    races: Set[PotentialRace] = set()
    for i, first in enumerate(accesses):
        for second in accesses[i + 1 :]:
            if first.address != second.address:
                continue
            if first.thread == second.thread:
                continue
            if not (first.is_write or second.is_write):
                continue
            if not _disjoint_locksets(first, second):
                continue
            close = (second.step - first.step) <= proximity_window
            if adjacent_epochs:
                close = close or (second.epoch - first.epoch) == 1
            if close:
                races.add(PotentialRace.of(first.iid, second.iid, first.address))
    return races


def reference_alias_pairs(accesses: Sequence[MemoryAccess]) -> Set[AliasPair]:
    """Naive mirror of :func:`repro.execution.alias.alias_coverage`."""
    pairs: Set[AliasPair] = set()
    for i, first in enumerate(accesses):
        for second in accesses[i + 1 :]:
            if first.address != second.address:
                continue
            if first.thread == second.thread:
                continue
            pairs.add(AliasPair.of(first.iid, second.iid, first.address))
    return pairs


# -- ground truth --------------------------------------------------------------


@dataclass(frozen=True)
class GroundTruth:
    """Everything a bounded exhaustive exploration proved about one CT."""

    num_schedules: int
    pruning: str
    #: Union of blocks covered by any thread in any schedule.
    covered_blocks: FrozenSet[int]
    #: One frozenset per thread (IRQ-handler coverage is attributed to the
    #: interrupted thread, matching the machine's accounting).
    per_thread_covered: Tuple[FrozenSet[int], ...]
    #: Window-free conflicting-pair universe over all schedules.
    race_universe: FrozenSet[PotentialRace]
    #: Cross-thread aliasing-pair universe over all schedules.
    alias_universe: FrozenSet[AliasPair]
    #: Instruction/block identities of every manifestable bug event.
    bug_iids: FrozenSet[int]
    bug_blocks: FrozenSet[int]
    bug_kinds: FrozenSet[str]
    deadlock_possible: bool
    #: Distinct final shared-memory states of completed schedules
    #: (sorted (address, value) tuples; initial-valued cells elided).
    final_memory_states: FrozenSet[Tuple[Tuple[int, int], ...]]

    def behavior_key(self) -> Tuple:
        """The schedule-count-free part, equal across pruning modes."""
        return (
            self.covered_blocks,
            self.per_thread_covered,
            self.race_universe,
            self.alias_universe,
            self.bug_iids,
            self.bug_blocks,
            self.bug_kinds,
            self.deadlock_possible,
            self.final_memory_states,
        )

    def check_result(self, result: ConcurrentResult) -> List[str]:
        """Violations of ``ground truth subsumes observed execution``.

        Empty list means the observed run is consistent with exhaustive
        enumeration: its coverage, detected races, alias pairs, bug events
        and deadlock verdict are all contained in the ground-truth sets.
        """
        violations: List[str] = []
        for tid in range(len(self.per_thread_covered)):
            extra = frozenset(result.covered_blocks[tid]) - self.per_thread_covered[tid]
            if extra:
                violations.append(
                    f"thread {tid} covered blocks outside ground truth: "
                    f"{sorted(extra)}"
                )
        races = find_potential_races(result.accesses)
        extra_races = races - self.race_universe
        if extra_races:
            violations.append(
                f"observed races outside ground truth: {sorted((r.iid_pair, r.address) for r in extra_races)}"
            )
        aliases = alias_coverage(result.accesses)
        extra_aliases = aliases - self.alias_universe
        if extra_aliases:
            violations.append(
                f"observed alias pairs outside ground truth: "
                f"{sorted((p.iid_pair, p.address) for p in extra_aliases)}"
            )
        extra_bugs = {event.iid for event in result.bug_events} - self.bug_iids
        if extra_bugs:
            violations.append(
                f"observed bug events outside ground truth: {sorted(extra_bugs)}"
            )
        extra_bug_blocks = result.manifested_bug_blocks() - self.bug_blocks
        if extra_bug_blocks:
            violations.append(
                f"observed bug blocks outside ground truth: "
                f"{sorted(extra_bug_blocks)}"
            )
        if result.deadlocked and not self.deadlock_possible:
            violations.append(
                "observed a deadlock but exhaustive exploration found none"
            )
        return violations

    def subsumes(self, result: ConcurrentResult) -> bool:
        return not self.check_result(result)


class _Accumulator:
    """Folds per-schedule outcomes into the ground-truth sets."""

    def __init__(self, num_threads: int = 2) -> None:
        self.num_schedules = 0
        self.covered: Tuple[Set[int], ...] = tuple(
            set() for _ in range(num_threads)
        )
        self.races: Set[PotentialRace] = set()
        self.aliases: Set[AliasPair] = set()
        self.bug_iids: Set[int] = set()
        self.bug_blocks: Set[int] = set()
        self.bug_kinds: Set[str] = set()
        self.deadlock = False
        self.final_states: Set[Tuple[Tuple[int, int], ...]] = set()

    def fold(
        self,
        sink: ConcurrentSink,
        machine: Machine,
        deadlocked: bool,
    ) -> None:
        self.num_schedules += 1
        for tid, covered in enumerate(sink.covered):
            self.covered[tid].update(covered)
        self.races |= conflicting_pairs(sink.accesses)
        self.aliases |= reference_alias_pairs(sink.accesses)
        for event in sink.bug_events:
            self.bug_iids.add(event.iid)
            self.bug_blocks.add(event.block_id)
            self.bug_kinds.add(event.kind)
        if deadlocked:
            self.deadlock = True
        else:
            snapshot = machine.memory.snapshot()
            initial = machine.kernel.memory.initial
            self.final_states.add(
                tuple(
                    sorted(
                        (address, value)
                        for address, value in snapshot.items()
                        if initial.get(address, 0) != value
                    )
                )
            )

    def freeze(self, pruning: str) -> GroundTruth:
        return GroundTruth(
            num_schedules=self.num_schedules,
            pruning=pruning,
            covered_blocks=frozenset(set().union(*self.covered)),
            per_thread_covered=tuple(
                frozenset(covered) for covered in self.covered
            ),
            race_universe=frozenset(self.races),
            alias_universe=frozenset(self.aliases),
            bug_iids=frozenset(self.bug_iids),
            bug_blocks=frozenset(self.bug_blocks),
            bug_kinds=frozenset(self.bug_kinds),
            deadlock_possible=self.deadlock,
            final_memory_states=frozenset(self.final_states),
        )


# -- the explorer --------------------------------------------------------------

#: One scheduler choice: a thread id (step that thread), or a *special* —
#: ``("irq", tid, handler)`` fires an interrupt handler on a live thread,
#: ``("drain", tid)`` commits a thread's oldest buffered store (TSO), and
#: ``("pass",)`` declines every currently offered special.
_Choice = object  # int | Tuple

#: A frontier entry: forced scheduler choices, plus (for ``"sleep"``) the
#: sleep set to install at each forced decision index.
_Branch = Tuple[Tuple[_Choice, ...], Tuple[Tuple[int, FrozenSet[int]], ...]]

_PASS = ("pass",)

#: Visible-operation signature: ("mem", address, is_write) or ("lock", name).
_OpSig = Tuple


def _op_signature(kernel: Kernel, thread: ThreadContext) -> Optional[_OpSig]:
    """Signature of the visible instruction ``thread`` is parked at."""
    if thread.block_id is None:
        return None
    instruction = kernel.blocks[thread.block_id].instructions[thread.index]
    op = instruction.opcode
    if op is Opcode.LOAD:
        return ("mem", instruction.operands[1].addr, False)
    if op in (Opcode.STORE, Opcode.STOREI):
        return ("mem", instruction.operands[0].addr, True)
    if op in (Opcode.LOCK, Opcode.UNLOCK):
        return ("lock", instruction.operands[0].name)
    return None


def _independent(first: _OpSig, second: _OpSig) -> bool:
    """Whether two visible operations commute.

    Memory operations are dependent iff they touch the same address and at
    least one writes; lock operations are dependent iff they name the same
    lock; a memory and a lock operation always commute.
    """
    if first[0] != second[0]:
        return True
    if first[0] == "lock":
        return first[1] != second[1]
    if first[1] != second[1]:
        return True
    return not (first[2] or second[2])


class ExhaustiveExplorer:
    """Enumerates every schedule of an N-thread CT and derives ground truth.

    ``shuffle_seed`` randomises only the *order* in which branches are
    explored (and therefore which child is the in-line continuation); the
    set of enumerated behaviours — and hence the returned
    :class:`GroundTruth` — is identical for every seed, a property the
    test suite asserts.

    ``max_threads`` bounds the CT size this oracle accepts (exploration is
    exponential in it); exceeding it raises a structured
    :class:`OracleLimitError` with ``limit="threads"``. ``irq_handlers``
    and ``memory_model="tso"`` enable the IRQ and weak-memory scenario
    axes (see the module docstring).
    """

    def __init__(
        self,
        kernel: Kernel,
        programs: Sequence[Sequence[Tuple[str, Sequence[int]]]],
        pruning: str = "sleep",
        max_steps: int = DEFAULT_MAX_STEPS,
        max_schedules: int = DEFAULT_MAX_SCHEDULES,
        shuffle_seed: Optional[int] = None,
        max_threads: int = DEFAULT_MAX_THREADS,
        memory_model: str = "sc",
        irq_handlers: Sequence[str] = (),
        max_irqs: int = 1,
    ) -> None:
        if pruning not in PRUNING_MODES:
            raise OracleError(
                f"unknown pruning mode {pruning!r}; expected one of {PRUNING_MODES}"
            )
        if not programs:
            raise OracleError("exhaustive exploration needs at least one thread")
        if len(programs) > max_threads:
            raise OracleLimitError(
                f"exhaustive exploration is bounded to {max_threads} threads "
                f"but was given {len(programs)}; raise max_threads only for "
                f"very small programs",
                limit="threads",
                observed=len(programs),
            )
        if memory_model not in ("sc", "tso"):
            raise OracleError(f"unknown memory model {memory_model!r}")
        for handler in irq_handlers:
            if handler not in kernel.functions:
                raise OracleError(f"unknown IRQ handler {handler!r}")
        self.kernel = kernel
        self.programs = tuple(programs)
        self.pruning = pruning
        self.max_steps = max_steps
        self.max_schedules = max_schedules
        self.max_threads = max_threads
        self.memory_model = memory_model
        self.irq_handlers = tuple(irq_handlers)
        self.max_irqs = max_irqs
        # Deferred store visibility under TSO breaks the parked-operation
        # independence argument behind sleep sets, so "sleep" runs as
        # "por" there (strictly more exploration — still sound).
        self._sleep_injection = pruning == "sleep" and memory_model == "sc"
        self._rng = (
            rngmod.make_rng(shuffle_seed) if shuffle_seed is not None else None
        )

    # -- per-replay machinery ------------------------------------------------

    def _parked_visible(self, machine: Machine, thread: ThreadContext) -> bool:
        """Whether the thread's next step is a visible operation."""
        if thread.block_id is None:
            return False  # syscall dispatch (or completion) is thread-local
        instruction = machine.kernel.blocks[thread.block_id].instructions[thread.index]
        return instruction.opcode in _VISIBLE

    def _advance_invisible(self, machine: Machine, threads: List[ThreadContext]) -> None:
        """Run every thread's thread-local steps; park each at a visible op.

        Invisible operations commute with anything the other thread does,
        so executing them eagerly (glued to the preceding visible
        operation) picks one canonical representative per Mazurkiewicz
        trace without losing any behaviour.
        """
        for thread in threads:
            while machine.runnable(thread) and not self._parked_visible(machine, thread):
                machine.step(thread)

    def _enabled(self, machine: Machine, thread: ThreadContext) -> bool:
        """Runnable and able to make progress if scheduled now.

        A thread parked at a LOCK held by the other thread would only
        transition to BLOCKED; scheduling it is a no-op for every derived
        set, so it is not an enabled transition (standard model-checking
        semantics).
        """
        if not machine.runnable(thread):
            return False
        if thread.block_id is None:
            return True
        instruction = machine.kernel.blocks[thread.block_id].instructions[thread.index]
        if instruction.opcode is Opcode.LOCK:
            owner = machine.lock_owners.get(instruction.operands[0].name)
            return owner is None or owner == thread.tid
        return True

    def _ordered(self, candidates: List) -> List:
        if self._rng is not None and len(candidates) > 1:
            return rngmod.shuffled(self._rng, candidates)
        return candidates

    def _specials(
        self, machine: Machine, threads: List[ThreadContext], irqs_left: int
    ) -> List[Tuple]:
        """Special choices available *now*, from pre-advance thread state.

        Computed before :meth:`_advance_invisible` so a handler can fire on
        a thread whose remaining work is entirely invisible (the machine
        fires planned IRQs before any step, including invisible ones;
        invisible operations are register-local, so pre-tail firing covers
        every mid-tail placement).
        """
        tokens: List[Tuple] = []
        if irqs_left > 0:
            for thread in threads:
                if thread.status is not ThreadStatus.DONE:
                    for handler in self.irq_handlers:
                        tokens.append(("irq", thread.tid, handler))
        if self.memory_model == "tso":
            for thread in threads:
                if machine.store_buffers.get(thread.tid):
                    tokens.append(("drain", thread.tid))
        return tokens

    def _execute_special(
        self, machine: Machine, threads: List[ThreadContext], token: Tuple
    ) -> None:
        if token[0] == "irq":
            machine.fire_irq(threads[token[1]], token[2])
        else:
            machine.drain_oldest(threads[token[1]])

    def _replay(
        self, branch: _Branch
    ) -> Tuple[Optional[Tuple[ConcurrentSink, Machine, bool]], List[Tuple[_Choice, List, Dict[int, _OpSig], FrozenSet[int]]]]:
        """Execute one schedule, following the branch's forced choices.

        Returns ``(outcome, decisions)``. ``outcome`` is ``None`` when the
        run was sleep-blocked (every continuation is covered by a sibling
        branch); otherwise it is ``(sink, machine, deadlocked)``.
        ``decisions[i]`` records, for the i-th choice point:
        ``(chosen token, untried sibling tokens in exploration order,
        visible-op signatures per enabled tid, sleep set at the node)``.
        """
        prefix, injection_items = branch
        injections = dict(injection_items)
        chunked = self.pruning != "none"
        num_threads = len(self.programs)
        sink = ConcurrentSink(num_threads)
        machine = Machine(
            self.kernel, sink, max_steps=self.max_steps,
            memory_model=self.memory_model,
        )
        threads = [machine.create_thread(program) for program in self.programs]
        irqs_left = self.max_irqs if self.irq_handlers else 0
        decisions: List[Tuple[_Choice, List, Dict[int, _OpSig], FrozenSet[int]]] = []
        sleep: Set[int] = set()
        deadlocked = False
        while not machine.all_done():
            # Phase A: specials (IRQ firings, voluntary TSO drains) are a
            # decision of their own whenever any is available; choosing
            # one re-enters phase A (more specials may fire back-to-back,
            # as the machine's plan-driven loop does), choosing _PASS
            # falls through to the thread-step decision below.
            specials = self._specials(machine, threads, irqs_left)
            if specials:
                index = len(decisions)
                if index < len(prefix):
                    token = prefix[index]
                    if token != _PASS and token not in specials:
                        raise OracleError(
                            "exploration branch diverged from its prefix"
                        )
                    special_alternatives: List = []
                else:
                    order = self._ordered([_PASS] + specials)
                    token = order[0]
                    special_alternatives = order[1:]
                decisions.append(
                    (token, special_alternatives, {}, frozenset(sleep))
                )
                if index in injections:
                    sleep = set(injections[index])
                if token != _PASS:
                    self._execute_special(machine, threads, token)
                    if token[0] == "irq":
                        irqs_left -= 1
                    # A handler (or a newly visible store) may touch
                    # anything: conservatively wake every sleeper.
                    sleep = set()
                    continue
            if chunked:
                self._advance_invisible(machine, threads)
                if machine.all_done():
                    break
            enabled = [t.tid for t in threads if self._enabled(machine, t)]
            if not enabled:
                deadlocked = True
                break
            signatures: Dict[int, _OpSig] = {}
            if chunked:
                for tid in enabled:
                    signature = _op_signature(self.kernel, threads[tid])
                    assert signature is not None, "enabled thread not parked"
                    signatures[tid] = signature
            awake = [tid for tid in enabled if tid not in sleep]
            if not awake:
                # Sleep-blocked: every continuation from here is a
                # commuted duplicate of an already-explored branch.
                return None, decisions
            index = len(decisions)
            node_sleep = frozenset(sleep)
            if len(awake) == 1:
                chosen = awake[0]
                if len(enabled) > 1:
                    # A choice point collapsed by the sleep set still
                    # occupies a decision index so forced prefixes from
                    # sibling pushes keep their alignment.
                    decisions.append((chosen, [], signatures, node_sleep))
                    if index < len(prefix) and prefix[index] != chosen:
                        raise OracleError(
                            "exploration branch diverged from its prefix"
                        )
            else:
                if index < len(prefix):
                    chosen = prefix[index]
                    if chosen not in awake:
                        raise OracleError(
                            "exploration branch diverged from its prefix"
                        )
                    alternatives: List[int] = []
                else:
                    order = self._ordered(list(awake))
                    chosen = order[0]
                    alternatives = order[1:]
                decisions.append((chosen, alternatives, signatures, node_sleep))
                if index in injections:
                    sleep = set(injections[index])
            thread = threads[chosen]
            if chunked:
                # One visible step; its invisible continuation is glued on
                # by the next _advance_invisible call.
                executed = signatures[chosen]
                machine.step(thread)
                if self.pruning == "sleep" and sleep:
                    # Wake any sleeper whose parked operation is dependent
                    # with the one just executed (a sleeping thread never
                    # moves, so its parked signature is still current).
                    sleep = {
                        tid
                        for tid in sleep
                        if (parked := _op_signature(self.kernel, threads[tid]))
                        is not None
                        and _independent(parked, executed)
                    }
            else:
                machine.step(thread)
        return (sink, machine, deadlocked), decisions

    # -- enumeration ---------------------------------------------------------

    def explore(self) -> GroundTruth:
        """Enumerate all schedules; raises :class:`OracleLimitError` when
        the schedule budget would be exceeded (partial ground truth is
        never returned)."""
        accumulator = _Accumulator(len(self.programs))
        frontier: List[_Branch] = [((), ())]
        while frontier:
            prefix, injections = frontier.pop()
            try:
                outcome, decisions = self._replay((prefix, injections))
            except ExecutionLimitExceeded as error:
                raise OracleLimitError(
                    f"a schedule exceeded the {self.max_steps}-step replay "
                    f"budget; ground truth would be partial",
                    limit="steps",
                    observed=self.max_steps,
                ) from error
            if outcome is not None:
                if accumulator.num_schedules >= self.max_schedules:
                    raise OracleLimitError(
                        f"exhaustive exploration exceeded "
                        f"{self.max_schedules} schedules "
                        f"(pruning={self.pruning!r}); shrink the programs "
                        f"or raise max_schedules",
                        limit="schedules",
                        observed=self.max_schedules,
                    )
                sink, machine, deadlocked = outcome
                accumulator.fold(sink, machine, deadlocked)
            # Push untried siblings of every decision made beyond the
            # forced prefix, deepest-first so the DFS walks the choice
            # tree left to right.
            for index in range(len(decisions) - 1, -1, -1):
                chosen, alternatives, signatures, node_sleep = decisions[index]
                if not alternatives:
                    continue
                base = tuple(d[0] for d in decisions[:index])
                kept = tuple(
                    item for item in injections if item[0] < index
                )
                explored = [chosen]
                for alternative in alternatives:
                    branch_injections = kept
                    # Sleep sets apply only to thread-step siblings (a
                    # special commutes with nothing we can prove) and
                    # only under SC (see __init__).
                    if self._sleep_injection and isinstance(alternative, int):
                        asleep = frozenset(
                            tid
                            for tid in set(node_sleep) | set(explored)
                            if tid != alternative
                            and _independent(
                                signatures[tid], signatures[alternative]
                            )
                        )
                        branch_injections = kept + ((index, asleep),)
                    frontier.append((base + (alternative,), branch_injections))
                    explored.append(alternative)
        if accumulator.num_schedules == 0:
            raise OracleError("exploration produced no schedules")
        return accumulator.freeze(self.pruning)


def explore_interleavings(
    kernel: Kernel,
    programs: Sequence[Sequence[Tuple[str, Sequence[int]]]],
    pruning: str = "sleep",
    max_steps: int = DEFAULT_MAX_STEPS,
    max_schedules: int = DEFAULT_MAX_SCHEDULES,
    shuffle_seed: Optional[int] = None,
    max_threads: int = DEFAULT_MAX_THREADS,
    memory_model: str = "sc",
    irq_handlers: Sequence[str] = (),
    max_irqs: int = 1,
) -> GroundTruth:
    """One-shot API: enumerate all schedules of ``programs`` on ``kernel``."""
    return ExhaustiveExplorer(
        kernel,
        programs,
        pruning=pruning,
        max_steps=max_steps,
        max_schedules=max_schedules,
        shuffle_seed=shuffle_seed,
        max_threads=max_threads,
        memory_model=memory_model,
        irq_handlers=irq_handlers,
        max_irqs=max_irqs,
    ).explore()
