"""Ground-truth oracles: the subsystem that checks the checker.

Everything else in this repo is tested against itself — the batched
scorer against the serial scorer, the pool runner against the serial
runner.  This package provides *independent* references to test
against:

- :mod:`repro.oracle.explorer` — a bounded exhaustive interleaving
  explorer for tiny N-thread CTs (thread count, IRQ injection, and the
  TSO weak-memory model are all explorable axes).  Enumerating every
  schedule (with optional partial-order / sleep-set pruning) yields
  ground-truth coverage sets, race universes, and bug-manifestation
  verdicts that any single observed execution must be contained in.
- :mod:`repro.oracle.differential` — a declarative conformance harness
  (:class:`DifferentialRunner`) unifying the repo's scattered
  "fast path == slow path" equivalence checks into structured,
  telemetry-wired reports.
- :mod:`repro.oracle.quality` — a model-quality regression gate:
  golden pinned pipeline, measured metrics, stored baselines with
  tolerance bands, surfaced as ``repro quality`` in the CLI.

See ``docs/TESTING.md`` for how the oracle suite is run in CI.
"""

from repro.oracle.differential import (
    CheckOutcome,
    ConformanceReport,
    DifferentialRunner,
    Mismatch,
    add_campaign_check,
    add_runner_checks,
    add_scoring_checks,
    compare_array_sequences,
    compare_campaigns,
    compare_equal,
)
from repro.oracle.explorer import (
    DEFAULT_MAX_THREADS,
    PRUNING_MODES,
    ExhaustiveExplorer,
    GroundTruth,
    conflicting_pairs,
    explore_interleavings,
    reference_alias_pairs,
    reference_potential_races,
)
from repro.oracle.quality import (
    DEFAULT_TOLERANCES,
    GOLDEN_CONFIG,
    GOLDEN_KERNEL_CONFIG,
    Baseline,
    MetricCheck,
    QualityConfig,
    QualityReport,
    build_golden,
    check_against_baseline,
    default_baseline_path,
    load_baseline,
    measure_quality,
    run_quality_gate,
    write_baseline,
)

__all__ = [
    # explorer
    "PRUNING_MODES",
    "DEFAULT_MAX_THREADS",
    "ExhaustiveExplorer",
    "GroundTruth",
    "explore_interleavings",
    "conflicting_pairs",
    "reference_potential_races",
    "reference_alias_pairs",
    # differential
    "Mismatch",
    "CheckOutcome",
    "ConformanceReport",
    "DifferentialRunner",
    "compare_equal",
    "compare_array_sequences",
    "compare_campaigns",
    "add_scoring_checks",
    "add_runner_checks",
    "add_campaign_check",
    # quality
    "QualityConfig",
    "GOLDEN_CONFIG",
    "GOLDEN_KERNEL_CONFIG",
    "DEFAULT_TOLERANCES",
    "Baseline",
    "MetricCheck",
    "QualityReport",
    "build_golden",
    "measure_quality",
    "load_baseline",
    "write_baseline",
    "check_against_baseline",
    "run_quality_gate",
    "default_baseline_path",
]
