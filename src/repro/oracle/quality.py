"""Model-quality regression gate: golden pins, measured metrics, baselines.

Predictor refactors (new batching plans, encoder rewrites, optimiser
tweaks) can silently shift prediction quality while every equivalence
test still passes — those tests only pin *internal* consistency.  This
module pins *external* quality: a fully deterministic golden pipeline
(kernel → corpus → splits → trained PIC) is rebuilt from
:data:`GOLDEN_CONFIG`, evaluated into a metric dict, and compared
against a stored baseline with per-metric tolerance bands.

The baseline JSON carries a digest of the golden pins; a gate run whose
pins differ from the baseline's refuses to compare (the numbers would
be apples-to-oranges) and raises :class:`~repro.errors.QualityGateError`
instead of passing or failing spuriously.

The pins intentionally equal the session fixtures in
``tests/conftest.py`` (which imports them from here), so the test suite
reuses its already-built kernel/model while the ``repro quality`` CLI
rebuilds the identical artefacts from scratch.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import QualityGateError
from repro.kernel import KernelConfig, build_kernel
from repro.ml.calibration import expected_calibration_error
from repro.ml.evaluation import evaluate_predictor
from repro.ml.metrics import average_precision
from repro.resilience.atomic import atomic_write_text

__all__ = [
    "GOLDEN_KERNEL_CONFIG",
    "GOLDEN_CONFIG",
    "DEFAULT_TOLERANCES",
    "QualityConfig",
    "MetricCheck",
    "QualityReport",
    "Baseline",
    "build_golden",
    "measure_quality",
    "load_baseline",
    "write_baseline",
    "check_against_baseline",
    "run_quality_gate",
    "default_baseline_path",
]

BASELINE_FORMAT_VERSION = 1

#: The pinned small kernel every golden run (and the test suite) builds.
GOLDEN_KERNEL_CONFIG = KernelConfig(
    num_subsystems=3,
    functions_per_subsystem=4,
    syscalls_per_subsystem=4,
    vars_per_subsystem=8,
    segments_per_function=(2, 4),
    num_atomicity_bugs=2,
    num_order_bugs=2,
    num_data_races=2,
    version="v5.12",
)

#: Per-metric absolute tolerance bands.  The golden pipeline is seeded
#: end to end, so same-platform reruns reproduce the metrics exactly;
#: the bands absorb BLAS/platform float drift, not behaviour changes.
DEFAULT_TOLERANCES: Dict[str, float] = {
    "f1": 0.02,
    "precision": 0.02,
    "recall": 0.02,
    "accuracy": 0.02,
    "balanced_accuracy": 0.02,
    "average_precision": 0.02,
    "ece": 0.02,
}


@dataclass(frozen=True)
class QualityConfig:
    """Every seed and hyperparameter the golden pipeline depends on."""

    kernel_seed: int = 42
    corpus_seed: int = 7
    corpus_rounds: int = 150
    num_ctis: int = 16
    train_fraction: float = 0.5
    validation_fraction: float = 0.2
    train_interleavings: int = 4
    evaluation_interleavings: int = 4
    token_dim: int = 16
    hidden_dim: int = 24
    num_layers: int = 2
    model_seed: int = 3
    #: Part of the pins: the model name seeds the PIC's RNG stream
    #: (``rngmod.split(seed, f"pic:{name}")``), so a different name is a
    #: different model.
    model_name: str = "PIC-tiny"
    epochs: int = 2
    learning_rate: float = 3e-3
    urb_only: bool = True
    calibration_bins: int = 10
    kernel: KernelConfig = field(default_factory=lambda: GOLDEN_KERNEL_CONFIG)

    def digest(self) -> str:
        """Stable hash of every pin; stored in (and checked against) baselines."""
        payload = asdict(self)
        payload["kernel"] = asdict(self.kernel)
        canonical = json.dumps(payload, sort_keys=True, default=list)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


GOLDEN_CONFIG = QualityConfig()


def build_golden(config: QualityConfig = GOLDEN_CONFIG):
    """Rebuild the golden pipeline from pins: ``(model, evaluation examples)``.

    Deterministic by construction — every stage is explicitly seeded from
    ``config`` — so two builds on one platform yield identical metrics.
    """
    from repro.graphs.dataset import GraphDatasetBuilder
    from repro.ml.pic import PICConfig, PICModel
    from repro.ml.training import TrainingConfig, train_pic

    with obs.span("oracle.quality.build", digest=config.digest()):
        kernel = build_kernel(config.kernel, seed=config.kernel_seed)
        builder = GraphDatasetBuilder(kernel, seed=config.corpus_seed)
        builder.grow_corpus(rounds=config.corpus_rounds)
        splits = builder.build_splits(
            num_ctis=config.num_ctis,
            train_fraction=config.train_fraction,
            validation_fraction=config.validation_fraction,
            train_interleavings=config.train_interleavings,
            evaluation_interleavings=config.evaluation_interleavings,
        )
        model = PICModel(
            PICConfig(
                vocab_size=len(builder.vocabulary),
                pad_id=builder.vocabulary.pad_id,
                token_dim=config.token_dim,
                hidden_dim=config.hidden_dim,
                num_layers=config.num_layers,
                name=config.model_name,
            ),
            seed=config.model_seed,
        )
        train_pic(
            model,
            splits.train,
            splits.validation,
            TrainingConfig(
                epochs=config.epochs,
                learning_rate=config.learning_rate,
                seed=config.model_seed,
            ),
        )
    return model, splits.evaluation


def _pooled_urb_scores(
    model, examples: Sequence[object], urb_only: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Pool (labels, probabilities) over evaluation graphs' scored nodes."""
    labels: List[np.ndarray] = []
    scores: List[np.ndarray] = []
    for example in examples:
        proba = np.asarray(model.predict_proba(example.graph), dtype=np.float64)
        graph_labels = np.asarray(example.labels)
        if urb_only:
            mask = example.graph.urb_mask()
            if not mask.any():
                continue
            proba = proba[mask]
            graph_labels = graph_labels[mask]
        labels.append(graph_labels)
        scores.append(proba)
    if not labels:
        return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.float64)
    return np.concatenate(labels).astype(bool), np.concatenate(scores)


def measure_quality(
    model,
    examples: Sequence[object],
    config: QualityConfig = GOLDEN_CONFIG,
) -> Dict[str, float]:
    """The gated metric dict: Table-1 means + ranking + calibration.

    Per-graph classification means come from
    :func:`~repro.ml.evaluation.evaluate_predictor`; ``average_precision``
    is threshold-free (catches score-quality drift the thresholded
    metrics can mask) and ``ece`` catches calibration drift.
    """
    with obs.span("oracle.quality.measure", graphs=len(examples)):
        metrics = dict(
            evaluate_predictor(model, examples, urb_only=config.urb_only)
        )
        pooled_labels, pooled_scores = _pooled_urb_scores(
            model, examples, config.urb_only
        )
        metrics["average_precision"] = average_precision(
            pooled_labels, pooled_scores
        )
        metrics["ece"] = expected_calibration_error(
            model, examples, bins=config.calibration_bins
        )
    return {name: float(value) for name, value in metrics.items()}


# -- baselines -----------------------------------------------------------------


@dataclass(frozen=True)
class Baseline:
    """A stored golden-metric snapshot with its tolerance bands."""

    metrics: Dict[str, float]
    tolerances: Dict[str, float]
    config_digest: str
    version: int = BASELINE_FORMAT_VERSION


def default_baseline_path() -> str:
    """The baseline shipped as package data (``repro/oracle/data``)."""
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "data", "quality_baseline.json"
    )


def load_baseline(path: Optional[str] = None) -> Baseline:
    path = path or default_baseline_path()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except FileNotFoundError as error:
        raise QualityGateError(f"baseline not found: {path}") from error
    except (OSError, json.JSONDecodeError) as error:
        raise QualityGateError(f"unreadable baseline {path}: {error}") from error
    try:
        version = int(payload["version"])
        if version != BASELINE_FORMAT_VERSION:
            raise QualityGateError(
                f"baseline {path} has format version {version}, "
                f"expected {BASELINE_FORMAT_VERSION}"
            )
        return Baseline(
            metrics={k: float(v) for k, v in payload["metrics"].items()},
            tolerances={k: float(v) for k, v in payload["tolerances"].items()},
            config_digest=str(payload["config_digest"]),
            version=version,
        )
    except (KeyError, TypeError, ValueError) as error:
        raise QualityGateError(f"malformed baseline {path}: {error}") from error


def write_baseline(
    path: str,
    metrics: Dict[str, float],
    config: QualityConfig = GOLDEN_CONFIG,
    tolerances: Optional[Dict[str, float]] = None,
) -> Baseline:
    """Atomically persist a refreshed baseline (see docs/TESTING.md)."""
    baseline = Baseline(
        metrics={k: float(v) for k, v in metrics.items()},
        tolerances=dict(tolerances or DEFAULT_TOLERANCES),
        config_digest=config.digest(),
    )
    payload = {
        "version": baseline.version,
        "config_digest": baseline.config_digest,
        "metrics": baseline.metrics,
        "tolerances": baseline.tolerances,
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return baseline


@dataclass(frozen=True)
class MetricCheck:
    """One metric compared against its baseline band."""

    name: str
    measured: float
    baseline: float
    tolerance: float

    @property
    def deviation(self) -> float:
        return abs(self.measured - self.baseline)

    @property
    def passed(self) -> bool:
        return self.deviation <= self.tolerance


@dataclass(frozen=True)
class QualityReport:
    """The gate's verdict: every metric check plus the pins it ran under."""

    checks: Tuple[MetricCheck, ...]
    config_digest: str

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def summary(self) -> str:
        lines = [
            f"quality gate [{self.config_digest}]: "
            f"{'PASS' if self.passed else 'FAIL'}"
        ]
        for check in self.checks:
            mark = "ok  " if check.passed else "FAIL"
            lines.append(
                f"  {mark} {check.name}: measured={check.measured:.4f} "
                f"baseline={check.baseline:.4f} "
                f"(deviation {check.deviation:.4f}, tolerance {check.tolerance:.3f})"
            )
        return "\n".join(lines)


def check_against_baseline(
    measured: Dict[str, float],
    baseline: Baseline,
    config: QualityConfig = GOLDEN_CONFIG,
) -> QualityReport:
    """Compare measured metrics with a baseline; pins must match.

    Every baseline metric must be present in ``measured`` — a metric
    silently dropped by a refactor fails loudly rather than shrinking
    the gate's surface.
    """
    digest = config.digest()
    if baseline.config_digest != digest:
        raise QualityGateError(
            "baseline was recorded under different golden pins "
            f"(baseline digest {baseline.config_digest}, current {digest}); "
            "refresh it with `repro quality --write-baseline`"
        )
    checks: List[MetricCheck] = []
    for name, pinned in sorted(baseline.metrics.items()):
        if name not in measured:
            raise QualityGateError(
                f"measured metrics are missing baseline metric {name!r}"
            )
        checks.append(
            MetricCheck(
                name=name,
                measured=float(measured[name]),
                baseline=float(pinned),
                tolerance=float(
                    baseline.tolerances.get(name, DEFAULT_TOLERANCES.get(name, 0.0))
                ),
            )
        )
    report = QualityReport(checks=tuple(checks), config_digest=digest)
    obs.point(
        "oracle.quality.gate",
        passed=report.passed,
        failed=[c.name for c in report.checks if not c.passed],
    )
    return report


def run_quality_gate(
    baseline_path: Optional[str] = None,
    config: QualityConfig = GOLDEN_CONFIG,
    model=None,
    examples: Optional[Sequence[object]] = None,
) -> QualityReport:
    """End-to-end gate: (re)build golden artefacts, measure, compare.

    Pass ``model``/``examples`` to reuse already-built golden artefacts
    (the test suite's session fixtures); they must have been built from
    the same ``config`` pins or the comparison is meaningless.
    """
    baseline = load_baseline(baseline_path)
    if model is None or examples is None:
        model, examples = build_golden(config)
    measured = measure_quality(model, examples, config)
    return check_against_baseline(measured, baseline, config)
