"""Dynamic execution engine: the SKI stand-in.

Interprets the synthetic ISA with a serializing (uni-processor) scheduler,
enforces scheduling hints the way SKI does (skipping missed switch points,
forcing switches when a thread blocks), implements PCT, and collects the
traces everything downstream consumes: block coverage, memory accesses,
bug events, and potential data races.
"""

from repro.execution.trace import (
    BugEvent,
    ConcurrentResult,
    MemoryAccess,
    SequentialTrace,
)
from repro.execution.machine import Machine, ThreadContext, ThreadStatus
from repro.execution.sequential import run_sequential
from repro.execution.concurrent import ScheduleHint, run_concurrent
from repro.execution.pct import PctScheduler, propose_hint_pairs, run_concurrent_pct
from repro.execution.races import PotentialRace, RaceDetector, find_potential_races
from repro.execution.alias import AliasCoverageTracker, AliasPair, alias_coverage
from repro.execution.parallel import (
    CTTask,
    ProcessPoolCTRunner,
    SerialCTRunner,
    make_runner,
)

__all__ = [
    "BugEvent",
    "ConcurrentResult",
    "MemoryAccess",
    "SequentialTrace",
    "Machine",
    "ThreadContext",
    "ThreadStatus",
    "run_sequential",
    "ScheduleHint",
    "run_concurrent",
    "PctScheduler",
    "propose_hint_pairs",
    "run_concurrent_pct",
    "PotentialRace",
    "RaceDetector",
    "find_potential_races",
    "AliasPair",
    "alias_coverage",
    "AliasCoverageTracker",
    "CTTask",
    "SerialCTRunner",
    "ProcessPoolCTRunner",
    "make_runner",
]
