"""Opt-in parallel dynamic execution of selected CTs.

Dynamic executions dominate a campaign's wall clock (they are what the
PIC filter exists to avoid), and :func:`~repro.execution.concurrent
.run_concurrent` is a pure function of ``(kernel, programs, hints, ...)``
— no shared state, no RNG. That makes the selected CTs of one CTI
embarrassingly parallel: this module runs them in a process pool and
returns results **in task order**, so downstream accounting (race
detection, coverage, cost ledger) replays serially and campaign results
are byte-identical to a serial run.

Determinism contract:

- each :class:`CTTask` carries a ``seed`` derived from the campaign seed
  and the task's position via :func:`repro.rng.derive_seed` — the
  deterministic token any future stochastic runner must draw from
  (today's interpreter is RNG-free, so the seed is carried, not drawn);
- workers never touch the parent's telemetry: the pool initializer
  clears any registry inherited across ``fork`` (a forked JSON-lines
  sink would interleave writes with the parent), and the parent
  re-emits the per-run execution counters from the collected results so
  traces stay complete.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro import rng as rngmod
from repro.errors import ExecutionLimitExceeded
from repro.execution.concurrent import ScheduleHint, run_concurrent
from repro.execution.machine import DEFAULT_MAX_STEPS
from repro.execution.trace import ConcurrentResult
from repro.kernel.code import Kernel

__all__ = [
    "CTTask",
    "SerialCTRunner",
    "ProcessPoolCTRunner",
    "make_runner",
]

Program = Tuple[Tuple[str, Tuple[int, ...]], ...]


def _freeze_program(program: Sequence[Tuple[str, Sequence[int]]]) -> Program:
    return tuple((name, tuple(arguments)) for name, arguments in program)


@dataclass(frozen=True)
class CTTask:
    """One concurrent test to execute: N STI programs plus hints."""

    programs: Tuple[Program, ...]
    hints: Tuple[ScheduleHint, ...] = ()
    #: Deterministic per-CT token (see the module docstring); results for
    #: a task depend only on the task's own fields, never on which worker
    #: runs it or in what order.
    seed: int = 0
    max_steps: int = DEFAULT_MAX_STEPS
    memory_model: str = "sc"
    irq_plan: Tuple[Tuple[int, str], ...] = ()

    @classmethod
    def build(
        cls,
        programs: Sequence[Sequence[Tuple[str, Sequence[int]]]],
        hints: Sequence[ScheduleHint],
        seed: int = 0,
        index: int = 0,
        memory_model: str = "sc",
        irq_plan: Sequence[Tuple[int, str]] = (),
    ) -> "CTTask":
        """Freeze programs/hints and derive the per-CT seed from
        ``(seed, index)``."""
        return cls(
            programs=tuple(_freeze_program(program) for program in programs),
            hints=tuple(hints),
            seed=rngmod.derive_seed(seed, f"ct-task:{index}"),
            memory_model=memory_model,
            irq_plan=tuple(irq_plan),
        )


def _run_task(kernel: Kernel, task: CTTask) -> ConcurrentResult:
    """Execute one CT; an exceeded instruction budget is a *recorded*
    hang outcome, never an exception escaping into the campaign.

    :func:`~repro.execution.concurrent.run_concurrent` already converts
    budget overruns inside the scheduling loop; this guard classifies
    overruns from any other path (e.g. thread setup) identically, so the
    serial and parallel runners have one uniform hang contract.
    """
    try:
        return run_concurrent(
            kernel,
            task.programs,
            hints=task.hints,
            max_steps=task.max_steps,
            memory_model=task.memory_model,
            irq_plan=task.irq_plan,
        )
    except ExecutionLimitExceeded:
        return ConcurrentResult(
            covered_blocks=tuple(set() for _ in task.programs),
            steps=task.max_steps,
            completed=False,
            failure="hang",
        )


def _count_hangs(results: Sequence[ConcurrentResult]) -> None:
    hangs = sum(1 for result in results if result.hung)
    if hangs:
        obs.add("execution.hangs", hangs)


class SerialCTRunner:
    """Executes tasks one by one in-process (the default)."""

    workers = 0

    def run_many(
        self, kernel: Kernel, tasks: Sequence[CTTask]
    ) -> List[ConcurrentResult]:
        results = [_run_task(kernel, task) for task in tasks]
        _count_hangs(results)
        return results

    def close(self) -> None:
        pass


# Worker-side state, installed once per worker by the pool initializer.
_WORKER_KERNEL: Optional[Kernel] = None


def _init_worker(kernel: Kernel) -> None:
    global _WORKER_KERNEL
    _WORKER_KERNEL = kernel
    # A registry inherited across fork would double-write events (and
    # interleave with the parent on a shared file descriptor).
    obs.clear_registry()


def _worker_run(task: CTTask) -> ConcurrentResult:
    assert _WORKER_KERNEL is not None, "pool initializer did not run"
    return _run_task(_WORKER_KERNEL, task)


class ProcessPoolCTRunner:
    """Executes tasks in ``workers`` processes, results in task order.

    The pool is created lazily on first use and pinned to one kernel
    (the initializer ships the kernel once instead of pickling it per
    task); running against a different kernel recycles the pool.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("process pool needs at least one worker")
        self.workers = workers
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_kernel: Optional[Kernel] = None

    def _context(self) -> multiprocessing.context.BaseContext:
        # fork shares the kernel pages copy-on-write; fall back where the
        # platform does not offer it (e.g. Windows spawn-only).
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform-dependent
            return multiprocessing.get_context()

    def _ensure_pool(self, kernel: Kernel) -> "multiprocessing.pool.Pool":
        if self._pool is not None and self._pool_kernel is not kernel:
            self.close()
        if self._pool is None:
            self._pool = self._context().Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(kernel,),
            )
            self._pool_kernel = kernel
        return self._pool

    def run_many(
        self, kernel: Kernel, tasks: Sequence[CTTask]
    ) -> List[ConcurrentResult]:
        if not tasks:
            return []
        started = obs.tick()
        pool = self._ensure_pool(kernel)
        # Pool.map preserves input order regardless of completion order.
        results = pool.map(_worker_run, list(tasks))
        if started is not None:
            obs.tock("execution.pool_seconds", started)
            # Workers run with telemetry off; replay their per-run
            # counters so a trace accounts for every execution.
            obs.add("execution.runs", len(results))
            obs.add("execution.steps", sum(r.steps for r in results))
            deadlocks = sum(1 for r in results if r.deadlocked)
            if deadlocks:
                obs.add("execution.deadlocks", deadlocks)
        _count_hangs(results)
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._pool_kernel = None


def make_runner(workers: int, policy=None, fault_plan=None):
    """Build the CT runner for a campaign.

    With neither ``policy`` nor ``fault_plan``: a serial runner for
    ``workers <= 0``, else a process pool (the fast paths). With either
    set, a :class:`~repro.resilience.supervisor.SupervisedRunner` that
    adds per-CT timeouts, bounded retries, quarantine, and pool→serial
    fallback (see ``docs/ROBUSTNESS.md``).
    """
    if policy is None and fault_plan is None:
        if workers <= 0:
            return SerialCTRunner()
        return ProcessPoolCTRunner(workers)
    from repro.resilience.supervisor import SupervisedRunner

    return SupervisedRunner(workers, policy=policy, fault_plan=fault_plan)
