"""Alias coverage (Krace's metric, §7 related work).

Krace proposes *alias coverage* for concurrency fuzzing: the set of
instruction pairs from different threads that touched the same shared
memory during an execution. It is a communication-oriented coverage
signal, coarser than per-interleaving block coverage but cheaper to
collect; this module provides it as an alternative campaign metric so the
two philosophies can be compared on the same substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

import numpy as np

from repro.execution.trace import ConcurrentResult, MemoryAccess

__all__ = ["AliasPair", "alias_coverage", "AliasCoverageTracker"]


@dataclass(frozen=True)
class AliasPair:
    """An unordered pair of instructions aliasing on an address."""

    iid_pair: Tuple[int, int]
    address: int

    @staticmethod
    def of(first_iid: int, second_iid: int, address: int) -> "AliasPair":
        lo, hi = sorted((first_iid, second_iid))
        return AliasPair(iid_pair=(lo, hi), address=address)


def alias_coverage(accesses: Sequence[MemoryAccess]) -> Set[AliasPair]:
    """All cross-thread aliasing instruction pairs of one execution.

    Unlike potential races, reads pair with reads too, and no lockset or
    proximity condition applies — Krace counts the communication topology,
    not its safety.
    """
    by_address: Dict[int, Dict[int, Set[int]]] = {}
    for access in accesses:
        by_address.setdefault(access.address, {}).setdefault(
            access.thread, set()
        ).add(access.iid)
    pairs: Set[AliasPair] = set()
    for address, per_thread_iids in by_address.items():
        iid_arrays = {
            thread: np.fromiter(iids, dtype=np.int64, count=len(iids))
            for thread, iids in per_thread_iids.items()
        }
        for first_thread, second_thread in combinations(sorted(iid_arrays), 2):
            a = iid_arrays[first_thread]
            b = iid_arrays[second_thread]
            # The cross product, ordered (lo, hi) in one vectorised pass;
            # dedup before materialising Python objects.
            lo = np.minimum.outer(a, b).ravel()
            hi = np.maximum.outer(a, b).ravel()
            unique = np.unique(np.stack((lo, hi), axis=1), axis=0)
            pairs.update(
                AliasPair(iid_pair=(lo_iid, hi_iid), address=address)
                for lo_iid, hi_iid in unique.tolist()
            )
    return pairs


class AliasCoverageTracker:
    """Cumulative alias coverage across a campaign."""

    def __init__(self) -> None:
        self._seen: Set[AliasPair] = set()

    def observe(self, result: ConcurrentResult) -> Set[AliasPair]:
        found = alias_coverage(result.accesses)
        fresh = found - self._seen
        self._seen |= fresh
        return fresh

    @property
    def total(self) -> int:
        return len(self._seen)

    @property
    def pairs(self) -> FrozenSet[AliasPair]:
        return frozenset(self._seen)
