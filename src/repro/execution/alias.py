"""Alias coverage (Krace's metric, §7 related work).

Krace proposes *alias coverage* for concurrency fuzzing: the set of
instruction pairs from different threads that touched the same shared
memory during an execution. It is a communication-oriented coverage
signal, coarser than per-interleaving block coverage but cheaper to
collect; this module provides it as an alternative campaign metric so the
two philosophies can be compared on the same substrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.execution.trace import ConcurrentResult, MemoryAccess

__all__ = ["AliasPair", "alias_coverage", "AliasCoverageTracker"]


@dataclass(frozen=True)
class AliasPair:
    """An unordered pair of instructions aliasing on an address."""

    iid_pair: Tuple[int, int]
    address: int

    @staticmethod
    def of(first_iid: int, second_iid: int, address: int) -> "AliasPair":
        lo, hi = sorted((first_iid, second_iid))
        return AliasPair(iid_pair=(lo, hi), address=address)


def alias_coverage(accesses: Sequence[MemoryAccess]) -> Set[AliasPair]:
    """All cross-thread aliasing instruction pairs of one execution.

    Unlike potential races, reads pair with reads too, and no lockset or
    proximity condition applies — Krace counts the communication topology,
    not its safety.
    """
    by_address: Dict[int, List[MemoryAccess]] = {}
    for access in accesses:
        by_address.setdefault(access.address, []).append(access)
    pairs: Set[AliasPair] = set()
    for address, stream in by_address.items():
        per_thread_iids: Dict[int, Set[int]] = {}
        for access in stream:
            per_thread_iids.setdefault(access.thread, set()).add(access.iid)
        threads = sorted(per_thread_iids)
        for i, first_thread in enumerate(threads):
            for second_thread in threads[i + 1 :]:
                for iid_a in per_thread_iids[first_thread]:
                    for iid_b in per_thread_iids[second_thread]:
                        pairs.add(AliasPair.of(iid_a, iid_b, address))
    return pairs


class AliasCoverageTracker:
    """Cumulative alias coverage across a campaign."""

    def __init__(self) -> None:
        self._seen: Set[AliasPair] = set()

    def observe(self, result: ConcurrentResult) -> Set[AliasPair]:
        found = alias_coverage(result.accesses)
        fresh = found - self._seen
        self._seen |= fresh
        return fresh

    @property
    def total(self) -> int:
        return len(self._seen)

    @property
    def pairs(self) -> FrozenSet[AliasPair]:
        return frozenset(self._seen)
