"""Potential data-race detection (the DataCollider stand-in).

The paper's Data-race-coverage metric counts "unique possible data races
found by a data race detector (an implementation of DataCollider) in
explored interleavings" (§5.3). On a serialized trace, the equivalent
notion is a *conflicting access pair*:

- two accesses from different threads to the same address,
- at least one of them a write,
- no lock held in common (lockset condition), and
- close enough that the accesses could genuinely overlap on real
  hardware: either within ``proximity_window`` serialized steps (standing
  in for DataCollider's delay window), or in *adjacent scheduling epochs*
  — a context switch fell between them, so a slightly different pause
  placement would have made them overlap (the standard notion of a
  racing pair in serialized interleaving exploration).

A race's identity is the unordered pair of static instruction ids, so the
count across a campaign is a coverage-style set size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.execution.trace import ConcurrentResult, MemoryAccess

__all__ = ["PotentialRace", "RaceDetector", "find_potential_races"]

DEFAULT_PROXIMITY_WINDOW = 120


@dataclass(frozen=True)
class PotentialRace:
    """One unique potential data race (a conflicting instruction pair)."""

    iid_pair: Tuple[int, int]  # sorted
    address: int

    @staticmethod
    def of(first_iid: int, second_iid: int, address: int) -> "PotentialRace":
        lo, hi = sorted((first_iid, second_iid))
        return PotentialRace(iid_pair=(lo, hi), address=address)


def find_potential_races(
    accesses: Sequence[MemoryAccess],
    proximity_window: int = DEFAULT_PROXIMITY_WINDOW,
    adjacent_epochs: bool = True,
) -> Set[PotentialRace]:
    """Scan one serialized access stream for conflicting pairs.

    A conflicting pair races when it falls within ``proximity_window``
    steps, or (``adjacent_epochs``) when exactly one context switch
    separates it. Runs in O(n²) per address in the worst case, with an
    early break once both criteria are out of reach.
    """
    by_address: Dict[int, List[MemoryAccess]] = {}
    for access in accesses:
        by_address.setdefault(access.address, []).append(access)

    races: Set[PotentialRace] = set()
    for address, stream in by_address.items():
        for i, first in enumerate(stream):
            for second in stream[i + 1 :]:
                near = second.step - first.step <= proximity_window
                adjacent = adjacent_epochs and second.epoch - first.epoch == 1
                if not near and second.epoch - first.epoch > 1:
                    break  # later accesses are only farther away
                if not (near or adjacent):
                    continue
                if second.thread == first.thread:
                    continue
                if not (first.is_write or second.is_write):
                    continue
                if first.locks_held & second.locks_held:
                    continue
                races.add(PotentialRace.of(first.iid, second.iid, address))
    return races


class RaceDetector:
    """Accumulates unique potential races across a testing campaign.

    This is the object the coverage-vs-time experiments sample: its
    :attr:`total` after each dynamic execution is the y-axis of Figure 5.
    """

    def __init__(self, proximity_window: int = DEFAULT_PROXIMITY_WINDOW) -> None:
        self.proximity_window = proximity_window
        self._seen: Set[PotentialRace] = set()

    def observe(self, result: ConcurrentResult) -> Set[PotentialRace]:
        """Record races from one execution; returns only the new ones."""
        found = find_potential_races(result.accesses, self.proximity_window)
        fresh = found - self._seen
        self._seen |= fresh
        return fresh

    @property
    def total(self) -> int:
        return len(self._seen)

    @property
    def races(self) -> FrozenSet[PotentialRace]:
        return frozenset(self._seen)

    def has_pair(self, write_iid: int, read_iid: int) -> bool:
        """Whether a specific static pair has been observed racing."""
        key = tuple(sorted((write_iid, read_iid)))
        return any(race.iid_pair == key for race in self._seen)

    def has_address(self, address: int) -> bool:
        """Whether any race over ``address`` has been observed.

        Triage-level identity: all races on one shared variable belong to
        the same bug report, which is how the evaluation attributes plain
        data-race bugs.
        """
        return any(race.address == address for race in self._seen)
