"""Potential data-race detection (the DataCollider stand-in).

The paper's Data-race-coverage metric counts "unique possible data races
found by a data race detector (an implementation of DataCollider) in
explored interleavings" (§5.3). On a serialized trace, the equivalent
notion is a *conflicting access pair*:

- two accesses from different threads to the same address,
- at least one of them a write,
- no lock held in common (lockset condition), and
- close enough that the accesses could genuinely overlap on real
  hardware: either within ``proximity_window`` serialized steps (standing
  in for DataCollider's delay window), or in *adjacent scheduling epochs*
  — a context switch fell between them, so a slightly different pause
  placement would have made them overlap (the standard notion of a
  racing pair in serialized interleaving exploration).

A race's identity is the unordered pair of static instruction ids, so the
count across a campaign is a coverage-style set size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.execution.trace import ConcurrentResult, MemoryAccess

__all__ = ["PotentialRace", "RaceDetector", "find_potential_races"]

DEFAULT_PROXIMITY_WINDOW = 120


@dataclass(frozen=True)
class PotentialRace:
    """One unique potential data race (a conflicting instruction pair)."""

    iid_pair: Tuple[int, int]  # sorted
    address: int

    @staticmethod
    def of(first_iid: int, second_iid: int, address: int) -> "PotentialRace":
        lo, hi = sorted((first_iid, second_iid))
        return PotentialRace(iid_pair=(lo, hi), address=address)


def find_potential_races(
    accesses: Sequence[MemoryAccess],
    proximity_window: int = DEFAULT_PROXIMITY_WINDOW,
    adjacent_epochs: bool = True,
) -> Set[PotentialRace]:
    """Scan one serialized access stream for conflicting pairs.

    A conflicting pair races when it falls within ``proximity_window``
    steps, or (``adjacent_epochs``) when exactly one context switch
    separates it. The pairwise conditions over each per-address stream
    are evaluated as NumPy masks; lockset intersections are looked up in
    a table over the (few) distinct locksets seen in the stream.
    """
    by_address: Dict[int, List[MemoryAccess]] = {}
    for access in accesses:
        by_address.setdefault(access.address, []).append(access)

    races: Set[PotentialRace] = set()
    lockset_ids: Dict[FrozenSet[int], int] = {}
    locksets: List[FrozenSet[int]] = []
    disjoint = np.empty((0, 0), np.bool_)
    for address, stream in by_address.items():
        size = len(stream)
        if size < 2:
            continue
        step = np.fromiter((a.step for a in stream), np.int64, size)
        epoch = np.fromiter((a.epoch for a in stream), np.int64, size)
        thread = np.fromiter((a.thread for a in stream), np.int64, size)
        write = np.fromiter((a.is_write for a in stream), np.bool_, size)
        lockset = np.empty(size, np.int64)
        for k, access in enumerate(stream):
            held = access.locks_held
            index = lockset_ids.get(held)
            if index is None:
                index = len(locksets)
                lockset_ids[held] = index
                locksets.append(held)
            lockset[k] = index

        conflicting = step[None, :] - step[:, None] <= proximity_window
        if adjacent_epochs:
            conflicting |= epoch[None, :] - epoch[:, None] == 1
        conflicting &= thread[None, :] != thread[:, None]
        conflicting &= write[None, :] | write[:, None]
        conflicting &= np.tri(size, size, -1, dtype=np.bool_).T
        first_idx, second_idx = np.nonzero(conflicting)
        if not len(first_idx):
            continue

        # Lockset condition: intersect only the distinct lockset pairs.
        if len(disjoint) < len(locksets):
            disjoint = np.array(
                [[not (a & b) for b in locksets] for a in locksets], np.bool_
            )
        keep = disjoint[lockset[first_idx], lockset[second_idx]]
        first_idx, second_idx = first_idx[keep], second_idx[keep]

        iid = np.fromiter((a.iid for a in stream), np.int64, size)
        pairs = np.stack(
            (
                np.minimum(iid[first_idx], iid[second_idx]),
                np.maximum(iid[first_idx], iid[second_idx]),
            ),
            axis=1,
        )
        races.update(
            PotentialRace(iid_pair=(lo, hi), address=address)
            for lo, hi in np.unique(pairs, axis=0).tolist()
        )
    return races


class RaceDetector:
    """Accumulates unique potential races across a testing campaign.

    This is the object the coverage-vs-time experiments sample: its
    :attr:`total` after each dynamic execution is the y-axis of Figure 5.
    """

    def __init__(self, proximity_window: int = DEFAULT_PROXIMITY_WINDOW) -> None:
        self.proximity_window = proximity_window
        self._seen: Set[PotentialRace] = set()

    def observe(self, result: ConcurrentResult) -> Set[PotentialRace]:
        """Record races from one execution; returns only the new ones."""
        found = find_potential_races(result.accesses, self.proximity_window)
        fresh = found - self._seen
        self._seen |= fresh
        return fresh

    @property
    def total(self) -> int:
        return len(self._seen)

    @property
    def races(self) -> FrozenSet[PotentialRace]:
        return frozenset(self._seen)

    def has_pair(self, write_iid: int, read_iid: int) -> bool:
        """Whether a specific static pair has been observed racing."""
        key = tuple(sorted((write_iid, read_iid)))
        return any(race.iid_pair == key for race in self._seen)

    def state_dict(self) -> List[List[int]]:
        """JSON-serializable snapshot (sorted ``[lo, hi, address]`` rows).

        Part of a campaign's resumable state: the journal checkpoints the
        detector after every CTI so a resumed campaign deduplicates races
        against exactly the set the interrupted one had seen.
        """
        return sorted(
            [race.iid_pair[0], race.iid_pair[1], race.address]
            for race in self._seen
        )

    def load_state(self, state: Sequence[Sequence[int]]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._seen = {
            PotentialRace(iid_pair=(int(lo), int(hi)), address=int(address))
            for lo, hi, address in state
        }

    def has_address(self, address: int) -> bool:
        """Whether any race over ``address`` has been observed.

        Triage-level identity: all races on one shared variable belong to
        the same bug report, which is how the evaluation attributes plain
        data-race bugs.
        """
        return any(race.address == address for race in self._seen)
