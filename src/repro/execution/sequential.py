"""Single-threaded STI execution.

Step 2 of the paper's workflow (§3): run each sequential test input alone
and record the information that primes the CT generator — the covered
blocks (SCBs), the dynamic control-flow path, the memory footprint (used
for potential inter-thread dataflow edges), and the dynamic instruction
stream (the population scheduling hints are drawn from).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.errors import ExecutionLimitExceeded
from repro.execution.machine import DEFAULT_MAX_STEPS, Machine, ThreadContext, TraceSink
from repro.execution.trace import BugEvent, MemoryAccess, SequentialTrace
from repro.kernel.code import Kernel
from repro.kernel.isa import Instruction

__all__ = ["run_sequential"]


class _SequentialSink(TraceSink):
    def __init__(self, trace: SequentialTrace) -> None:
        self.trace = trace
        self._step = 0
        self._previous_block: Optional[int] = None

    def on_block_entry(self, thread: ThreadContext, block_id: int) -> None:
        trace = self.trace
        if self._previous_block is not None:
            trace.flow_edges.append((self._previous_block, block_id))
        self._previous_block = block_id
        if block_id not in trace.covered_blocks:
            trace.covered_blocks.add(block_id)
            trace.block_sequence.append(block_id)

    def on_instruction(self, thread: ThreadContext, instruction: Instruction) -> None:
        self.trace.iid_trace.append(instruction.iid)
        self._step += 1

    def on_memory_access(
        self,
        thread: ThreadContext,
        instruction: Instruction,
        address: int,
        is_write: bool,
    ) -> None:
        self.trace.accesses.append(
            MemoryAccess(
                step=self._step,
                thread=thread.tid,
                iid=instruction.iid,
                block_id=thread.block_id if thread.block_id is not None else -1,
                address=address,
                is_write=is_write,
                locks_held=frozenset(thread.locks_held),
            )
        )

    def on_bug_event(
        self, thread: ThreadContext, instruction: Instruction, kind: str
    ) -> None:
        self.trace.bug_events.append(
            BugEvent(
                step=self._step,
                thread=thread.tid,
                iid=instruction.iid,
                block_id=thread.block_id if thread.block_id is not None else -1,
                kind=kind,
            )
        )


def run_sequential(
    kernel: Kernel,
    syscalls: Sequence[Tuple[str, Sequence[int]]],
    sti_id: int = -1,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> SequentialTrace:
    """Execute ``syscalls`` on a single thread against a fresh kernel state.

    Returns the full :class:`SequentialTrace`; an exceeded step budget marks
    the trace ``completed=False`` instead of propagating, since a fuzzing
    campaign must survive pathological inputs.
    """
    trace = SequentialTrace(sti_id=sti_id)
    sink = _SequentialSink(trace)
    machine = Machine(kernel, sink, max_steps=max_steps)
    thread = machine.create_thread(syscalls)
    try:
        while machine.runnable(thread):
            machine.step(thread)
    except ExecutionLimitExceeded:
        trace.completed = False
    return trace
