"""Execution trace records.

These are the artefacts dynamic tests produce and everything else consumes:
the graph builder turns sequential traces into CT-graph vertices and edges,
the dataset builder labels vertices from concurrent coverage, and the race
detector scans the serialized access stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

__all__ = ["MemoryAccess", "BugEvent", "SequentialTrace", "ConcurrentResult"]


@dataclass(frozen=True)
class MemoryAccess:
    """One dynamic shared-memory access."""

    step: int
    thread: int
    iid: int
    block_id: int
    address: int
    is_write: bool
    locks_held: FrozenSet[str]
    #: Scheduling epoch: number of context switches before this access.
    epoch: int = 0


@dataclass(frozen=True)
class BugEvent:
    """A fired CHECK/DEREF assertion (a manifested concurrency bug)."""

    step: int
    thread: int
    iid: int
    block_id: int
    kind: str  # "check" or "deref"


@dataclass
class SequentialTrace:
    """Everything recorded from a single-threaded STI execution."""

    sti_id: int
    covered_blocks: Set[int] = field(default_factory=set)
    #: Blocks in first-entry order (the SCB control-flow path).
    block_sequence: List[int] = field(default_factory=list)
    #: Consecutive-entry pairs, i.e. dynamic control-flow edges.
    flow_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: Full dynamic instruction-id stream (source of scheduling hints).
    iid_trace: List[int] = field(default_factory=list)
    accesses: List[MemoryAccess] = field(default_factory=list)
    bug_events: List[BugEvent] = field(default_factory=list)
    completed: bool = True

    @property
    def num_steps(self) -> int:
        return len(self.iid_trace)

    def written_addresses(self) -> Set[int]:
        return {a.address for a in self.accesses if a.is_write}

    def read_addresses(self) -> Set[int]:
        return {a.address for a in self.accesses if not a.is_write}

    def accessed_addresses(self) -> Set[int]:
        return {a.address for a in self.accesses}

    def dataflow_edges(self) -> List[Tuple[int, int]]:
        """Intra-thread dataflow: (writer block → reader block) pairs.

        For every read, an edge from the block holding the most recent
        prior write to the same address within this trace.
        """
        last_writer: Dict[int, int] = {}
        edges: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for access in self.accesses:
            if access.is_write:
                last_writer[access.address] = access.block_id
            else:
                writer_block = last_writer.get(access.address)
                if writer_block is not None and writer_block != access.block_id:
                    edge = (writer_block, access.block_id)
                    if edge not in seen:
                        seen.add(edge)
                        edges.append(edge)
        return edges


@dataclass
class ConcurrentResult:
    """Everything recorded from one concurrent test execution."""

    #: Blocks covered per thread during the concurrent run (one set per
    #: thread; two-thread CTs are the paper's configuration but campaigns
    #: may run any N).
    covered_blocks: Tuple[Set[int], ...]
    accesses: List[MemoryAccess] = field(default_factory=list)
    bug_events: List[BugEvent] = field(default_factory=list)
    #: Number of context switches that actually happened.
    num_switches: int = 0
    #: Scheduling hints that were actually enforced (vs skipped).
    hints_enforced: int = 0
    steps: int = 0
    completed: bool = True
    deadlocked: bool = False
    #: Interrupts injected during the run (§6 extension).
    irqs_fired: int = 0
    #: Why the run did not complete: ``None`` (completed), ``"hang"``
    #: (instruction budget exceeded — the recorded outcome for a CT that
    #: would wedge a real worker), ``"deadlock"``, or ``"quarantined"``
    #: (the supervisor gave up after repeated failures and recorded a
    #: failed-but-counted result).
    failure: Optional[str] = None

    @property
    def hung(self) -> bool:
        """Whether the run was cut off by the instruction budget."""
        return self.failure == "hang"

    def all_covered(self) -> Set[int]:
        return set().union(*self.covered_blocks)

    def schedule_dependent_blocks(self, scbs: Set[int]) -> Set[int]:
        """Concurrently covered blocks outside the sequential coverage.

        This is the paper's "schedule-dependent block coverage" metric
        (§5.3): blocks covered concurrently but by neither constituent STI
        when run single-threaded.
        """
        return self.all_covered() - scbs

    def manifested_bug_blocks(self) -> Set[int]:
        return {event.block_id for event in self.bug_events}
