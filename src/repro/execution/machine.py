"""The instruction-level interpreter.

One :class:`Machine` hosts one dynamic test: a fresh memory state, a lock
table, and one :class:`ThreadContext` per test thread. Schedulers (the
sequential executor, the hint-driven concurrent executor, PCT) decide which
thread steps next; the machine itself is policy-free.

Events (block entries, memory accesses, bug assertions) are delivered to a
:class:`TraceSink`, which executors implement to build their trace records.

Memory models (§6's "predict concurrent executions on weak memory
models"): the default is sequential consistency, matching the paper's
training traces. ``memory_model="tso"`` adds per-thread store buffers —
stores become globally visible only when the buffer drains (on lock/unlock
fences, at syscall exit, or when the buffer overflows), while the issuing
thread forwards from its own buffer. Classic store-buffering outcomes that
no SC interleaving produces become reachable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, ExecutionLimitExceeded, InvalidInstruction
from repro.kernel.code import Kernel
from repro.kernel.isa import NUM_REGISTERS, Instruction, Opcode

__all__ = ["ThreadStatus", "ThreadContext", "TraceSink", "Machine"]

#: Default per-execution instruction budget. Generated CFGs are acyclic so
#: executions are finite, but the budget guards against builder regressions.
DEFAULT_MAX_STEPS = 200_000

#: Store-buffer capacity under TSO; the oldest entry drains on overflow.
DEFAULT_STORE_BUFFER_CAPACITY = 8


class ThreadStatus(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"  # waiting on a lock
    DONE = "done"


@dataclass
class ThreadContext:
    """Architectural state of one test thread."""

    tid: int
    #: Remaining syscall invocations: (syscall name, args).
    pending_syscalls: List[Tuple[str, List[int]]]
    registers: List[int] = field(default_factory=lambda: [0] * NUM_REGISTERS)
    #: (block_id, index) return frames.
    call_stack: List[Tuple[int, int]] = field(default_factory=list)
    block_id: Optional[int] = None
    index: int = 0
    status: ThreadStatus = ThreadStatus.READY
    waiting_lock: Optional[str] = None
    locks_held: List[str] = field(default_factory=list)
    steps: int = 0

    @property
    def between_syscalls(self) -> bool:
        return self.block_id is None


class TraceSink:
    """Receiver of execution events; executors subclass it."""

    def on_block_entry(self, thread: ThreadContext, block_id: int) -> None:
        """Control transferred to the start of ``block_id``."""

    def on_instruction(self, thread: ThreadContext, instruction: Instruction) -> None:
        """An instruction is about to execute."""

    def on_memory_access(
        self,
        thread: ThreadContext,
        instruction: Instruction,
        address: int,
        is_write: bool,
    ) -> None:
        """A shared-memory load or store executed."""

    def on_bug_event(
        self, thread: ThreadContext, instruction: Instruction, kind: str
    ) -> None:
        """A CHECK/DEREF assertion fired."""

    def on_syscall_entry(self, thread: ThreadContext, name: str) -> None:
        """A syscall handler is being entered."""


class Machine:
    """Interpreter for one dynamic test."""

    def __init__(
        self,
        kernel: Kernel,
        sink: Optional[TraceSink] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        memory_model: str = "sc",
        store_buffer_capacity: int = DEFAULT_STORE_BUFFER_CAPACITY,
    ) -> None:
        if memory_model not in ("sc", "tso"):
            raise ExecutionError(f"unknown memory model {memory_model!r}")
        self.kernel = kernel
        self.sink = sink or TraceSink()
        self.max_steps = max_steps
        self.memory = kernel.memory.fresh_state()
        self.lock_owners: Dict[str, int] = {}
        self.threads: List[ThreadContext] = []
        self.total_steps = 0
        self.memory_model = memory_model
        self.store_buffer_capacity = store_buffer_capacity
        #: Per-thread FIFO store buffers (TSO only): list of (addr, value).
        self.store_buffers: Dict[int, List[Tuple[int, int]]] = {}

    # -- weak-memory plumbing ------------------------------------------------

    def _buffer_of(self, thread: ThreadContext) -> List[Tuple[int, int]]:
        return self.store_buffers.setdefault(thread.tid, [])

    def drain_store_buffer(self, thread: ThreadContext) -> int:
        """Flush the thread's buffered stores to memory, in order.

        Returns the number of entries drained. A fence under TSO; a no-op
        under SC.
        """
        buffer = self.store_buffers.get(thread.tid)
        if not buffer:
            return 0
        count = len(buffer)
        for address, value in buffer:
            self.memory.store(address, value)
        buffer.clear()
        return count

    def drain_oldest(self, thread: ThreadContext) -> bool:
        """Flush only the *oldest* buffered store of ``thread`` to memory.

        Returns whether anything was drained. This is the oracle's
        voluntary-drain scheduling choice under TSO: hardware may commit a
        buffered store at any point, so the explorer models each single
        commit as a distinct branch (draining oldest-first preserves TSO's
        per-thread store order).
        """
        buffer = self.store_buffers.get(thread.tid)
        if not buffer:
            return False
        address, value = buffer.pop(0)
        self.memory.store(address, value)
        return True

    def _store(self, thread: ThreadContext, address: int, value: int) -> None:
        if self.memory_model == "sc":
            self.memory.store(address, value)
            return
        buffer = self._buffer_of(thread)
        buffer.append((address, value))
        if len(buffer) > self.store_buffer_capacity:
            oldest_address, oldest_value = buffer.pop(0)
            self.memory.store(oldest_address, oldest_value)

    def _load(self, thread: ThreadContext, address: int) -> int:
        if self.memory_model == "tso":
            # Store forwarding: the issuing thread sees its own buffer.
            for buffered_address, value in reversed(self._buffer_of(thread)):
                if buffered_address == address:
                    return value
        return self.memory.load(address)

    # -- interrupt injection (§6: interrupt-handler coverage) -----------------

    def fire_irq(
        self, thread: ThreadContext, handler_name: str, max_steps: int = 5_000
    ) -> None:
        """Run an interrupt handler to completion on ``thread``'s CPU.

        The handler executes atomically (interrupts-disabled semantics):
        the interrupted thread's registers and control state are saved, a
        fresh register file runs the handler, and everything is restored
        afterwards. Coverage, memory accesses and bug events are emitted
        under the interrupted thread's id — IRQ code genuinely races with
        whatever the other thread is doing.
        """
        if handler_name not in self.kernel.functions:
            raise ExecutionError(f"unknown IRQ handler {handler_name!r}")
        saved = (
            list(thread.registers),
            list(thread.call_stack),
            thread.block_id,
            thread.index,
        )
        thread.registers = [0] * NUM_REGISTERS
        thread.call_stack = []
        entry = self.kernel.functions[handler_name].entry_block
        self._enter_block(thread, entry)
        steps = 0
        while thread.block_id is not None and steps < max_steps:
            block = self.kernel.blocks[thread.block_id]
            if thread.index >= len(block.instructions):
                raise ExecutionError(
                    f"IRQ handler fell off block {thread.block_id}"
                )
            instruction = block.instructions[thread.index]
            self.sink.on_instruction(thread, instruction)
            self.total_steps += 1
            steps += 1
            self._execute(thread, block, instruction)
            if thread.status is ThreadStatus.BLOCKED:
                raise ExecutionError(
                    f"IRQ handler {handler_name!r} blocked on a lock"
                )
        if steps >= max_steps:
            raise ExecutionLimitExceeded(
                f"IRQ handler {handler_name!r} exceeded {max_steps} steps"
            )
        # The handler's final RET set block_id to None and may have marked
        # the thread DONE; undo both and restore the interrupted state.
        thread.status = ThreadStatus.READY
        thread.registers, thread.call_stack, thread.block_id, thread.index = saved

    # -- setup -----------------------------------------------------------

    def create_thread(self, syscalls: Sequence[Tuple[str, Sequence[int]]]) -> ThreadContext:
        """Register a thread that will run the given syscall sequence."""
        pending = []
        for name, args in syscalls:
            if name not in self.kernel.syscalls:
                raise ExecutionError(f"unknown syscall {name!r}")
            spec = self.kernel.syscalls[name]
            pending.append((name, spec.clamp_args(list(args))))
        thread = ThreadContext(tid=len(self.threads), pending_syscalls=pending)
        self.threads.append(thread)
        return thread

    # -- scheduling queries ------------------------------------------------

    def runnable(self, thread: ThreadContext) -> bool:
        if thread.status is ThreadStatus.DONE:
            return False
        if thread.status is ThreadStatus.BLOCKED:
            # Re-check: the lock may have been released since.
            assert thread.waiting_lock is not None
            owner = self.lock_owners.get(thread.waiting_lock)
            if owner is None or owner == thread.tid:
                thread.status = ThreadStatus.READY
                return True
            return False
        return True

    def all_done(self) -> bool:
        return all(t.status is ThreadStatus.DONE for t in self.threads)

    # -- execution ---------------------------------------------------------

    def _enter_block(self, thread: ThreadContext, block_id: int) -> None:
        thread.block_id = block_id
        thread.index = 0
        self.sink.on_block_entry(thread, block_id)

    def _dispatch_next_syscall(self, thread: ThreadContext) -> bool:
        """Start the thread's next syscall; False when the thread is done."""
        if not thread.pending_syscalls:
            thread.status = ThreadStatus.DONE
            return False
        name, args = thread.pending_syscalls.pop(0)
        spec = self.kernel.syscalls[name]
        thread.registers = [0] * NUM_REGISTERS
        for i, value in enumerate(args[: NUM_REGISTERS]):
            thread.registers[i] = value
        thread.call_stack = []
        self.sink.on_syscall_entry(thread, name)
        entry = self.kernel.functions[spec.handler].entry_block
        self._enter_block(thread, entry)
        return True

    def step(self, thread: ThreadContext) -> None:
        """Execute one instruction (or one dispatch/blocked transition).

        Raises :class:`ExecutionLimitExceeded` past the step budget. A step
        on a BLOCKED thread whose lock is still held is a no-op; schedulers
        should consult :meth:`runnable` first.
        """
        if thread.status is ThreadStatus.DONE:
            raise ExecutionError(f"thread {thread.tid} is done")
        if self.total_steps >= self.max_steps:
            raise ExecutionLimitExceeded(
                f"execution exceeded {self.max_steps} steps"
            )
        if thread.status is ThreadStatus.BLOCKED and not self.runnable(thread):
            return
        if thread.between_syscalls:
            if not self._dispatch_next_syscall(thread):
                return
            # Dispatch consumes the step; first instruction runs next step.
            self.total_steps += 1
            return

        assert thread.block_id is not None
        block = self.kernel.blocks[thread.block_id]
        if thread.index >= len(block.instructions):
            raise ExecutionError(
                f"fell off the end of block {thread.block_id} "
                f"(malformed block without terminator)"
            )
        instruction = block.instructions[thread.index]
        self.sink.on_instruction(thread, instruction)
        self.total_steps += 1
        thread.steps += 1
        self._execute(thread, block, instruction)

    def _execute(self, thread: ThreadContext, block, instruction: Instruction) -> None:
        op = instruction.opcode
        regs = thread.registers
        ops = instruction.operands

        if op is Opcode.NOP:
            thread.index += 1
        elif op is Opcode.MOVI:
            regs[ops[0].reg] = ops[1].imm
            thread.index += 1
        elif op is Opcode.MOV:
            regs[ops[0].reg] = regs[ops[1].reg]
            thread.index += 1
        elif op is Opcode.ADDI:
            regs[ops[0].reg] += ops[1].imm
            thread.index += 1
        elif op is Opcode.ADD:
            regs[ops[0].reg] += regs[ops[1].reg]
            thread.index += 1
        elif op is Opcode.SUB:
            regs[ops[0].reg] -= regs[ops[1].reg]
            thread.index += 1
        elif op is Opcode.AND:
            regs[ops[0].reg] &= regs[ops[1].reg]
            thread.index += 1
        elif op is Opcode.XOR:
            regs[ops[0].reg] ^= regs[ops[1].reg]
            thread.index += 1
        elif op is Opcode.LOAD:
            address = ops[1].addr
            self.sink.on_memory_access(thread, instruction, address, False)
            regs[ops[0].reg] = self._load(thread, address)
            thread.index += 1
        elif op is Opcode.STORE:
            address = ops[0].addr
            self.sink.on_memory_access(thread, instruction, address, True)
            self._store(thread, address, regs[ops[1].reg])
            thread.index += 1
        elif op is Opcode.STOREI:
            address = ops[0].addr
            self.sink.on_memory_access(thread, instruction, address, True)
            self._store(thread, address, ops[1].imm)
            thread.index += 1
        elif op in (Opcode.JZ, Opcode.JNZ):
            value = regs[ops[0].reg]
            taken = (value == 0) if op is Opcode.JZ else (value != 0)
            if taken:
                self._enter_block(thread, ops[1].label)
            else:
                successors = block.successors
                if len(successors) < 2:
                    raise ExecutionError(
                        f"conditional in block {block.block_id} lacks a "
                        f"fallthrough successor"
                    )
                self._enter_block(thread, successors[1])
        elif op is Opcode.JMP:
            self._enter_block(thread, ops[0].label)
        elif op is Opcode.CALL:
            thread.call_stack.append((block.block_id, thread.index + 1))
            callee = self.kernel.functions[ops[0].name]
            self._enter_block(thread, callee.entry_block)
        elif op is Opcode.RET:
            if thread.call_stack:
                return_block, return_index = thread.call_stack.pop()
                thread.block_id = return_block
                thread.index = return_index
            else:
                # Syscall handler finished; syscall exit is a full fence.
                self.drain_store_buffer(thread)
                thread.block_id = None
                thread.index = 0
                if not thread.pending_syscalls:
                    thread.status = ThreadStatus.DONE
        elif op is Opcode.LOCK:
            name = ops[0].name
            owner = self.lock_owners.get(name)
            if owner is None:
                # Acquire is a fence: buffered stores become visible.
                self.drain_store_buffer(thread)
                self.lock_owners[name] = thread.tid
                thread.locks_held.append(name)
                thread.index += 1
            elif owner == thread.tid:
                raise ExecutionError(
                    f"thread {thread.tid} re-acquired lock {name!r}"
                )
            else:
                thread.status = ThreadStatus.BLOCKED
                thread.waiting_lock = name
                # Do not advance: the LOCK retries once runnable again.
        elif op is Opcode.UNLOCK:
            name = ops[0].name
            if self.lock_owners.get(name) != thread.tid:
                raise ExecutionError(
                    f"thread {thread.tid} released lock {name!r} it does not hold"
                )
            # Release is a fence: critical-section stores become visible.
            self.drain_store_buffer(thread)
            del self.lock_owners[name]
            thread.locks_held.remove(name)
            thread.index += 1
        elif op is Opcode.CHECK:
            if regs[ops[0].reg] == ops[1].imm:
                self.sink.on_bug_event(thread, instruction, "check")
            thread.index += 1
        elif op is Opcode.DEREF:
            if regs[ops[0].reg] == 0:
                self.sink.on_bug_event(thread, instruction, "deref")
            thread.index += 1
        else:  # pragma: no cover - enum is exhaustive
            raise InvalidInstruction(f"unknown opcode {op!r}")

        if thread.status is ThreadStatus.READY and thread.waiting_lock:
            thread.waiting_lock = None
