"""PCT interleaving exploration and scheduling-hint proposal.

Two related facilities live here:

- :class:`PctScheduler` / :func:`run_concurrent_pct`: a faithful
  implementation of the PCT algorithm (Burckhardt et al. [6]) driving the
  machine directly — random distinct thread priorities plus ``depth - 1``
  priority-change points sampled over the expected step count. This is the
  exploration algorithm SKI uses, i.e. the paper's baseline.

- :func:`propose_hint_pairs`: the candidate-schedule generator used by both
  PCT-as-a-proposer and MLPCT. It samples pairs of scheduling hints
  ``(A.x, B.y)`` from the threads' *sequential* instruction streams, which
  is exactly the population of candidates the paper's CT graphs encode
  (§3.1, "two scheduling hints per CT").

Keeping the proposal distribution shared between the baseline and MLPCT
means coverage comparisons isolate the contribution of the learned filter,
the quantity the paper evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import ExecutionLimitExceeded
from repro.execution.concurrent import ConcurrentSink, ScheduleHint
from repro.execution.machine import DEFAULT_MAX_STEPS, Machine
from repro.execution.trace import ConcurrentResult, SequentialTrace
from repro.kernel.code import Kernel

__all__ = [
    "PctScheduler",
    "run_concurrent_pct",
    "propose_hint_pairs",
    "propose_hint_tuples",
]


@dataclass
class PctScheduler:
    """State of one PCT run: thread priorities and change points.

    ``priorities[t]`` is thread ``t``'s current priority (higher runs
    first); ``change_points`` are global step indices at which the running
    thread's priority is dropped below every initial priority.
    """

    priorities: List[float]
    change_points: List[int]
    depth: int

    @staticmethod
    def sample(
        rng: np.random.Generator,
        num_threads: int,
        expected_steps: int,
        depth: int = 3,
    ) -> "PctScheduler":
        """Sample a PCT schedule: random priorities + d-1 change points."""
        if depth < 1:
            raise ValueError("PCT depth must be >= 1")
        priorities = list(rng.permutation(num_threads).astype(float) + float(depth))
        count = max(depth - 1, 0)
        horizon = max(expected_steps, 1)
        change_points = sorted(int(p) for p in rng.integers(1, horizon + 1, size=count))
        return PctScheduler(
            priorities=priorities, change_points=change_points, depth=depth
        )

    def next_thread(self, runnable: Sequence[bool]) -> Optional[int]:
        best: Optional[int] = None
        for tid, ok in enumerate(runnable):
            if ok and (best is None or self.priorities[tid] > self.priorities[best]):
                best = tid
        return best

    def on_step(self, step: int, running: int) -> None:
        """Apply a priority change if ``step`` is a change point."""
        while self.change_points and self.change_points[0] <= step:
            index = len(self.change_points)
            self.change_points.pop(0)
            # The i-th change point (from the end) drops priority to i-1,
            # keeping later drops below earlier ones, as in the paper.
            self.priorities[running] = float(index - 1) - self.depth


def run_concurrent_pct(
    kernel: Kernel,
    stis: Sequence[Sequence],
    scheduler: PctScheduler,
    max_steps: int = DEFAULT_MAX_STEPS,
    memory_model: str = "sc",
) -> ConcurrentResult:
    """Execute N STIs under a sampled PCT schedule."""
    sink = ConcurrentSink(len(stis))
    machine = Machine(kernel, sink, max_steps=max_steps, memory_model=memory_model)
    threads = [machine.create_thread(sti) for sti in stis]
    num_switches = 0
    previous: Optional[int] = None
    deadlocked = False
    limit_hit = False
    try:
        while not machine.all_done():
            runnable = [machine.runnable(t) for t in threads]
            tid = scheduler.next_thread(runnable)
            if tid is None:
                deadlocked = True
                break
            if previous is not None and previous != tid:
                num_switches += 1
                sink.epoch += 1
            previous = tid
            machine.step(threads[tid])
            scheduler.on_step(machine.total_steps, tid)
    except ExecutionLimitExceeded:
        limit_hit = True
    return ConcurrentResult(
        covered_blocks=sink.covered,
        accesses=sink.accesses,
        bug_events=sink.bug_events,
        num_switches=num_switches,
        hints_enforced=0,
        steps=sink.step,
        completed=not limit_hit and not deadlocked,
        deadlocked=deadlocked,
    )


def propose_hint_pairs(
    rng: np.random.Generator,
    trace_a: SequentialTrace,
    trace_b: SequentialTrace,
    count: int,
    max_attempts_factor: int = 5,
) -> List[Tuple[ScheduleHint, ScheduleHint]]:
    """Propose up to ``count`` distinct scheduling-hint pairs.

    Each pair is ``(switch after A executes x, switch after B executes y)``
    with ``x``/``y`` drawn uniformly from the sequential instruction streams
    — the same two-hints-per-CT setup the paper configures Snowcat with.
    Duplicates are dropped; fewer than ``count`` pairs may be returned when
    the trace product is small.
    """
    return propose_hint_tuples(  # type: ignore[return-value]
        rng, (trace_a, trace_b), count, max_attempts_factor=max_attempts_factor
    )


def propose_hint_tuples(
    rng: np.random.Generator,
    traces: Sequence[SequentialTrace],
    count: int,
    max_attempts_factor: int = 5,
) -> List[Tuple[ScheduleHint, ...]]:
    """Propose up to ``count`` distinct per-thread hint vectors.

    The N-thread generalization of :func:`propose_hint_pairs`: each
    proposal holds one hint per thread, drawn uniformly from that thread's
    sequential instruction stream, in thread order. At two threads the
    consumed RNG stream and the returned pairs are exactly those of the
    original pair proposer.
    """
    if any(not trace.iid_trace for trace in traces):
        return []
    proposals: List[Tuple[ScheduleHint, ...]] = []
    seen: Set[Tuple[int, ...]] = set()
    attempts = 0
    limit = count * max_attempts_factor
    while len(proposals) < count and attempts < limit:
        attempts += 1
        key = tuple(
            int(trace.iid_trace[int(rng.integers(len(trace.iid_trace)))])
            for trace in traces
        )
        if key in seen:
            continue
        seen.add(key)
        proposals.append(
            tuple(ScheduleHint(thread=tid, iid=iid) for tid, iid in enumerate(key))
        )
    return proposals
