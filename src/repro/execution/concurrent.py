"""Concurrent test execution under scheduling hints.

Implements the SKI-style serializing scheduler of §3.1: given threads
A and B and hints ``A.x`` / ``B.y``, run A up to (and including) instruction
``x``, yield to B, run B up to ``y``, yield back, then let threads run to
completion. N-thread CTs generalize this with blind round-robin hand-offs
(the two-thread schedule is unchanged). Faithfully reproduces SKI's
deviations:

- a hint whose instruction is never reached is *skipped* (the thread runs
  to completion and the scheduler moves on);
- a thread blocking on a lock forces an extra switch;
- both threads blocked would be a deadlock; the run is marked as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import ExecutionLimitExceeded, ScheduleError
from repro.execution.machine import DEFAULT_MAX_STEPS, Machine, ThreadContext, TraceSink
from repro.execution.trace import BugEvent, ConcurrentResult, MemoryAccess
from repro.kernel.code import Kernel
from repro.kernel.isa import Instruction

__all__ = ["ScheduleHint", "run_concurrent"]


@dataclass(frozen=True)
class ScheduleHint:
    """Yield after ``thread`` executes the instruction with id ``iid``."""

    thread: int
    iid: int


class ConcurrentSink(TraceSink):
    def __init__(self, num_threads: int = 2) -> None:
        self.covered: Tuple[set, ...] = tuple(set() for _ in range(num_threads))
        self.accesses: List[MemoryAccess] = []
        self.bug_events: List[BugEvent] = []
        self.step = 0
        self.epoch = 0
        self.last_iid: Optional[int] = None
        self.last_thread: Optional[int] = None

    def on_block_entry(self, thread: ThreadContext, block_id: int) -> None:
        self.covered[thread.tid].add(block_id)

    def on_instruction(self, thread: ThreadContext, instruction: Instruction) -> None:
        self.step += 1
        self.last_iid = instruction.iid
        self.last_thread = thread.tid

    def on_memory_access(
        self,
        thread: ThreadContext,
        instruction: Instruction,
        address: int,
        is_write: bool,
    ) -> None:
        self.accesses.append(
            MemoryAccess(
                step=self.step,
                thread=thread.tid,
                iid=instruction.iid,
                block_id=thread.block_id if thread.block_id is not None else -1,
                address=address,
                is_write=is_write,
                locks_held=frozenset(thread.locks_held),
                epoch=self.epoch,
            )
        )

    def on_bug_event(
        self, thread: ThreadContext, instruction: Instruction, kind: str
    ) -> None:
        self.bug_events.append(
            BugEvent(
                step=self.step,
                thread=thread.tid,
                iid=instruction.iid,
                block_id=thread.block_id if thread.block_id is not None else -1,
                kind=kind,
            )
        )


def run_concurrent(
    kernel: Kernel,
    stis: Sequence[Sequence[Tuple[str, Sequence[int]]]],
    hints: Sequence[ScheduleHint] = (),
    max_steps: int = DEFAULT_MAX_STEPS,
    memory_model: str = "sc",
    irq_plan: Sequence[Tuple[int, str]] = (),
) -> ConcurrentResult:
    """Execute N STIs concurrently under ``hints``.

    ``hints`` is an ordered sequence of switch points; two threads with two
    hints per CT is the paper's configuration, but any thread count and any
    number of hints (including zero) is accepted.
    ``memory_model="tso"`` runs with per-thread store buffers (§6).
    ``irq_plan`` is a step-ordered sequence of ``(global step, handler
    name)`` interrupt injections; each fires atomically on whichever
    thread is running when the step count passes the mark (§6's
    interrupt-handler coverage).
    """
    num_threads = len(stis)
    for hint in hints:
        if not 0 <= hint.thread < num_threads:
            raise ScheduleError(f"hint references unknown thread {hint.thread}")

    started = obs.tick()
    sink = ConcurrentSink(num_threads)
    machine = Machine(kernel, sink, max_steps=max_steps, memory_model=memory_model)
    threads = [machine.create_thread(sti) for sti in stis]

    pending_hints = list(hints)
    pending_irqs = sorted(irq_plan, key=lambda entry: entry[0])
    current = pending_hints[0].thread if pending_hints else 0
    num_switches = 0
    hints_enforced = 0
    irqs_fired = 0
    deadlocked = False
    limit_hit = False
    forced_away_from: Optional[int] = None

    def switch_to(target: int) -> None:
        nonlocal current, num_switches
        current = target
        num_switches += 1
        sink.epoch += 1

    def switch_away() -> None:
        # Blind round-robin hand-off: the next thread in tid order. At two
        # threads this is exactly "the other thread".
        switch_to((current + 1) % num_threads)

    try:
        while not machine.all_done():
            if forced_away_from == current:
                forced_away_from = None
            if (
                forced_away_from is not None
                and forced_away_from != current
                and machine.runnable(threads[forced_away_from])
            ):
                # The thread we force-preempted (lock contention) can run
                # again: hand control back so its hints stay meaningful.
                switch_to(forced_away_from)
                forced_away_from = None
                continue
            thread = threads[current]
            if not machine.runnable(thread):
                runnable_offset = next(
                    (
                        offset
                        for offset in range(1, num_threads)
                        if machine.runnable(threads[(current + offset) % num_threads])
                    ),
                    None,
                )
                if runnable_offset is not None:
                    # Forced switch (SKI's deadlock-avoidance switch) to the
                    # next runnable thread in round-robin order. A pending
                    # hint for the blocked thread stays pending.
                    forced_away_from = current
                    switch_to((current + runnable_offset) % num_threads)
                    continue
                deadlocked = True
                break
            # Hints targeting the current thread are only actionable ones.
            active_hint = pending_hints[0] if pending_hints else None
            if active_hint is not None and active_hint.thread != current:
                # The scheduler is already past this hint's thread turn
                # only when that thread finished; otherwise we simply run
                # the current thread until its own hint or completion.
                if threads[active_hint.thread].status.value == "done":
                    pending_hints.pop(0)
                    continue
            while (
                pending_irqs
                and machine.total_steps >= pending_irqs[0][0]
                and thread.status.value != "done"
            ):
                _, handler_name = pending_irqs.pop(0)
                machine.fire_irq(thread, handler_name)
                irqs_fired += 1
            machine.step(thread)
            if thread.status.value == "done":
                if pending_hints and pending_hints[0].thread == current:
                    # The hint's switch point was never reached: skip it.
                    pending_hints.pop(0)
                if not machine.all_done():
                    switch_away()
                continue
            if (
                pending_hints
                and pending_hints[0].thread == current
                and sink.last_thread == current
                and sink.last_iid == pending_hints[0].iid
            ):
                pending_hints.pop(0)
                hints_enforced += 1
                switch_away()
    except ExecutionLimitExceeded:
        limit_hit = True

    if started is not None:
        obs.tock("execution.run_seconds", started)
        obs.add("execution.runs")
        obs.add("execution.steps", sink.step)
        if deadlocked:
            obs.add("execution.deadlocks")
    failure = "hang" if limit_hit else ("deadlock" if deadlocked else None)
    return ConcurrentResult(
        covered_blocks=sink.covered,
        accesses=sink.accesses,
        bug_events=sink.bug_events,
        num_switches=num_switches,
        hints_enforced=hints_enforced,
        steps=sink.step,
        completed=not limit_hit and not deadlocked,
        deadlocked=deadlocked,
        irqs_fired=irqs_fired,
        failure=failure,
    )
