"""Deterministic, splittable random-number utilities.

Every stochastic component in the library (kernel generation, fuzzing, PCT
scheduling, model initialisation, sampling strategies) draws from a seeded
:class:`numpy.random.Generator`. Experiments are reproducible bit-for-bit
given the same seed, which matters because the benchmark harness compares
algorithm variants on identical candidate streams, exactly as the paper runs
PCT and MLPCT "on the same CTI stream" (§5.4).

The :func:`split` helper derives statistically independent child generators
from a parent seed and a string label, so components do not share or disturb
each other's streams even when invoked in different orders.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["make_rng", "split", "derive_seed", "choice_index", "shuffled"]


def derive_seed(seed: int, label: str) -> int:
    """Derive a child seed from ``seed`` and a string ``label``.

    The derivation hashes the pair with SHA-256, making child streams
    independent of each other and stable across Python versions (unlike
    ``hash()``, which is salted per process).
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def make_rng(seed: int) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` seeded with ``seed``."""
    return np.random.default_rng(seed)


def split(seed: int, label: str) -> np.random.Generator:
    """Create an independent child generator for component ``label``."""
    return make_rng(derive_seed(seed, label))


def choice_index(rng: np.random.Generator, weights: Sequence[float]) -> int:
    """Sample an index proportionally to ``weights``.

    Falls back to uniform choice when all weights are zero, so callers never
    have to special-case an empty preference signal.
    """
    if not weights:
        raise ValueError("cannot choose from an empty weight sequence")
    total = float(sum(weights))
    if total <= 0.0:
        return int(rng.integers(len(weights)))
    probabilities = np.asarray(weights, dtype=float) / total
    return int(rng.choice(len(weights), p=probabilities))


def shuffled(rng: np.random.Generator, items: Sequence[T]) -> List[T]:
    """Return a new list with ``items`` in random order."""
    order = rng.permutation(len(items))
    return [items[i] for i in order]


def iter_chunks(items: Sequence[T], size: int) -> Iterator[List[T]]:
    """Yield successive chunks of ``items`` of at most ``size`` elements."""
    if size <= 0:
        raise ValueError("chunk size must be positive")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])
