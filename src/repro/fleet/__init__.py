"""Fault-tolerant distributed campaign fleet (see ``docs/FLEET.md``).

A coordinator shards a campaign's CTIs into pure score/execute jobs,
leases them to forked workers with heartbeat-renewed deadlines, rides
out worker crashes, hangs, and serve-server restarts, journals its own
progress for crash-exact resume, and folds the results into a
:class:`~repro.core.mlpct.CampaignResult` byte-identical to the
single-process campaign — with a provenance receipt for every job.
"""

from repro.fleet.coordinator import FleetConfig, FleetCoordinator, run_fleet
from repro.fleet.leases import Lease, LeaseTable
from repro.fleet.receipts import (
    RECEIPT_SCHEMA,
    load_receipt,
    receipt_path,
    verify_receipts,
    write_receipt,
)
from repro.fleet.report import FleetReport, render_fleet_report

__all__ = [
    "FleetConfig",
    "FleetCoordinator",
    "run_fleet",
    "Lease",
    "LeaseTable",
    "RECEIPT_SCHEMA",
    "receipt_path",
    "write_receipt",
    "load_receipt",
    "verify_receipts",
    "FleetReport",
    "render_fleet_report",
]
