"""Fleet worker processes: leased executors for score and execute jobs.

A fleet worker is a forked child that sits in a recv loop on a pipe to
the coordinator, runs one job at a time, and replies with the raw
result. Workers do only *pure* work — scoring a candidate pool with the
RNG-free predictor, or executing pre-seeded :class:`CTTask`s — so a job
produces bit-identical output no matter which worker runs it, on which
attempt, in which order. All campaign state (selection strategy, cost
ledger, race dedup, journal) lives in the coordinator; that split is
what makes fleet aggregation byte-identical to the single-process
campaign.

Liveness is proven two ways: every pipe message renews the worker's
lease, and a daemon heartbeat thread rewrites the worker's heartbeat
file (the standard ``--heartbeat`` JSON shape) every interval. Injected
hangs pause the heartbeat thread first — a hung worker must *look*
hung, or lease expiry could never be tested.

Wire protocol (pickled over a multiprocessing pipe):

- coordinator -> worker: a job dict (``job_id``, ``kind``,
  ``cti_index``, ``attempt``, ``fault``, plus ``proposals`` for score
  jobs or ``tasks`` for execute jobs), or ``None`` to shut down.
- worker -> coordinator: ``("done", job_id, payload, meta)`` or
  ``("error", job_id, message, meta)``. ``meta`` carries operational
  counters (serve reconnects since the last reply) that the coordinator
  folds into the fleet report.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.scoring import CandidateScorer, iter_score_candidates
from repro.errors import ReproError
from repro.execution.parallel import _run_task
from repro.obs.export import HeartbeatWriter

__all__ = ["WorkerSpec", "FleetWorkerHandle"]

#: Exit status for an injected worker crash (mirrors the supervisor's
#: crash-fault exit so post-mortems read the same).
CRASH_EXIT_STATUS = 13

#: How long an injected hang sleeps. Long enough that the coordinator's
#: lease always expires first; the worker is killed before waking.
_HANG_SLEEP_SECONDS = 600.0


@dataclass
class WorkerSpec:
    """Everything a worker needs, passed through ``fork`` by memory.

    ``predictor`` is the in-process PIC model (shared copy-on-write with
    the coordinator); when ``serve_socket`` is set the worker ignores it
    and scores through its own :class:`SocketBackend` connection
    instead — one connection per process, never a shared descriptor.
    """

    worker_id: int
    kernel: object
    graphs: object
    ctis: Sequence[Tuple[object, object]]
    batch_size: int = 8
    predictor: Optional[object] = None
    serve_socket: Optional[str] = None
    serve_retries: int = 8
    serve_backoff_seconds: float = 0.25
    heartbeat_path: Optional[str] = None
    heartbeat_interval: float = 0.2
    hang_sleep_seconds: float = _HANG_SLEEP_SECONDS


class _WorkerBeat:
    """Heartbeat file writer running on a daemon thread.

    Writes immediately on job transitions and every ``interval`` seconds
    in between. ``pause`` stops the thread's writes without stopping the
    thread — used by injected hangs so the worker goes silent exactly
    like a wedged process would.
    """

    def __init__(self, spec: WorkerSpec) -> None:
        self._writer = HeartbeatWriter(spec.heartbeat_path, interval=0.0)
        self._interval = spec.heartbeat_interval
        self._worker_id = spec.worker_id
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._paused = False
        self._jobs_done = 0
        self._state = {"job": None, "kind": None, "cti": None, "attempt": None}
        self._writer.begin(f"fleet-worker-{spec.worker_id}", total=0)
        self._write()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            self._write()

    def _write(self) -> None:
        with self._lock:
            if self._paused:
                return
            self._writer.update(
                done=self._jobs_done,
                force=True,
                role="worker",
                worker=self._worker_id,
                **self._state,
            )

    def begin_job(self, job: dict) -> None:
        with self._lock:
            self._state = {
                "job": job["job_id"],
                "kind": job["kind"],
                "cti": job["cti_index"],
                "attempt": job["attempt"],
            }
        self._write()

    def finish_job(self) -> None:
        with self._lock:
            self._jobs_done += 1
            self._state = {"job": None, "kind": None, "cti": None,
                           "attempt": None}
        self._write()

    def pause(self) -> None:
        with self._lock:
            self._paused = True

    def resume(self) -> None:
        with self._lock:
            self._paused = False

    def close(self) -> None:
        self._stop.set()


def _score_job(spec: WorkerSpec, scorer: CandidateScorer, job: dict) -> List[np.ndarray]:
    """Score a candidate pool; returns one bool bitmap per candidate.

    Scoring is RNG-free and per-graph exact across batching and serving
    substrates, so these bitmaps equal what the sequential campaign
    would have computed inline.
    """
    entries = spec.ctis[job["cti_index"]]
    predicted = []
    for candidate in iter_score_candidates(
        scorer, spec.graphs, *entries, job["proposals"]
    ):
        predicted.append(np.asarray(candidate.predicted, dtype=bool))
    return predicted


def _fleet_worker_main(conn, spec: WorkerSpec) -> None:
    """Entry point of a forked fleet worker."""
    # The fork inherited the coordinator's metrics registry; drop it so
    # worker-side counters never double-count into the parent's export.
    obs.clear_registry()
    beat = _WorkerBeat(spec) if spec.heartbeat_path else None
    backend = None
    scorer: Optional[CandidateScorer] = None
    reconnects_sent = 0
    try:
        if spec.serve_socket:
            from repro.serve.server import SocketBackend

            backend = SocketBackend(
                spec.serve_socket,
                retries=spec.serve_retries,
                backoff_seconds=spec.serve_backoff_seconds,
            )
        parent_pid = os.getppid()
        while True:
            # Poll instead of blocking in recv: a sibling worker forked
            # later inherits our pipe's coordinator end, so a dead
            # coordinator (SIGKILL, injected die) never EOFs us — but it
            # does re-parent us, which getppid exposes.
            while not conn.poll(0.5):
                if os.getppid() != parent_pid:
                    return
            try:
                job = conn.recv()
            except (EOFError, OSError):
                return
            if job is None:
                return
            if beat is not None:
                beat.begin_job(job)
            fault = job.get("fault")
            if fault == "crash":
                os._exit(CRASH_EXIT_STATUS)
            if fault == "hang":
                # Go silent: the heartbeat stops, the lease expires, the
                # coordinator kills us. The sleep only ever ends early
                # in that kill.
                if beat is not None:
                    beat.pause()
                time.sleep(spec.hang_sleep_seconds)
                if beat is not None:
                    beat.resume()
                reply = ("error", job["job_id"],
                         "injected hang outlived its sleep", {})
                conn.send(reply)
                continue
            meta = {}
            if fault == "transient":
                reply = ("error", job["job_id"], "injected transient fault",
                         meta)
            else:
                try:
                    if job["kind"] == "score":
                        if scorer is None:
                            scorer = CandidateScorer(
                                spec.predictor,
                                batch_size=spec.batch_size,
                                backend=backend,
                            )
                        payload = _score_job(spec, scorer, job)
                    else:
                        payload = [
                            _run_task(spec.kernel, task)
                            for task in job["tasks"]
                        ]
                except ReproError as error:
                    reply = ("error", job["job_id"],
                             f"{type(error).__name__}: {error}", meta)
                else:
                    reply = ("done", job["job_id"], payload, meta)
            if backend is not None:
                meta["reconnects"] = backend.reconnects - reconnects_sent
                reconnects_sent = backend.reconnects
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                return
            if beat is not None:
                beat.finish_job()
    finally:
        if backend is not None:
            backend.close()
        if beat is not None:
            beat.close()


@dataclass
class FleetWorkerHandle:
    """Coordinator-side handle to one worker slot's live process."""

    spec: WorkerSpec
    process: object = field(init=False)
    conn: object = field(init=False)
    job: Optional[object] = field(init=False, default=None)  # current _Job
    context: object = None

    def __post_init__(self) -> None:
        context = self.context
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_fleet_worker_main,
            args=(child_conn, self.spec),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    @property
    def worker_id(self) -> int:
        return self.spec.worker_id

    @property
    def busy(self) -> bool:
        return self.job is not None

    def dispatch(self, job, message: dict) -> None:
        self.job = job
        self.conn.send(message)

    def take_job(self):
        job, self.job = self.job, None
        return job

    def kill(self) -> None:
        """Hard-stop the worker (lease expiry, fleet teardown)."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5.0)

    def stop(self) -> None:
        """Polite shutdown: send the sentinel, then reap."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass
