"""Per-job provenance receipts for fleet campaigns.

Every job a fleet coordinator accepts — a candidate pool scored, a batch
of CTs executed — leaves a durable, checksummed receipt behind: which
campaign and CTI it belonged to, which worker ran it on which attempt,
a digest of the inputs the worker was handed, and a digest of the result
the coordinator folded into the campaign. Receipts make the aggregate
auditable after the fact: the final :class:`~repro.core.mlpct
.CampaignResult` can be traced job by job to the processes that
produced it, and a receipt whose digests do not match a recomputation
is evidence of divergence, not a shrug.

Receipts are one JSON file per job (``<label>.job-000042.json``),
written atomically with a SHA-256 checksum over the canonical body —
the same sealing discipline as the campaign journal. A receipt for a
retried job records the *accepted* attempt; earlier attempts never
produced a result the campaign consumed.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Sequence

from repro.errors import FleetError
from repro.resilience.atomic import atomic_write_text, canonical_json, sha256_hex
from repro.resilience.journal import fold_prediction_digest, result_digest

__all__ = [
    "RECEIPT_SCHEMA",
    "receipt_path",
    "write_receipt",
    "load_receipt",
    "verify_receipts",
    "score_inputs_digest",
    "execute_inputs_digest",
    "score_result_digest",
    "execute_result_digest",
]

RECEIPT_SCHEMA = 1

_RECEIPT_NAME = re.compile(r"\.job-(\d+)\.json$")


def _sanitize(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label)


def receipt_path(directory: str, label: str, job_id: int) -> str:
    return os.path.join(directory, f"{_sanitize(label)}.job-{job_id:06d}.json")


# -- digests ------------------------------------------------------------------


def score_inputs_digest(proposals: Sequence[Sequence[object]]) -> str:
    """Digest of a score job's candidate pool (the schedule hints)."""
    return sha256_hex(
        canonical_json(
            [
                [[hint.thread, hint.iid] for hint in pair]
                for pair in proposals
            ]
        )
    )


def execute_inputs_digest(tasks: Sequence[object]) -> str:
    """Digest of an execute job's tasks (everything a result depends on)."""
    return sha256_hex(
        canonical_json(
            [
                {
                    "seed": task.seed,
                    "hints": [[hint.thread, hint.iid] for hint in task.hints],
                    "max_steps": task.max_steps,
                    "memory_model": task.memory_model,
                    "irq_plan": [list(entry) for entry in task.irq_plan],
                }
                for task in tasks
            ]
        )
    )


def score_result_digest(predicted: Sequence[object]) -> str:
    """Digest of a score job's predictions (folded like the journal's
    audit digest, so the two are directly comparable)."""
    digest = ""
    for bits in predicted:
        digest = fold_prediction_digest(digest, None, bits)
    return digest


def execute_result_digest(results: Sequence[object]) -> str:
    """Digest of an execute job's results (concatenated per-result
    journal digests)."""
    return sha256_hex("".join(result_digest(result) for result in results))


# -- sealing / verification ---------------------------------------------------


def write_receipt(directory: str, body: Dict[str, object]) -> str:
    """Seal ``body`` with schema + checksum and write it atomically.

    Returns the receipt's path. ``body`` must carry ``campaign`` and
    ``job`` (they name the file); the checksum covers everything else.
    """
    payload = dict(body)
    payload["schema"] = RECEIPT_SCHEMA
    payload["checksum"] = sha256_hex(canonical_json(payload))
    path = receipt_path(directory, str(body["campaign"]), int(body["job"]))
    atomic_write_text(path, json.dumps(payload, sort_keys=True))
    return path


def load_receipt(path: str) -> Dict[str, object]:
    """Load and verify one receipt; raise :class:`FleetError` if it is
    unreadable, unsealed, or fails its checksum."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise FleetError(f"cannot read receipt {path!r}: {error}") from None
    if not isinstance(payload, dict) or "checksum" not in payload:
        raise FleetError(f"receipt {path!r} has no checksum")
    if payload.get("schema") != RECEIPT_SCHEMA:
        raise FleetError(
            f"receipt {path!r} has schema {payload.get('schema')}, this "
            f"build reads schema {RECEIPT_SCHEMA}"
        )
    checksum = payload.pop("checksum")
    if sha256_hex(canonical_json(payload)) != checksum:
        raise FleetError(
            f"receipt {path!r} failed checksum verification (corrupt or "
            "tampered)"
        )
    return payload


def verify_receipts(
    directory: str, label: Optional[str] = None
) -> List[Dict[str, object]]:
    """Load every receipt in ``directory`` (optionally one campaign's),
    verifying each; returns them sorted by job id."""
    prefix = f"{_sanitize(label)}.job-" if label is not None else None
    receipts: List[Dict[str, object]] = []
    try:
        entries = sorted(os.listdir(directory))
    except OSError as error:
        raise FleetError(
            f"cannot list receipts directory {directory!r}: {error}"
        ) from None
    for entry in entries:
        if not _RECEIPT_NAME.search(entry):
            continue
        if prefix is not None and not entry.startswith(prefix):
            continue
        receipts.append(load_receipt(os.path.join(directory, entry)))
    receipts.sort(key=lambda receipt: int(receipt.get("job", -1)))
    return receipts
