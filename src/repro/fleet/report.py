"""Aggregated fleet report: what the fleet did, and what it survived.

The campaign result itself is byte-identical to the single-process run
and carries no fleet fingerprints — so everything operational
(reassignments, worker deaths, lease expirations, quarantines, serve
reconnects, receipts) lives here, in a separate report the coordinator
returns next to the :class:`CampaignResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.reporting.tables import format_table

__all__ = ["FleetReport", "render_fleet_report"]


@dataclass
class FleetReport:
    """Operational summary of one fleet campaign."""

    campaign: str
    workers: int
    ctis: int
    resumed_ctis: int = 0
    score_jobs: int = 0
    execute_jobs: int = 0
    jobs_completed: int = 0
    reassignments: int = 0
    worker_deaths: int = 0
    lease_expirations: int = 0
    transient_errors: int = 0
    quarantined_workers: int = 0
    serve_reconnects: int = 0
    receipts: int = 0
    receipts_dir: Optional[str] = None
    elapsed_seconds: float = 0.0
    per_worker_jobs: Dict[int, int] = field(default_factory=dict)

    @property
    def jobs_total(self) -> int:
        return self.score_jobs + self.execute_jobs

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign": self.campaign,
            "workers": self.workers,
            "ctis": self.ctis,
            "resumed_ctis": self.resumed_ctis,
            "score_jobs": self.score_jobs,
            "execute_jobs": self.execute_jobs,
            "jobs_completed": self.jobs_completed,
            "reassignments": self.reassignments,
            "worker_deaths": self.worker_deaths,
            "lease_expirations": self.lease_expirations,
            "transient_errors": self.transient_errors,
            "quarantined_workers": self.quarantined_workers,
            "serve_reconnects": self.serve_reconnects,
            "receipts": self.receipts,
            "receipts_dir": self.receipts_dir,
            "elapsed_seconds": self.elapsed_seconds,
            "per_worker_jobs": {
                str(worker): jobs
                for worker, jobs in sorted(self.per_worker_jobs.items())
            },
        }


def render_fleet_report(reports: List[FleetReport]) -> str:
    """Render one aligned table over any number of fleet campaigns."""
    rows = []
    for report in reports:
        rows.append(
            {
                "campaign": report.campaign,
                "workers": report.workers,
                "ctis": f"{report.ctis - report.resumed_ctis}+{report.resumed_ctis}r"
                if report.resumed_ctis
                else report.ctis,
                "jobs": f"{report.jobs_completed}/{report.jobs_total}",
                "reassigned": report.reassignments,
                "deaths": report.worker_deaths,
                "leases_lost": report.lease_expirations,
                "quarantined": report.quarantined_workers,
                "reconnects": report.serve_reconnects,
                "receipts": report.receipts,
                "seconds": round(report.elapsed_seconds, 2),
            }
        )
    return format_table(rows, title="fleet report")
