"""Fleet coordinator: shard a campaign across leased workers, aggregate
crash-exactly.

The coordinator is the only process that holds campaign *state* — the
explorer object with its cost ledger, race dedup, coverage sets,
selection strategy, and journal. Workers (:mod:`repro.fleet.worker`)
hold none: they score candidate pools and execute pre-seeded tasks,
both pure functions of their inputs. That split is what lets a fleet of
N processes, with jobs landing in any order and any job retried on any
worker, fold down to a :class:`CampaignResult` byte-identical to the
single-process campaign.

How byte-identity survives the fan-out, per explorer kind:

- **Planning (both)** walks the CTI stream in order on the coordinator,
  drawing each CTI's candidate pool from the explorer's own
  ``proposals_for`` — the visit-count RNG advances exactly as the
  sequential loop would have advanced it.
- **PCT** needs no predictions: the first ``execution_budget``
  candidates are frozen into :class:`CTTask`s at planning time (the
  task-seed counter advances in stream order), and one *execute job*
  per CTI fans out to the workers.
- **MLPCT** fans each CTI's pool out as a *score job* (workers return
  one boolean bitmap per candidate — RNG-free, per-graph exact across
  batching and serving substrates). Score results can land in any
  order, but the coordinator replays *selection* strictly in CTI order:
  the budget/cap loop, the strategy's ``is_interesting``/``commit``
  calls, the audit digest folds, and task building are a line-for-line
  mirror of :meth:`MLPCTExplorer.explore_cti`. Selected tasks then fan
  out as execute jobs.
- **Accounting (both)** is replayed strictly in CTI order via
  :meth:`account_results`, no matter when execute jobs complete — so
  every ledger charge, race-dedup decision, and history checkpoint
  lands exactly where the sequential campaign put it.

Crash-exact resume: the coordinator reuses the campaign journal
(:mod:`repro.resilience.journal`) — one record per *folded* CTI plus an
atomic checkpoint. Because the selection pipeline runs ahead of the
fold, the checkpoint for CTI *k* composes the live fold-side state
(ledger, races, coverage, history) with a *selection-side snapshot*
captured when CTI *k* was selected (task counter, visit counts,
strategy state); a coordinator SIGKILLed at any instant resumes from
its last fold and reproduces the identical aggregate.

Fault injection reuses :class:`repro.resilience.faults.FaultPlan`,
keyed by fleet job id (score job for CTI ``k`` is ``2k``, execute job
is ``2k+1`` — stable across resume): ``crash`` kills the worker,
``hang`` wedges it until its lease expires, ``transient`` fails one
attempt, ``die@j`` kills the *coordinator* at dispatch (for
crash-resume tests). Every accepted job writes a provenance receipt
(:mod:`repro.fleet.receipts`).
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.core.mlpct import (
    CampaignResult,
    ExplorationStats,
    MLPCTExplorer,
)
from repro.errors import FleetError
from repro.fleet.leases import LeaseTable
from repro.fleet.receipts import (
    execute_inputs_digest,
    execute_result_digest,
    score_inputs_digest,
    score_result_digest,
    verify_receipts,
    write_receipt,
)
from repro.fleet.report import FleetReport
from repro.fleet.worker import FleetWorkerHandle, WorkerSpec
from repro.obs.export import HeartbeatWriter, read_heartbeat
from repro.resilience.faults import FaultPlan
from repro.resilience.journal import CampaignJournal, fold_prediction_digest
from repro.resilience.supervisor import DIE_EXIT_STATUS

__all__ = ["FleetConfig", "FleetCoordinator", "run_fleet"]


def _fork_context():
    # fork shares the kernel/model pages copy-on-write; fall back where
    # the platform does not offer it (e.g. Windows spawn-only).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform-dependent
        return multiprocessing.get_context()


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of a fleet campaign."""

    #: Worker processes (each forked, one job at a time).
    workers: int = 2
    #: Seconds of silence (no pipe traffic, no heartbeat-file write)
    #: after which a worker's lease is revoked and its job reassigned.
    lease_seconds: float = 30.0
    #: Worker heartbeat-file rewrite interval.
    heartbeat_interval: float = 0.2
    #: Directory for coordinator + worker heartbeat files (``repro top
    #: --fleet`` reads it). ``None`` uses a private temp dir, deleted at
    #: exit — leases still work, nothing is observable.
    heartbeat_dir: Optional[str] = None
    #: Directory for per-job provenance receipts; ``None`` disables them.
    receipts_dir: Optional[str] = None
    #: Total attempts a single job may consume before the fleet gives up
    #: (jobs are never silently dropped).
    max_job_attempts: int = 4
    #: Deaths a worker slot survives before it is quarantined (not
    #: respawned) — mirrors the supervisor's ``max_worker_deaths``.
    max_worker_deaths: int = 3
    #: Fleet-level fault-injection spec (``crash@2,hang:0.1,...``),
    #: keyed by job id. ``die@j`` kills the *coordinator* at dispatch of
    #: job ``j`` (attempt 0 only), for crash-resume tests.
    fault_spec: Optional[str] = None
    #: Socket path of a shared ``repro serve`` server; workers then score
    #: through their own resilient :class:`SocketBackend` connections.
    #: ``None`` scores against the fork-shared in-process model.
    serve_socket: Optional[str] = None
    #: Worker-side socket retry budget (generous: a fleet should ride out
    #: a serve-server restart, not fail the job).
    serve_retries: int = 8
    serve_backoff_seconds: float = 0.25
    #: Event-loop poll interval.
    poll_seconds: float = 0.05


@dataclass
class _Job:
    """One leased unit of work. Job ids are a stable function of the CTI
    (score = ``2k``, execute = ``2k+1``) so fault plans and receipts
    mean the same thing before and after a coordinator resume."""

    job_id: int
    kind: str  # "score" | "execute"
    cti_index: int
    attempt: int = 0


@dataclass
class _CTIPlan:
    """Everything the coordinator tracks for one CTI in flight."""

    index: int
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    audit: Dict[str, object] = field(
        default_factory=lambda: {"results": [], "scored": 0, "scored_digest": ""}
    )
    #: Visit-count snapshot (state-dict format) after this CTI's
    #: ``proposals_for`` call — the selection-side half of its checkpoint.
    visit_counts: List[object] = field(default_factory=list)
    #: Candidate pool (MLPCT: kept for selection replay; PCT: dropped).
    proposals: Optional[List[object]] = None
    #: Score-job result (MLPCT): one bool bitmap per candidate.
    predicted: Optional[List[np.ndarray]] = None
    tasks: List[object] = field(default_factory=list)
    inferences_before: Optional[List[int]] = None
    results: Optional[List[object]] = None
    selection_done: bool = False
    #: Selection-side snapshot after this CTI's selection (checkpoint
    #: composition): task counter and (MLPCT) strategy state.
    task_index_after: int = 0
    strategy_state: Optional[Dict[str, object]] = None

    @property
    def ready_to_fold(self) -> bool:
        return self.selection_done and self.results is not None


class FleetCoordinator:
    """Drives one fleet campaign to completion (or a precise failure)."""

    def __init__(
        self,
        explorer,
        ctis: Sequence[Tuple[object, ...]],
        config: Optional[FleetConfig] = None,
        journal: Optional[CampaignJournal] = None,
    ) -> None:
        self.explorer = explorer
        self.ctis = list(ctis)
        self.config = config or FleetConfig()
        self.journal = journal
        self._validate()
        self.is_mlpct = isinstance(explorer, MLPCTExplorer)
        self.fault_plan = (
            FaultPlan.parse(self.config.fault_spec, seed=explorer.seed)
            if self.config.fault_spec
            else None
        )
        self.leases = LeaseTable(self.config.lease_seconds)
        self.report = FleetReport(
            campaign=explorer.label,
            workers=self.config.workers,
            ctis=len(self.ctis),
            receipts_dir=self.config.receipts_dir,
        )
        self._plans: Dict[int, _CTIPlan] = {}
        self._pending: Deque[_Job] = deque()
        self._workers: List[Optional[FleetWorkerHandle]] = []
        self._deaths: Dict[int, int] = {}
        self._quarantined: set = set()
        self._beat_seen: Dict[int, float] = {}
        self._next_select = 0
        self._next_fold = 0
        self._result_stats: List[ExplorationStats] = []
        self._outstanding = 0  # jobs dispatched or pending, not yet accepted
        self._heartbeat_dir = self.config.heartbeat_dir
        self._own_heartbeat_dir = False
        self._coordinator_beat: Optional[HeartbeatWriter] = None
        self._last_liveness = 0.0
        self._context = _fork_context()

    def _validate(self) -> None:
        config = self.explorer.config
        if config.supervision is not None or config.fault_spec:
            raise FleetError(
                "fleet campaigns own their fault handling; build the "
                "explorer without supervision or a runner fault spec "
                "(use FleetConfig.fault_spec to inject fleet faults)"
            )
        if config.parallel_workers:
            raise FleetError(
                "fleet campaigns own their parallelism; build the "
                "explorer with parallel_workers=0"
            )
        if self.config.workers < 1:
            raise FleetError("a fleet needs at least one worker")
        scorer = getattr(self.explorer, "scorer", None)
        if scorer is not None and scorer.cascade_filter is not None:
            raise FleetError(
                "the scoring cascade's fallback scores are position-"
                "dependent and cannot be sharded; build the fleet "
                "explorer without a cascade filter"
            )

    # -- planning (strict CTI order; advances explorer RNG state) ------------

    def _plan(self, start_index: int) -> None:
        for index in range(start_index, len(self.ctis)):
            entries = self.ctis[index]
            plan = _CTIPlan(index=index)
            proposals = self.explorer.proposals_for(*entries)
            plan.visit_counts = sorted(
                [list(key), visits]
                for key, visits in self.explorer._visit_counts.items()
            )
            if self.is_mlpct:
                # Workers score at most what the sequential cap would
                # ever consider.
                plan.proposals = [
                    tuple(pair)
                    for pair in proposals[: self.explorer.config.inference_cap]
                ]
                if plan.proposals:
                    self._enqueue(_Job(2 * index, "score", index))
                    self.report.score_jobs += 1
                else:
                    plan.predicted = []
            else:
                selected = [
                    list(pair)
                    for pair in proposals[: self.explorer.config.execution_budget]
                ]
                plan.tasks = self.explorer.build_tasks(*entries, selected)
                plan.selection_done = True
                plan.task_index_after = self.explorer._task_index
                if plan.tasks:
                    self._enqueue(_Job(2 * index + 1, "execute", index))
                    self.report.execute_jobs += 1
                else:
                    plan.results = []
            self._plans[index] = plan

    def _enqueue(self, job: _Job) -> None:
        self._pending.append(job)
        self._outstanding += 1

    # -- selection replay (MLPCT, strict CTI order) --------------------------

    def _replay_selection(self, plan: _CTIPlan) -> None:
        """Mirror of :meth:`MLPCTExplorer.explore_cti`'s selection loop,
        fed by worker-scored bitmaps instead of an inline scorer."""
        entries = self.ctis[plan.index]
        explorer = self.explorer
        stats, audit = plan.stats, plan.audit
        selected: List[Tuple[object, ...]] = []
        inferences_before: List[int] = []
        position = 0
        while True:
            if len(selected) >= explorer.config.execution_budget:
                break
            if stats.inferences >= explorer.config.inference_cap:
                break
            if position >= len(plan.predicted):
                break
            hints = plan.proposals[position]
            predicted = plan.predicted[position]
            position += 1
            stats.inferences += 1
            obs.add("campaign.inferences")
            audit["scored"] += 1
            audit["scored_digest"] = fold_prediction_digest(
                audit["scored_digest"], None, predicted
            )
            graph = explorer.graphs.graph_for(*entries, list(hints))
            if not explorer.strategy.is_interesting(graph, predicted):
                obs.add("campaign.executions_saved")
                continue
            explorer.strategy.commit(graph, predicted)
            selected.append(hints)
            inferences_before.append(stats.inferences)
        plan.inferences_before = inferences_before
        plan.tasks = explorer.build_tasks(*entries, selected)
        plan.task_index_after = explorer._task_index
        plan.strategy_state = explorer.strategy.state_dict()
        plan.selection_done = True
        plan.predicted = None  # bitmaps are folded into the digest; free them
        if plan.tasks:
            self._enqueue(_Job(2 * plan.index + 1, "execute", plan.index))
            self.report.execute_jobs += 1
        else:
            plan.results = []

    # -- accounting fold (strict CTI order) ----------------------------------

    def _composed_state(self, plan: _CTIPlan) -> Dict[str, object]:
        """Checkpoint state as-of CTI ``plan.index``: live fold-side
        fields + the selection-side snapshot taken when this CTI was
        selected (the pipeline has usually selected further ahead)."""
        state = self.explorer.state_dict()
        state["task_index"] = plan.task_index_after
        state["visit_counts"] = plan.visit_counts
        if plan.strategy_state is not None:
            state["strategy"] = plan.strategy_state
        return state

    def _fold(self, plan: _CTIPlan) -> None:
        entries = self.ctis[plan.index]
        self.explorer.account_results(
            *entries,
            plan.results,
            plan.stats,
            inferences_before=plan.inferences_before,
            audit=plan.audit,
            tasks=plan.tasks,
        )
        self._result_stats.append(plan.stats)
        if self.journal is not None:
            self.journal.record_cti(
                self.explorer,
                plan.index,
                plan.stats,
                audit=plan.audit,
                state=self._composed_state(plan),
            )
        del self._plans[plan.index]

    def _advance_pipeline(self) -> None:
        while self._next_select < len(self.ctis):
            plan = self._plans.get(self._next_select)
            if plan is None or plan.selection_done:
                self._next_select += 1
                continue
            if plan.predicted is None:
                break  # score job still in flight
            self._replay_selection(plan)
            self._next_select += 1
        while self._next_fold < len(self.ctis):
            plan = self._plans.get(self._next_fold)
            if plan is None or not plan.ready_to_fold:
                break
            self._fold(plan)
            self._next_fold += 1

    # -- workers, dispatch, liveness -----------------------------------------

    def _spawn_worker(self, slot: int) -> FleetWorkerHandle:
        spec = WorkerSpec(
            worker_id=slot,
            kernel=self.explorer.kernel,
            graphs=self.explorer.graphs,
            ctis=self.ctis,
            batch_size=self.explorer.config.score_batch_size,
            predictor=getattr(self.explorer, "predictor", None),
            serve_socket=self.config.serve_socket,
            serve_retries=self.config.serve_retries,
            serve_backoff_seconds=self.config.serve_backoff_seconds,
            heartbeat_path=os.path.join(
                self._heartbeat_dir, f"worker-{slot}.json"
            ),
            heartbeat_interval=self.config.heartbeat_interval,
        )
        return FleetWorkerHandle(spec=spec, context=self._context)

    def _job_message(self, job: _Job) -> Dict[str, object]:
        fault = None
        if self.fault_plan is not None:
            injected = self.fault_plan.fault_for(job.job_id, job.attempt)
            fault = injected.kind if injected is not None else None
        message: Dict[str, object] = {
            "job_id": job.job_id,
            "kind": job.kind,
            "cti_index": job.cti_index,
            "attempt": job.attempt,
            "fault": fault,
        }
        plan = self._plans[job.cti_index]
        if job.kind == "score":
            message["proposals"] = plan.proposals
        else:
            message["tasks"] = plan.tasks
        return message

    def _dispatch_ready(self, now: float) -> None:
        for slot, worker in enumerate(self._workers):
            if not self._pending:
                return
            if worker is None or worker.busy:
                continue
            job = self._pending.popleft()
            if (
                self.fault_plan is not None
                and job.attempt == 0
                and self.fault_plan.should_die(job.job_id)
            ):
                # Injected coordinator death: exactly what SIGKILL at
                # dispatch time looks like to the fleet journal.
                os._exit(DIE_EXIT_STATUS)
            try:
                worker.dispatch(job, self._job_message(job))
            except (BrokenPipeError, OSError):
                # The worker died between loops; its pipe is gone.
                self._bury_worker(slot, worker.take_job())
                continue
            self.leases.grant(job.job_id, slot, job.attempt, now)
            obs.add("fleet.dispatched")

    def _reassign(self, job: _Job) -> None:
        attempt = job.attempt + 1
        if attempt >= self.config.max_job_attempts:
            raise FleetError(
                f"fleet job {job.job_id} ({job.kind} for CTI "
                f"{job.cti_index}) failed {self.config.max_job_attempts} "
                "attempts; refusing to drop it"
            )
        self._pending.appendleft(
            _Job(job.job_id, job.kind, job.cti_index, attempt)
        )
        self.report.reassignments += 1
        obs.add("fleet.reassignments")

    def _bury_worker(self, slot: int, job: Optional[_Job]) -> None:
        """Kill a dead/expired worker's process, reassign its job, and
        respawn or quarantine the slot."""
        worker = self._workers[slot]
        worker.kill()
        self.leases.release(slot)
        self._beat_seen.pop(slot, None)
        self.report.worker_deaths += 1
        obs.add("fleet.worker_deaths")
        deaths = self._deaths.get(slot, 0) + 1
        self._deaths[slot] = deaths
        if job is not None:
            self._reassign(job)
        if deaths > self.config.max_worker_deaths:
            self._workers[slot] = None
            self._quarantined.add(slot)
            self.report.quarantined_workers = len(self._quarantined)
            obs.add("fleet.quarantined_workers")
            if all(w is None for w in self._workers):
                raise FleetError(
                    "every fleet worker is quarantined with "
                    f"{self._outstanding} jobs outstanding"
                )
        else:
            self._workers[slot] = self._spawn_worker(slot)

    def _accept(self, slot: int, worker: FleetWorkerHandle, reply) -> None:
        kind_tag, job_id, payload, meta = reply
        job = worker.take_job()
        self.leases.release(slot)
        if job is None or job.job_id != job_id:
            return  # stale reply from a lease we already revoked
        reconnects = int(meta.get("reconnects", 0)) if meta else 0
        if reconnects:
            self.report.serve_reconnects += reconnects
            obs.add("serve.reconnects", reconnects)
        if kind_tag == "error":
            self.report.transient_errors += 1
            obs.add("fleet.transient_errors")
            self._reassign(job)
            return
        plan = self._plans[job.cti_index]
        if job.kind == "score":
            plan.predicted = payload
        else:
            plan.results = payload
            self._reemit_execution_counters(payload)
        self._outstanding -= 1
        self.report.jobs_completed += 1
        self.report.per_worker_jobs[slot] = (
            self.report.per_worker_jobs.get(slot, 0) + 1
        )
        obs.add("fleet.jobs_completed")
        self._write_receipt(job, plan, payload, worker)

    def _reemit_execution_counters(self, results) -> None:
        # Execution counters were emitted inside the worker, whose
        # registry is detached; mirror them here so fleet metrics match
        # in-process runs.
        obs.add("execution.runs", len(results))
        for result in results:
            if result.failure == "hang":
                obs.add("execution.hangs")
            elif result.failure == "deadlock":
                obs.add("execution.deadlocks")

    def _write_receipt(self, job: _Job, plan: _CTIPlan, payload, worker) -> None:
        if self.config.receipts_dir is None:
            return
        entries = self.ctis[job.cti_index]
        if job.kind == "score":
            inputs = score_inputs_digest(plan.proposals)
            result = score_result_digest(payload)
        else:
            inputs = execute_inputs_digest(plan.tasks)
            result = execute_result_digest(payload)
        write_receipt(
            self.config.receipts_dir,
            {
                "campaign": self.explorer.label,
                "job": job.job_id,
                "kind": job.kind,
                "cti_index": job.cti_index,
                "cti": [entry.sti.sti_id for entry in entries],
                "seed": self.explorer.seed,
                "worker": worker.worker_id,
                "pid": worker.process.pid,
                "attempt": job.attempt,
                "attempts": job.attempt + 1,
                "inputs": inputs,
                "result": result,
            },
        )
        self.report.receipts += 1

    def _drain_messages(self) -> None:
        busy = [
            (slot, worker)
            for slot, worker in enumerate(self._workers)
            if worker is not None and worker.busy
        ]
        if not busy:
            if self._pending:
                return
            time.sleep(self.config.poll_seconds)
            return
        ready = mp_connection.wait(
            [worker.conn for _, worker in busy],
            timeout=self.config.poll_seconds,
        )
        if not ready:
            return
        ready_set = set(ready)
        now = time.monotonic()
        for slot, worker in busy:
            if worker.conn not in ready_set:
                continue
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                # Pipe gone: the worker process died mid-job.
                self._bury_worker(slot, worker.take_job())
                continue
            self.leases.renew(slot, now)
            self._accept(slot, worker, reply)

    def _check_liveness(self, now: float) -> None:
        if now - self._last_liveness < min(
            1.0, max(self.config.lease_seconds / 4.0, self.config.poll_seconds)
        ):
            return
        self._last_liveness = now
        # Heartbeat-file writes renew leases (a busy worker mid-job sends
        # nothing on the pipe, but its beat thread keeps writing).
        for slot, worker in enumerate(self._workers):
            if worker is None or not worker.busy:
                continue
            beat = read_heartbeat(
                os.path.join(self._heartbeat_dir, f"worker-{slot}.json")
            )
            if beat is None:
                continue
            stamp = float(beat.get("updated_unix", 0.0))
            if stamp > self._beat_seen.get(slot, 0.0):
                self._beat_seen[slot] = stamp
                self.leases.renew(slot, now)
        for lease in self.leases.expired(now):
            worker = self._workers[lease.worker]
            if worker is None:
                continue
            self.report.lease_expirations += 1
            obs.add("fleet.lease_expirations")
            self._bury_worker(lease.worker, worker.take_job())

    def _beat(self, force: bool = False) -> None:
        if self._coordinator_beat is None:
            return
        now = time.monotonic()
        leases = {
            f"w{lease.worker}": {
                "job": lease.job_id,
                "attempt": lease.attempt,
                "age_seconds": round(lease.age(now), 3),
            }
            for lease in self.leases.active()
        }
        self._coordinator_beat.update(
            done=self._next_fold,
            races=sum(stats.new_races for stats in self._result_stats),
            executions=sum(stats.executions for stats in self._result_stats),
            force=force,
            role="coordinator",
            workers=sum(1 for w in self._workers if w is not None),
            pending=len(self._pending),
            reassignments=self.report.reassignments,
            worker_deaths=self.report.worker_deaths,
            leases=leases,
        )

    # -- lifecycle ------------------------------------------------------------

    def _setup(self) -> int:
        start_stats: List[ExplorationStats] = []
        start_index = 0
        if self.journal is not None:
            start_stats, start_index = self.journal.prepare(
                self.explorer, self.ctis
            )
        self._result_stats = start_stats
        self._next_select = start_index
        self._next_fold = start_index
        self.report.resumed_ctis = start_index
        if self._heartbeat_dir is None:
            self._heartbeat_dir = tempfile.mkdtemp(prefix="repro-fleet-hb-")
            self._own_heartbeat_dir = True
        else:
            os.makedirs(self._heartbeat_dir, exist_ok=True)
        if self.config.receipts_dir is not None:
            os.makedirs(self.config.receipts_dir, exist_ok=True)
        self._coordinator_beat = HeartbeatWriter(
            os.path.join(self._heartbeat_dir, "coordinator.json"),
            interval=max(self.config.heartbeat_interval, 0.2),
        )
        self._coordinator_beat.begin(
            f"fleet:{self.explorer.label}", len(self.ctis), done=start_index
        )
        self._plan(start_index)
        self._workers = [
            self._spawn_worker(slot) for slot in range(self.config.workers)
        ]
        return start_index

    def _teardown(self) -> None:
        for worker in self._workers:
            if worker is not None:
                worker.stop()
        self._workers = []
        if self._own_heartbeat_dir and self._heartbeat_dir:
            shutil.rmtree(self._heartbeat_dir, ignore_errors=True)

    def _finish(self) -> Tuple[CampaignResult, FleetReport]:
        campaign = self.explorer.result()
        campaign.per_cti = self._result_stats
        if self.config.receipts_dir is not None:
            self._verify_receipt_coverage()
        return campaign, self.report

    def _verify_receipt_coverage(self) -> None:
        """Every executed job must be covered by a verified receipt.

        Derivable even across a resume: CTI ``k`` consumed inferences
        iff a score job ran for it, and executed CTs iff an execute job
        ran — both visible in the per-CTI stats the journal restored.
        """
        receipts = verify_receipts(
            self.config.receipts_dir, self.explorer.label
        )
        by_job = {int(receipt["job"]): receipt for receipt in receipts}
        for index, stats in enumerate(self._result_stats):
            if self.is_mlpct and stats.inferences > 0 and 2 * index not in by_job:
                raise FleetError(
                    f"CTI {index} consumed predictions but has no score-"
                    "job receipt"
                )
            if stats.executions > 0 and 2 * index + 1 not in by_job:
                raise FleetError(
                    f"CTI {index} executed CTs but has no execute-job "
                    "receipt"
                )
        self.report.receipts = len(receipts)

    def run(self) -> Tuple[CampaignResult, FleetReport]:
        started = time.monotonic()
        with obs.span(
            "fleet.run",
            label=self.explorer.label,
            workers=self.config.workers,
            ctis=len(self.ctis),
        ):
            self._setup()
            try:
                while self._next_fold < len(self.ctis):
                    now = time.monotonic()
                    self._dispatch_ready(now)
                    self._drain_messages()
                    self._check_liveness(time.monotonic())
                    self._advance_pipeline()
                    self._beat()
                    self._check_stall()
                self._beat(force=True)
            finally:
                self._teardown()
                self.explorer.close()
        self.report.elapsed_seconds = time.monotonic() - started
        return self._finish()

    def _check_stall(self) -> None:
        if self._next_fold >= len(self.ctis):
            return
        if self._pending:
            return
        if any(w is not None and w.busy for w in self._workers):
            return
        # Nothing pending, nothing in flight, campaign incomplete: a
        # selection replay must be waiting on the pipeline — advance on
        # the next loop. If the pipeline is also quiet, jobs were lost.
        plan = self._plans.get(self._next_select)
        if plan is not None and not plan.selection_done and plan.predicted is None:
            raise FleetError(
                f"fleet stalled: CTI {self._next_select} is waiting for a "
                "score job that is neither pending nor leased"
            )
        if self._next_fold in self._plans and not self._plans[
            self._next_fold
        ].ready_to_fold and self._plans[self._next_fold].selection_done:
            raise FleetError(
                f"fleet stalled: CTI {self._next_fold} is waiting for an "
                "execute job that is neither pending nor leased"
            )


def run_fleet(
    explorer,
    ctis: Sequence[Tuple[object, ...]],
    config: Optional[FleetConfig] = None,
    journal: Optional[CampaignJournal] = None,
) -> Tuple[CampaignResult, FleetReport]:
    """Run a campaign across a worker fleet; returns ``(campaign,
    fleet_report)`` with ``campaign`` byte-identical to
    :func:`repro.core.mlpct.run_campaign` on the same explorer config.
    """
    coordinator = FleetCoordinator(explorer, ctis, config=config, journal=journal)
    return coordinator.run()
