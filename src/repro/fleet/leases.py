"""Lease-based job ownership for the campaign fleet.

A fleet job is never *given* to a worker — it is *leased*: the worker
owns it only while it keeps renewing, and the coordinator reclaims the
lease the moment renewals stop. Renewals arrive on two channels: any
message on the worker's pipe, and a fresh write of the worker's
heartbeat file (the same ``--heartbeat`` JSON shape campaigns already
emit, so ``repro top`` reads fleet workers for free). A worker that is
wedged hard enough to stop both channels loses its lease after
``lease_seconds``; the coordinator kills it and reassigns the job to a
live worker with the attempt count bumped.

All timing here uses a monotonic clock passed in by the coordinator —
wall-clock jumps must never expire a healthy lease.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Lease", "LeaseTable"]


@dataclass
class Lease:
    """One worker's ownership of one job, valid while renewed."""

    job_id: int
    worker: int
    attempt: int
    granted: float  # monotonic time of the grant
    renewed: float  # monotonic time of the last renewal

    def age(self, now: float) -> float:
        """Seconds since the lease was granted."""
        return max(0.0, now - self.granted)

    def idle(self, now: float) -> float:
        """Seconds since the worker last proved it was alive."""
        return max(0.0, now - self.renewed)


@dataclass
class LeaseTable:
    """The coordinator's view of which worker owns which job.

    One lease per worker at most (fleet workers run one job at a time);
    ``expired`` is the liveness verdict the coordinator acts on.
    """

    lease_seconds: float
    _leases: Dict[int, Lease] = field(default_factory=dict)
    grants: int = 0
    renewals: int = 0
    expirations: int = 0

    def grant(self, job_id: int, worker: int, attempt: int, now: float) -> Lease:
        lease = Lease(job_id=job_id, worker=worker, attempt=attempt,
                      granted=now, renewed=now)
        self._leases[worker] = lease
        self.grants += 1
        return lease

    def lease_of(self, worker: int) -> Optional[Lease]:
        return self._leases.get(worker)

    def renew(self, worker: int, now: float) -> bool:
        """Record proof of life for ``worker``; True if it held a lease."""
        lease = self._leases.get(worker)
        if lease is None:
            return False
        lease.renewed = max(lease.renewed, now)
        self.renewals += 1
        return True

    def release(self, worker: int) -> Optional[Lease]:
        """Drop ``worker``'s lease (job finished or worker died)."""
        return self._leases.pop(worker, None)

    def expired(self, now: float) -> List[Lease]:
        """Reclaim and return leases whose workers have been silent past
        the deadline. The caller must reassign each returned job —
        reclaimed leases are already gone from the table, so polling
        again never double-counts an expiry."""
        stale = [lease for lease in self._leases.values()
                 if lease.idle(now) > self.lease_seconds]
        for lease in stale:
            del self._leases[lease.worker]
        self.expirations += len(stale)
        return stale

    def active(self) -> List[Lease]:
        return sorted(self._leases.values(), key=lambda lease: lease.worker)
