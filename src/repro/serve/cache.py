"""Content-addressed LRU cache of served predictions.

Keys are :func:`repro.serve.digest.prediction_key` strings (model
version + canonical graph digest); values are the per-node probability
arrays the model produced. The cache is bounded by *bytes*, not entry
count — prediction arrays scale with graph size, so a count bound would
make memory use depend on workload shape.

Thread safety: one lock around every operation. Lookups, insertions
and evictions are dict/deque manipulations — microseconds against a
model forward pass — so a single lock never becomes the bottleneck the
batcher exists to amortise.

Telemetry: ``serve.cache.hits`` / ``serve.cache.misses`` /
``serve.cache.evictions`` counters and a ``serve.cache.bytes`` gauge,
mirrored by :meth:`PredictionCache.stats` for the socket server's
``status`` op.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro import obs

__all__ = ["PredictionCache", "DEFAULT_CACHE_BYTES"]

#: Default byte budget (64 MiB) — thousands of small-kernel predictions.
DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

#: Accounting overhead charged per entry on top of the array payload
#: (key string, dict slot, array header). Approximate by design: the
#: budget bounds order-of-magnitude memory, not malloc-exact bytes.
_ENTRY_OVERHEAD = 200


class PredictionCache:
    """Byte-bounded, content-addressed LRU of prediction arrays."""

    def __init__(self, max_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if max_bytes <= 0:
            raise ValueError("cache byte budget must be positive")
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def _cost(key: str, value: np.ndarray) -> int:
        return int(value.nbytes) + len(key) + _ENTRY_OVERHEAD

    def get(self, key: str) -> Optional[np.ndarray]:
        """The cached array for ``key`` (freshened to most-recently-used),
        or ``None``. Returned arrays are read-only views of the stored
        value — a consumer mutating its result cannot poison the cache."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                obs.add("serve.cache.misses")
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            obs.add("serve.cache.hits")
            return value

    def put(self, key: str, value: np.ndarray) -> None:
        """Insert (or refresh) ``key``; evicts LRU entries over budget.

        A value bigger than the whole budget is simply not cached —
        evicting everything to fit one giant entry would be strictly
        worse than computing it again next time.
        """
        value = np.ascontiguousarray(value)
        value.setflags(write=False)
        cost = self._cost(key, value)
        with self._lock:
            if cost > self.max_bytes:
                return
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._bytes -= self._cost(key, previous)
            self._entries[key] = value
            self._bytes += cost
            while self._bytes > self.max_bytes:
                evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= self._cost(evicted_key, evicted)
                self._evictions += 1
                obs.add("serve.cache.evictions")
            obs.gauge("serve.cache.bytes", self._bytes)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def bytes_used(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, float]:
        """Hit/miss/eviction/occupancy snapshot (the ``status`` payload)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }
