"""Versioned, checksummed PIC model registry with hot-swap and rollback.

A serving deployment outlives any single model: models are retrained on
new kernel versions, fine-tuned, and occasionally turn out to be worse
than their predecessor. The registry is the durable source of truth for
"which model is serving": a directory of immutable checkpoint files plus
one ``manifest.json`` naming the active version, the previously active
version (the rollback target), and every published record with its file
checksum.

Durability discipline (reusing :mod:`repro.resilience.atomic`):

- checkpoints are written by :meth:`PICModel.save`, which is already
  atomic and embeds its own schema/checksum header;
- the manifest is rewritten atomically *after* the checkpoint exists, so
  a crash mid-publish leaves either the old manifest (new checkpoint is
  an orphan file, harmless) or the new one (checkpoint guaranteed on
  disk) — never a manifest pointing at a missing/torn file;
- every load re-verifies the whole-file SHA-256 recorded at publish
  time before handing bytes to :meth:`PICModel.load`, so bit rot is a
  :class:`~repro.errors.CheckpointError` at swap time, not NaNs later.

Activation (:meth:`activate` / :meth:`rollback`) only rewrites the
manifest — hot-swapping a live server is the server's job (it loads the
new version, verifies it, and replaces its model under the compute
lock; see :meth:`repro.serve.backend.InProcessServer.swap_model`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro import obs
from repro.errors import CheckpointError, ServeError
from repro.resilience.atomic import atomic_write_text, sha256_hex

__all__ = ["ModelRecord", "ModelRegistry", "MANIFEST_NAME", "MANIFEST_FORMAT"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1


@dataclass(frozen=True)
class ModelRecord:
    """One published model version."""

    version: str
    #: Checkpoint filename relative to the registry root.
    filename: str
    #: SHA-256 of the checkpoint file bytes at publish time.
    checksum: str
    #: The model's configured name and tuned threshold (display/status).
    model_name: str
    threshold: float
    vocab_size: int


class ModelRegistry:
    """A directory of versioned checkpoints plus an atomic manifest."""

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(os.path.join(self.root, "checkpoints"), exist_ok=True)
        self._active: Optional[str] = None
        self._previous: Optional[str] = None
        self._records: Dict[str, ModelRecord] = {}
        self._load_manifest()

    # -- manifest ------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.root, MANIFEST_NAME)

    def _load_manifest(self) -> None:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return
        except (OSError, json.JSONDecodeError) as error:
            raise ServeError(
                f"unreadable registry manifest {self.manifest_path}: {error}"
            ) from None
        try:
            if int(payload["format"]) != MANIFEST_FORMAT:
                raise ServeError(
                    f"registry manifest {self.manifest_path} has format "
                    f"{payload['format']}, this build reads {MANIFEST_FORMAT}"
                )
            self._active = payload["active"]
            self._previous = payload["previous"]
            self._records = {
                version: ModelRecord(
                    version=version,
                    filename=str(record["filename"]),
                    checksum=str(record["checksum"]),
                    model_name=str(record["model_name"]),
                    threshold=float(record["threshold"]),
                    vocab_size=int(record["vocab_size"]),
                )
                for version, record in payload["models"].items()
            }
        except (KeyError, TypeError, ValueError) as error:
            raise ServeError(
                f"malformed registry manifest {self.manifest_path}: {error}"
            ) from None

    def _write_manifest(self) -> None:
        payload = {
            "format": MANIFEST_FORMAT,
            "active": self._active,
            "previous": self._previous,
            "models": {
                record.version: {
                    "filename": record.filename,
                    "checksum": record.checksum,
                    "model_name": record.model_name,
                    "threshold": record.threshold,
                    "vocab_size": record.vocab_size,
                }
                for record in self._records.values()
            },
        }
        atomic_write_text(
            self.manifest_path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    def refresh(self) -> None:
        """Re-read the manifest from disk.

        A registry object reads the manifest once at construction;
        publishes by *other processes* (the learn worker promoting a
        candidate under a running serve daemon) are invisible to the
        in-memory copy until refreshed. The manifest is written
        atomically, so a refresh sees either the old or the new state —
        never a torn one.
        """
        self._active = None
        self._previous = None
        self._records = {}
        self._load_manifest()

    # -- publishing ----------------------------------------------------------

    def publish(self, model, version: Optional[str] = None, activate: bool = True) -> ModelRecord:
        """Checkpoint ``model`` under ``version`` and record it durably.

        ``version`` defaults to ``v<N>`` (N = one past the highest
        auto-numbered version). Re-publishing an existing version is
        refused — records are immutable by construction, which is what
        makes the cache's (version, digest) keys trustworthy.
        """
        if version is None:
            version = f"v{self._next_number()}"
        if version in self._records:
            raise ServeError(
                f"model version {version!r} already published; "
                "registry records are immutable"
            )
        if ":" in version or "/" in version or not version:
            raise ServeError(
                f"invalid model version {version!r} "
                "(must be non-empty, no ':' or '/')"
            )
        filename = os.path.join("checkpoints", f"{version}.npz")
        path = os.path.join(self.root, filename)
        model.save(path)
        with open(path, "rb") as handle:
            checksum = sha256_hex(handle.read())
        record = ModelRecord(
            version=version,
            filename=filename,
            checksum=checksum,
            model_name=model.config.name,
            threshold=float(model.threshold),
            vocab_size=int(model.config.vocab_size),
        )
        self._records[version] = record
        if activate:
            self._previous, self._active = self._active, version
        self._write_manifest()
        obs.point("serve.registry.publish", version=version, active=activate)
        return record

    def _next_number(self) -> int:
        highest = 0
        for version in self._records:
            if version.startswith("v") and version[1:].isdigit():
                highest = max(highest, int(version[1:]))
        return highest + 1

    # -- activation ----------------------------------------------------------

    def activate(self, version: str) -> ModelRecord:
        """Make ``version`` the active model (verifying its checkpoint
        first) and remember the outgoing one as the rollback target."""
        record = self.record(version)
        self.verify(version)
        if self._active != version:
            self._previous, self._active = self._active, version
            self._write_manifest()
        obs.point("serve.registry.activate", version=version)
        return record

    def rollback(self) -> ModelRecord:
        """Re-activate the previously active version (one-step undo)."""
        if self._previous is None:
            raise ServeError("nothing to roll back to: no previous active version")
        target = self._previous
        record = self.record(target)
        self.verify(target)
        self._previous, self._active = self._active, target
        self._write_manifest()
        obs.point("serve.registry.rollback", version=target)
        return record

    # -- access --------------------------------------------------------------

    @property
    def active_version(self) -> Optional[str]:
        return self._active

    def record(self, version: str) -> ModelRecord:
        try:
            return self._records[version]
        except KeyError:
            raise ServeError(
                f"unknown model version {version!r}; published: "
                f"{sorted(self._records) or '(none)'}"
            ) from None

    def versions(self) -> List[ModelRecord]:
        return [self._records[version] for version in sorted(self._records)]

    def checkpoint_path(self, version: str) -> str:
        return os.path.join(self.root, self.record(version).filename)

    def verify(self, version: str) -> None:
        """Recompute the checkpoint file checksum against the manifest."""
        record = self.record(version)
        path = self.checkpoint_path(version)
        try:
            with open(path, "rb") as handle:
                actual = sha256_hex(handle.read())
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint for {version!r}: {error}"
            ) from None
        if actual != record.checksum:
            raise CheckpointError(
                f"checkpoint for model version {version!r} failed registry "
                "checksum verification (corrupt or tampered)"
            )

    def load(self, version: Optional[str] = None, seed: int = 0):
        """Load (and fully verify) a published model; default the active one."""
        if version is None:
            if self._active is None:
                raise ServeError("registry has no active model version")
            version = self._active
        from repro.ml.pic import PICModel

        self.verify(version)
        return PICModel.load(self.checkpoint_path(version), seed=seed)
