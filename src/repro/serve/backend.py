"""The PredictionBackend seam and the in-process serving backend.

:class:`repro.core.scoring.CandidateScorer` historically called its
predictor directly; the backend seam generalises that call-site to
anything exposing the predictor surface (``predict_proba``,
``predict_proba_batch``, ``predict``/``predict_batch``, ``threshold``):

- :class:`LocalBackend` wraps a plain predictor with zero added
  machinery — it is the default and is byte-identical to calling the
  predictor directly.
- :class:`InProcessServer` is the full service in one process: a single
  shared model behind a :class:`~repro.serve.batching.MicroBatcher`
  (which serialises all inference onto one thread), fronted by a
  content-addressed :class:`~repro.serve.cache.PredictionCache`, with
  registry-driven hot-swap (:meth:`InProcessServer.swap_model`).
- :class:`repro.serve.server.SocketBackend` (separate module) speaks the
  same surface over a Unix socket to an :class:`InProcessServer` hosted
  elsewhere.

Cache coherence across hot-swap: cache keys embed the model version, so
requests admitted before a swap read/write the old version's key space
and requests after it a fresh one — no explicit invalidation. The one
subtle race (a request keyed against version A whose compute lands on
version B mid-swap) is closed by tagging every computed result with the
version that produced it and refusing to cache a mismatch.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.serve.batching import BatcherConfig, MicroBatcher, PendingResult
from repro.serve.cache import PredictionCache
from repro.serve.digest import prediction_key

__all__ = ["PredictionBackend", "LocalBackend", "InProcessServer"]


class PredictionBackend:
    """The predictor surface scoring code consumes.

    Subclasses provide :meth:`predict_proba_batch` and :attr:`threshold`;
    the boolean variants derive from them, matching
    :class:`~repro.ml.pic.PICModel` semantics exactly.
    """

    @property
    def threshold(self) -> float:
        raise NotImplementedError

    def predict_proba_batch(self, graphs: Sequence[object]) -> List[np.ndarray]:
        raise NotImplementedError

    def predict_proba(self, graph: object) -> np.ndarray:
        return self.predict_proba_batch([graph])[0]

    def predict(self, graph: object) -> np.ndarray:
        return self.predict_proba(graph) >= self.threshold

    def predict_batch(self, graphs: Sequence[object]) -> List[np.ndarray]:
        threshold = self.threshold
        return [proba >= threshold for proba in self.predict_proba_batch(graphs)]

    def stats(self) -> dict:
        return {}

    def close(self) -> None:
        """Release any resources (threads, sockets). Idempotent."""


class LocalBackend(PredictionBackend):
    """Transparent pass-through to an in-memory predictor (the default).

    Adds no queueing, caching, or copying — calls land on the wrapped
    predictor exactly as direct calls would, so results (and campaign
    outcomes) are byte-identical to not using a backend at all.
    """

    def __init__(self, predictor: object) -> None:
        self.predictor = predictor

    @property
    def threshold(self) -> float:
        return float(getattr(self.predictor, "threshold", 0.5))

    def predict_proba(self, graph: object) -> np.ndarray:
        return self.predictor.predict_proba(graph)

    def predict_proba_batch(self, graphs: Sequence[object]) -> List[np.ndarray]:
        batch = getattr(self.predictor, "predict_proba_batch", None)
        if batch is not None:
            return batch(graphs)
        return [self.predictor.predict_proba(graph) for graph in graphs]

    def stats(self) -> dict:
        return {"backend": "local"}


class InProcessServer(PredictionBackend):
    """One shared model + prediction cache + micro-batcher.

    Thread-safe: any number of client threads may call the prediction
    methods concurrently. Cache lookups happen on the calling thread;
    every actual forward pass is submitted to the batcher and runs on
    its single worker thread, holding ``_model_lock`` so a concurrent
    :meth:`swap_model` can never interleave with inference.

    Concurrent requests for the *same* graph content are deduplicated
    in flight: the second requester waits on the first's pending result
    instead of submitting a duplicate compute.
    """

    def __init__(
        self,
        model: object,
        version: str = "v0",
        cache: Optional[PredictionCache] = None,
        cache_bytes: Optional[int] = None,
        batcher_config: Optional[BatcherConfig] = None,
        clock=None,
        registry=None,
        score_threads: int = 0,
    ) -> None:
        if cache is not None and cache_bytes is not None:
            raise ValueError("pass either cache or cache_bytes, not both")
        self._model = model
        self._version = version
        #: >1 shards large gathered batches across a thread pool inside
        #: :meth:`_compute` (still under ``_model_lock``); 0/1 keeps the
        #: historical single-threaded forward pass.
        self._score_threads = max(0, int(score_threads))
        self._score_pool = None
        #: Explicit telemetry registry; ``None`` falls back to the
        #: process-global one. Injection exists so a server sharing a
        #: process with its client (tests, embedded serving) can keep
        #: its span tree in a separate trace file.
        self._obs_registry = registry
        self._model_lock = threading.Lock()
        self.cache = cache if cache is not None else PredictionCache(
            **({"max_bytes": cache_bytes} if cache_bytes is not None else {})
        )
        kwargs = {} if clock is None else {"clock": clock}
        self._batcher = MicroBatcher(self._compute, batcher_config, **kwargs)
        self._inflight: Dict[str, PendingResult] = {}
        self._inflight_lock = threading.Lock()
        self._requests = 0
        self._stats_lock = threading.Lock()
        #: Version tag of the most recent batch served to a caller —
        #: how explorers notice a hot-swap boundary (``None`` until the
        #: first prediction).
        self.observed_version: Optional[str] = None

    # -- telemetry plumbing --------------------------------------------------

    def _obs(self):
        """The effective registry: injected one, else the global one."""
        registry = self._obs_registry
        return registry if registry is not None else obs.active()

    def _emit_batch_spans(
        self, registry, pendings, anchor_registry: float, anchor_batcher: float
    ) -> None:
        """Synthetic serve.batch/serve.queue_wait/serve.model spans.

        The batcher stamps its lifecycle timestamps in *its* clock on
        another thread; this maps them into the registry's timeline via
        a pair of anchors sampled at request entry and emits one
        aggregate sub-tree per request (under the thread's open span,
        e.g. the server's ``serve.request``).
        """
        done = [p for p in pendings if p.compute_end is not None]
        if not done:
            return

        def rel(stamp: float) -> float:
            return anchor_registry + (stamp - anchor_batcher)

        enqueued = min(p.enqueued_at for p in done)
        model_start = min(p.compute_start for p in done)
        model_end = max(p.compute_end for p in done)
        queue_wait = max(model_start - enqueued, 0.0)
        model_seconds = max(model_end - model_start, 0.0)
        batch_size = max(p.batch_size for p in done)
        open_span = registry.current_span()
        base_depth = open_span.depth + 1 if open_span is not None else 0
        batch_id = registry.record_span(
            "serve.batch",
            start=rel(enqueued),
            duration=max(model_end - enqueued, 0.0),
            attrs={"batch": batch_size, "queue_wait": round(queue_wait, 6)},
            child_seconds=queue_wait + model_seconds,
        )
        registry.record_span(
            "serve.queue_wait",
            start=rel(enqueued),
            duration=queue_wait,
            parent=batch_id,
            depth=base_depth + 1,
        )
        registry.record_span(
            "serve.model",
            start=rel(model_start),
            duration=model_seconds,
            attrs={"batch": batch_size},
            parent=batch_id,
            depth=base_depth + 1,
        )

    # -- the single compute path ---------------------------------------------

    def _compute(self, graphs: List[object]) -> List[tuple]:
        """Batcher worker entry: one forward pass for a gathered batch.

        Tags each result with the version that produced it so the
        requesting side can detect a hot-swap that raced its request.
        """
        registry = self._obs()
        with self._model_lock:
            model = self._model
            version = self._version
            if registry is not None:
                with registry.span("serve.compute", batch=len(graphs)):
                    probas = self._forward(model, list(graphs))
            else:
                probas = self._forward(model, list(graphs))
        return [(version, proba) for proba in probas]

    def _forward(self, model: object, graphs: List[object]) -> List[np.ndarray]:
        """One gathered batch through the model, optionally sharded.

        With ``score_threads > 1`` and a batch big enough for every
        worker to get at least two graphs, the batch is split into
        contiguous shards scored concurrently (the PR 5 thread-safety
        groundwork — frozen template caches, per-thread layer buffers —
        makes concurrent same-model scoring sound). The per-template
        caches are pre-warmed on this thread first so workers only read
        shared state. Shard boundaries don't change results: batched
        scoring is per-graph exact regardless of chunking.
        """
        threads = self._score_threads
        if (
            threads <= 1
            or len(graphs) < 2 * threads
            or not hasattr(model, "predict_proba_batch")
        ):
            return model.predict_proba_batch(graphs)
        warm = getattr(model, "warm_inference_caches", None)
        if warm is not None:
            warm(graphs)
        pool = self._score_pool
        if pool is None:
            from concurrent.futures import ThreadPoolExecutor

            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix="serve-score"
            )
            self._score_pool = pool
        stride = (len(graphs) + threads - 1) // threads
        shards = [
            graphs[start : start + stride]
            for start in range(0, len(graphs), stride)
        ]
        futures = [pool.submit(model.predict_proba_batch, shard) for shard in shards]
        results: List[np.ndarray] = []
        for future in futures:
            results.extend(future.result())
        return results

    # -- the predictor surface -----------------------------------------------

    @property
    def threshold(self) -> float:
        with self._model_lock:
            return float(getattr(self._model, "threshold", 0.5))

    @property
    def version(self) -> str:
        with self._model_lock:
            return self._version

    def predict_proba_batch(self, graphs: Sequence[object]) -> List[np.ndarray]:
        return self.predict_proba_batch_versioned(graphs)[1]

    def predict_proba_batch_versioned(
        self, graphs: Sequence[object]
    ) -> Tuple[str, List[np.ndarray]]:
        """One batch plus the single model version that produced it.

        A batch is never mixed-version: if a concurrent
        :meth:`swap_model` lands between this request reading the
        version and the batcher running its forward pass, the partial
        gather (old-version cache hits plus new-version computes) is
        discarded and retried; under sustained swap churn the batch is
        finally scored in one piece under the model lock, which no swap
        can interleave with.
        """
        graphs = list(graphs)
        if not graphs:
            with self._model_lock:
                return self._version, []
        with self._stats_lock:
            self._requests += 1
        registry = self._obs()
        for _attempt in range(3):
            version, results, raced = self._gather_batch(graphs, registry)
            if not raced:
                self.observed_version = version
                return version, results
        # Swap churn outran the optimistic path: score the whole batch
        # in one forward pass under the model lock, where the version
        # and the weights cannot diverge.
        with self._model_lock:
            version = self._version
            probas = self._forward(self._model, graphs)
        for graph, proba in zip(graphs, probas):
            self.cache.put(prediction_key(version, graph), proba)
        self.observed_version = version
        return version, probas

    def _gather_batch(
        self, graphs: List[object], registry
    ) -> Tuple[str, List[np.ndarray], bool]:
        """One optimistic cache+batcher pass; ``raced`` flags a batch
        whose computed results came from a different version than the
        one this request (and its cache hits) pinned at entry."""
        if registry is not None:
            registry.counter("serve.requests").add(1)
            # Anchor pair: same instant in the registry's timeline and
            # the batcher's clock, for mapping worker-side stamps.
            anchor_registry = registry.now()
            anchor_batcher = self._batcher._clock()
        with self._model_lock:
            version = self._version
        keys = [prediction_key(version, graph) for graph in graphs]
        cache_started = registry.now() if registry is not None else 0.0
        results: List[Optional[np.ndarray]] = [self.cache.get(key) for key in keys]
        if registry is not None:
            hits = sum(1 for cached in results if cached is not None)
            registry.record_span(
                "serve.cache",
                start=cache_started,
                duration=max(registry.now() - cache_started, 0.0),
                attrs={"hits": hits, "misses": len(results) - hits},
            )

        # For each distinct missing key, either adopt the in-flight
        # computation another thread already submitted or submit one.
        pending_by_key: Dict[str, PendingResult] = {}
        submitted: Dict[str, PendingResult] = {}
        for key, graph, cached in zip(keys, graphs, results):
            if cached is not None or key in pending_by_key:
                continue
            with self._inflight_lock:
                pending = self._inflight.get(key)
                if pending is None:
                    pending = self._batcher.submit(graph)
                    self._inflight[key] = pending
                    submitted[key] = pending
            pending_by_key[key] = pending

        waited = list(pending_by_key.values())
        filled = dict(submitted)
        raced = False
        try:
            for key, pending in pending_by_key.items():
                computed_version, proba = pending.result()
                if computed_version != version:
                    raced = True
                if key in submitted:
                    if computed_version == version:
                        self.cache.put(key, proba)
                    filled.pop(key, None)
                    with self._inflight_lock:
                        if self._inflight.get(key) is pending:
                            del self._inflight[key]
                pending_by_key[key] = proba
        finally:
            # On error, un-register what we submitted so later requests
            # re-compute instead of inheriting a poisoned pending.
            if filled:
                with self._inflight_lock:
                    for key, pending in filled.items():
                        if self._inflight.get(key) is pending:
                            del self._inflight[key]

        if registry is not None and waited:
            self._emit_batch_spans(
                registry, waited, anchor_registry, anchor_batcher
            )
        return (
            version,
            [
                cached if cached is not None else pending_by_key[key]
                for key, cached in zip(keys, results)
            ],
            raced,
        )

    # -- administration ------------------------------------------------------

    def swap_model(self, model: object, version: str) -> None:
        """Atomically replace the served model (registry hot-swap).

        Waits for any in-progress forward pass to finish, then installs
        the new model and version. Cached predictions of the old version
        stop being addressed (keys embed the version) and age out.
        """
        with self._model_lock:
            old = self._version
            self._model = model
            self._version = version
        registry = self._obs()
        if registry is not None:
            registry.point("serve.swap", previous=old, version=version)

    def stats(self) -> dict:
        with self._stats_lock:
            requests = self._requests
        with self._model_lock:
            version = self._version
            model_name = getattr(getattr(self._model, "config", None), "name", "?")
            threshold = float(getattr(self._model, "threshold", 0.5))
        return {
            "backend": "in-process",
            "version": version,
            "model_name": model_name,
            "threshold": threshold,
            "requests": requests,
            "cache": self.cache.stats(),
            "batcher": self._batcher.stats(),
        }

    def close(self) -> None:
        self._batcher.close()
        pool = self._score_pool
        if pool is not None:
            self._score_pool = None
            pool.shutdown(wait=True)
