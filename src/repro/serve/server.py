"""Unix-socket JSON serving: share one PIC model across processes.

Parallel campaign workers (and unrelated campaigns on one machine) each
loading a private ``PICModel`` wastes memory and — worse — splits the
prediction cache into per-process shards that never share hits. This
module hosts one :class:`~repro.serve.backend.InProcessServer` behind a
Unix domain socket; any number of client processes attach a
:class:`SocketBackend`, which speaks the same predictor surface the
scoring layer already consumes.

Wire protocol (deliberately stdlib-only):

- **Framing**: each message is a 4-byte big-endian length followed by
  that many bytes of UTF-8 JSON. One connection carries any number of
  request/response pairs, in order.
- **Ops**: ``predict_batch`` (the workhorse), ``status`` (stats +
  model identity), ``ping``, and ``shutdown``.
- **Graphs on the wire** are template-deduplicated: candidates of one
  CTI share their template arrays (``token_ids`` dominates the bytes),
  so a request carries each distinct template once and per-graph
  deltas (hint flags, edges, hints) referencing it by index. The
  server rebuilds graphs that *share* array objects per template,
  which keeps the digest memo and the model's encoder cache effective
  server-side.
- **Exactness**: probabilities return as JSON floats. Python's float
  repr is shortest-round-trip, so every float64 crosses the socket
  bit-identically — served predictions are byte-equal to local ones.

Malformed frames raise :class:`~repro.errors.ProtocolError`;
server-side failures come back as ``{"ok": false, ...}`` and re-raise
client-side as :class:`~repro.errors.ServeError`.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ProtocolError, ServeError
from repro.execution.concurrent import ScheduleHint
from repro.graphs.ctgraph import CTGraph
from repro.obs.export import render_prometheus, snapshot_from_stats
from repro.obs.flight import active_recorder
from repro.obs.propagation import TraceContext, current_context
from repro.serve.backend import InProcessServer, PredictionBackend
from repro.serve.batching import BatcherConfig
from repro.serve.cache import DEFAULT_CACHE_BYTES

__all__ = [
    "ServerConfig",
    "PredictionServer",
    "SocketBackend",
    "serve_forever",
    "probe_socket",
    "encode_graphs",
    "decode_graphs",
]

#: Upper bound on one frame; a request larger than this is a protocol
#: violation, not a workload we try to serve.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


# -- framing -----------------------------------------------------------------


def _read_exact(rfile, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = rfile.read(remaining)
        if not chunk:
            raise EOFError
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(rfile) -> dict:
    """One length-prefixed JSON message, or raise ``EOFError`` at EOF."""
    header = rfile.read(_LENGTH.size)
    if not header:
        raise EOFError
    if len(header) < _LENGTH.size:
        header += _read_exact(rfile, _LENGTH.size - len(header))
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"
        )
    body = _read_exact(rfile, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("frame payload must be a JSON object")
    return payload


def write_frame(wfile, payload: dict) -> None:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"refusing to send a {len(body)}-byte frame")
    wfile.write(_LENGTH.pack(len(body)) + body)
    wfile.flush()


# -- graph (de)serialisation -------------------------------------------------


def encode_graphs(graphs: Sequence[CTGraph]) -> dict:
    """Template-deduplicated wire form of a batch of CT graphs."""
    templates: List[dict] = []
    template_index: Dict[int, int] = {}
    encoded: List[dict] = []
    for graph in graphs:
        key = id(graph.token_ids)
        index = template_index.get(key)
        if index is None or templates[index]["_token_ids_ref"] is not graph.token_ids:
            index = len(templates)
            template_index[key] = index
            templates.append(
                {
                    "_token_ids_ref": graph.token_ids,  # stripped below
                    "kernel_version": graph.kernel_version,
                    "cti_key": list(graph.cti_key),
                    "node_types": graph.node_types.tolist(),
                    "node_threads": graph.node_threads.tolist(),
                    "node_blocks": graph.node_blocks.tolist(),
                    "token_ids": graph.token_ids.tolist(),
                }
            )
        encoded.append(
            {
                "template": index,
                "hint_flags": graph.hint_flags.tolist(),
                "edges": graph.edges.tolist(),
                "hints": [[hint.thread, hint.iid] for hint in graph.hints],
            }
        )
    for template in templates:
        del template["_token_ids_ref"]
    return {"templates": templates, "graphs": encoded}


def decode_graphs(payload: dict) -> List[CTGraph]:
    """Rebuild graphs, re-sharing arrays (and a GNN base cache) per template."""
    try:
        shared: List[dict] = []
        for template in payload["templates"]:
            shared.append(
                {
                    "kernel_version": str(template["kernel_version"]),
                    "cti_key": tuple(template["cti_key"]),
                    "node_types": np.asarray(template["node_types"], dtype=np.int64),
                    "node_threads": np.asarray(
                        template["node_threads"], dtype=np.int64
                    ),
                    "node_blocks": np.asarray(template["node_blocks"], dtype=np.int64),
                    "token_ids": np.asarray(template["token_ids"], dtype=np.int64),
                    "base_cache": {},
                }
            )
        graphs = []
        for encoded in payload["graphs"]:
            template = shared[encoded["template"]]
            edges = np.asarray(encoded["edges"], dtype=np.int64)
            graphs.append(
                CTGraph(
                    kernel_version=template["kernel_version"],
                    cti_key=template["cti_key"],
                    hints=tuple(
                        ScheduleHint(thread=int(t), iid=int(i))
                        for t, i in encoded["hints"]
                    ),
                    node_types=template["node_types"],
                    node_threads=template["node_threads"],
                    node_blocks=template["node_blocks"],
                    hint_flags=np.asarray(encoded["hint_flags"], dtype=np.int64),
                    token_ids=template["token_ids"],
                    edges=edges.reshape(-1, 3) if edges.size else
                    np.zeros((0, 3), dtype=np.int64),
                    node_index={},
                    base_cache=template["base_cache"],
                )
            )
        return graphs
    except (KeyError, TypeError, ValueError, IndexError) as error:
        raise ProtocolError(f"malformed graph payload: {error}") from None


# -- the server --------------------------------------------------------------


@dataclass(frozen=True)
class ServerConfig:
    """Socket-server knobs (CLI: ``repro serve``)."""

    socket_path: str
    max_batch: int = 8
    max_wait_ms: float = 2.0
    cache_bytes: int = DEFAULT_CACHE_BYTES
    max_queue: int = 256
    #: Serve calls slower than this land in the flight recorder's
    #: slow-request log (``None`` disables; CLI: ``--slow-request-ms``).
    slow_request_ms: Optional[float] = None
    #: >1 shards large gathered batches across this many scorer threads
    #: (CLI: ``--score-threads``); 0/1 keeps single-threaded scoring.
    score_threads: int = 0
    #: Batched-inference dtype for the hosted model: "float64" (exact,
    #: default) or "float32" (CLI: ``--infer-dtype``).
    infer_dtype: str = "float64"


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        prediction_server: "PredictionServer" = self.server.prediction_server
        prediction_server._track(self.connection)
        try:
            self._serve_connection(prediction_server)
        finally:
            prediction_server._untrack(self.connection)

    def _serve_connection(self, prediction_server: "PredictionServer") -> None:
        while True:
            try:
                request = read_frame(self.rfile)
            except EOFError:
                return
            except ProtocolError as error:
                try:
                    write_frame(
                        self.wfile,
                        {"ok": False, "kind": "ProtocolError", "error": str(error)},
                    )
                except OSError:
                    pass
                return
            try:
                response = prediction_server.dispatch(request)
            except Exception as error:  # per-request fault isolation
                response = {
                    "ok": False,
                    "kind": type(error).__name__,
                    "error": str(error),
                }
            try:
                write_frame(self.wfile, response)
            except OSError:
                return


def probe_socket(path: str, timeout: float = 1.0) -> str:
    """Classify a serving socket path without sending a request.

    Returns ``"live"`` (something accepted a connection), ``"dead"``
    (the file exists but nothing is listening — a SIGKILLed server's
    leftover), or ``"absent"``. The distinction is what lets ``serve
    start`` reclaim a stale socket without ever stealing a live one,
    and ``serve stop`` succeed when there is nothing left to stop.
    """
    if not os.path.exists(path):
        return "absent"
    probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    probe.settimeout(timeout)
    try:
        probe.connect(path)
    except OSError:
        return "dead"
    else:
        return "live"
    finally:
        try:
            probe.close()
        except OSError:
            pass


class _UnixServer(socketserver.ThreadingMixIn, socketserver.UnixStreamServer):
    daemon_threads = True
    allow_reuse_address = True


class PredictionServer:
    """An :class:`InProcessServer` exposed on a Unix domain socket."""

    def __init__(
        self,
        model,
        config: ServerConfig,
        version: str = "v0",
        backend: Optional[InProcessServer] = None,
        registry=None,
        model_registry=None,
        model_seed: int = 0,
    ) -> None:
        self.config = config
        #: Explicit registry for the server's own spans; ``None`` uses
        #: the process-global one (separate-process deployment). Tests
        #: that host client and server in one process inject distinct
        #: registries to get distinct trace files.
        self._registry = registry
        #: The :class:`~repro.serve.registry.ModelRegistry` the server
        #: was started from, if any — what the ``swap`` op loads new
        #: versions out of. ``model_seed`` is threaded through every
        #: registry load so a swapped-in model is byte-identical to the
        #: published one regardless of the registry's default seed.
        self._model_registry = model_registry
        self._model_seed = int(model_seed)
        self._started_monotonic = time.monotonic()
        if (
            backend is None
            and model is not None
            and config.infer_dtype != "float64"
            and hasattr(model, "set_inference_mode")
        ):
            model.set_inference_mode(config.infer_dtype)
        self.backend = backend or InProcessServer(
            model,
            version=version,
            cache_bytes=config.cache_bytes,
            batcher_config=BatcherConfig(
                max_batch=config.max_batch,
                max_wait_ms=config.max_wait_ms,
                max_queue=config.max_queue,
            ),
            registry=registry,
            score_threads=config.score_threads,
        )
        path = config.socket_path
        state = probe_socket(path)
        if state == "live":
            raise ServeError(
                f"a prediction server is already listening on {path}; "
                "stop it first or choose another socket"
            )
        if state == "dead":
            os.unlink(path)  # leftover socket from a SIGKILLed server
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        self._server = _UnixServer(path, _Handler)
        self._server.prediction_server = self
        self._thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._connections_lock = threading.Lock()

    def _track(self, connection) -> None:
        with self._connections_lock:
            self._connections.add(connection)

    def _untrack(self, connection) -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    # -- request dispatch ----------------------------------------------------

    def _obs(self):
        registry = self._registry
        return registry if registry is not None else obs.active()

    def dispatch(self, request: dict) -> dict:
        """One request → one response, under the caller's trace context.

        A ``trace`` field on the frame (see
        :mod:`repro.obs.propagation`) makes every server-side span of
        this request carry the caller's trace id, with the root span
        recording its cross-process parent — the hook ``repro report
        --merge`` uses to stitch the two files. Malformed or absent
        context degrades to an independent server-side trace.
        """
        registry = self._obs()
        context = (
            TraceContext.from_wire(request.get("trace"))
            if registry is not None
            else None
        )
        if context is not None:
            with registry.remote_context(context):
                return self._dispatch(request, registry)
        return self._dispatch(request, registry)

    def _dispatch(self, request: dict, registry) -> dict:
        op = request.get("op")
        if op == "predict_batch":
            graphs = decode_graphs(request)
            recorder = active_recorder()
            slow_ms = self.config.slow_request_ms
            timing = registry is not None or (
                recorder is not None and slow_ms is not None
            )
            started = time.monotonic() if timing else 0.0
            # The versioned call pins the version that actually scored
            # this batch — reading backend.version afterwards could tag
            # old predictions with a concurrently swapped-in version.
            if registry is not None:
                with registry.span("serve.request", op=op, graphs=len(graphs)):
                    batch_version, probas = (
                        self.backend.predict_proba_batch_versioned(graphs)
                    )
            else:
                batch_version, probas = (
                    self.backend.predict_proba_batch_versioned(graphs)
                )
            if timing:
                elapsed = time.monotonic() - started
                if registry is not None:
                    registry.histogram("serve.request.seconds").observe(elapsed)
                if (
                    recorder is not None
                    and slow_ms is not None
                    and elapsed * 1000.0 >= slow_ms
                ):
                    recorder.note_slow(op, elapsed, graphs=len(graphs))
            return {
                "ok": True,
                "version": batch_version,
                "probas": [proba.tolist() for proba in probas],
            }
        if op == "status":
            status = self.backend.stats()
            status["socket"] = self.config.socket_path
            status["uptime_seconds"] = round(
                time.monotonic() - self._started_monotonic, 3
            )
            status["vocab_size"] = int(
                getattr(
                    getattr(self.backend._model, "config", None), "vocab_size", 0
                )
            )
            return {"ok": True, "status": status}
        if op == "metrics":
            snapshot = (
                registry.snapshot()
                if registry is not None
                else snapshot_from_stats(self.backend.stats())
            )
            return {
                "ok": True,
                "snapshot": snapshot,
                "exposition": render_prometheus(snapshot),
            }
        if op == "swap":
            # Hot-swap the served model to a registry version (the
            # continuous-learning promotion path). The manifest is
            # re-read first: the promoting process publishes out-of-band
            # and this server's in-memory registry view is stale.
            if self._model_registry is None:
                raise ServeError(
                    "server was not started from a model registry; "
                    "cannot hot-swap"
                )
            self._model_registry.refresh()
            version = request.get("version")
            if version is None:
                version = self._model_registry.active_version
            if version is None:
                raise ServeError(
                    "registry has no active model version to swap to"
                )
            version = str(version)
            previous = self.backend.version
            if version == previous:
                return {
                    "ok": True,
                    "version": version,
                    "previous": previous,
                    "swapped": False,
                }
            model = self._model_registry.load(version, seed=self._model_seed)
            if self.config.infer_dtype != "float64" and hasattr(
                model, "set_inference_mode"
            ):
                model.set_inference_mode(self.config.infer_dtype)
            self.backend.swap_model(model, version)
            return {
                "ok": True,
                "version": version,
                "previous": previous,
                "swapped": True,
            }
        if op == "ping":
            return {"ok": True}
        if op == "shutdown":
            # shutdown() must come from outside the serve_forever loop and
            # only after this response is written; a helper thread does both.
            threading.Thread(target=self._server.shutdown, daemon=True).start()
            return {"ok": True, "stopping": True}
        raise ProtocolError(f"unknown op {op!r}")

    # -- lifecycle -----------------------------------------------------------

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`stop` or a shutdown op."""
        registry = self._obs()
        if registry is not None:
            registry.point("serve.listen", socket=self.config.socket_path)
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._cleanup()

    def start(self) -> "PredictionServer":
        """Serve on a background thread (tests and in-process embedding)."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-socket", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _cleanup(self) -> None:
        self._server.server_close()
        # Sever established connections too: handler threads otherwise
        # outlive the server, and clients would keep talking to a ghost
        # instead of reconnecting to a replacement.
        with self._connections_lock:
            connections = list(self._connections)
            self._connections.clear()
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                connection.close()
            except OSError:
                pass
        self.backend.close()
        try:
            os.unlink(self.config.socket_path)
        except OSError:
            pass


def serve_forever(
    model,
    config: ServerConfig,
    version: str = "v0",
    model_registry=None,
    model_seed: int = 0,
) -> None:
    """Host ``model`` on ``config.socket_path`` until interrupted."""
    server = PredictionServer(
        model,
        config,
        version=version,
        model_registry=model_registry,
        model_seed=model_seed,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.stop()


# -- the client --------------------------------------------------------------


class SocketBackend(PredictionBackend):
    """Client half of the pair: the predictor surface over a socket.

    One connection, guarded by a lock (requests from concurrent threads
    serialise client-side; the server batches across *connections*, so
    parallelism should come from multiple workers each owning a
    backend). Model identity (threshold, version, vocab size) is
    fetched once from ``status`` and cached.

    Transport failures are classified: a connect refusal, a mid-request
    drop, or an EOF is *transient* — every request is idempotent, so the
    whole request is resent after exponential backoff, reconnecting as
    needed (``retries`` attempts beyond the first; ``serve.reconnects``
    counts successful reconnections). A server-side ``ok: false``
    response or a malformed frame is *fatal* and raises immediately.
    ``circuit_threshold`` consecutive transport failures open a circuit
    breaker: until ``circuit_cooldown_seconds`` elapse, requests fail
    fast (``serve.circuit_open`` counts openings) instead of hammering a
    server that is clearly down; the first request after the cooldown is
    the half-open probe that closes the circuit on success.
    """

    def __init__(
        self,
        socket_path: str,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_seconds: float = 0.05,
        circuit_threshold: int = 5,
        circuit_cooldown_seconds: float = 1.0,
    ) -> None:
        self.socket_path = socket_path
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self._rfile = None
        self._wfile = None
        self._timeout = timeout
        self._identity: Optional[dict] = None
        self._retries = max(0, int(retries))
        self._backoff = max(0.0, float(backoff_seconds))
        self._circuit_threshold = max(1, int(circuit_threshold))
        self._circuit_cooldown = max(0.0, float(circuit_cooldown_seconds))
        self._consecutive_failures = 0
        self._circuit_open_until: Optional[float] = None
        self._ever_connected = False
        #: Successful reconnections after a lost connection (operational
        #: counter, mirrored to ``serve.reconnects``).
        self.reconnects = 0
        #: Circuit-breaker openings (mirrored to ``serve.circuit_open``).
        self.circuit_opens = 0
        #: Version tag the server attached to the most recent
        #: ``predict_batch`` response — how explorers notice a hot-swap
        #: boundary (``None`` until the first prediction).
        self.observed_version: Optional[str] = None

    # -- connection management ----------------------------------------------

    def _connect(self) -> None:
        """Ensure a live connection; raises ``OSError`` (transient)."""
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        try:
            sock.connect(self.socket_path)
        except OSError:
            sock.close()
            raise
        self._sock = sock
        self._rfile = sock.makefile("rb")
        self._wfile = sock.makefile("wb")
        # A reconnect is any successful connect that had to recover:
        # the connection existed before and was lost, or earlier
        # attempts failed (server down at first contact, then back).
        if self._ever_connected or self._consecutive_failures > 0:
            self.reconnects += 1
            obs.add("serve.reconnects")
        self._ever_connected = True

    def _record_transport_failure(self) -> None:
        self._consecutive_failures += 1
        if self._consecutive_failures >= self._circuit_threshold:
            self._circuit_open_until = (
                time.monotonic() + self._circuit_cooldown
            )
            self.circuit_opens += 1
            obs.add("serve.circuit_open")

    def _exchange(self, payload: dict) -> dict:
        """One request/response over the socket, retrying transient
        transport failures; caller holds the lock."""
        now = time.monotonic()
        if self._circuit_open_until is not None and now < self._circuit_open_until:
            obs.add("serve.circuit_rejected")
            raise ServeError(
                f"cannot reach prediction server at {self.socket_path}: "
                f"circuit open after {self._consecutive_failures} "
                "consecutive connection failures (cooling down)"
            )
        last_error: Optional[BaseException] = None
        for attempt in range(self._retries + 1):
            if attempt:
                time.sleep(self._backoff * (2 ** (attempt - 1)))
            try:
                self._connect()
                write_frame(self._wfile, payload)
                response = read_frame(self._rfile)
            except (OSError, EOFError) as error:
                self._teardown()
                last_error = error
                self._record_transport_failure()
                continue
            # Success closes the circuit (this was the half-open probe
            # if one was pending).
            self._consecutive_failures = 0
            self._circuit_open_until = None
            return response
        raise ServeError(
            f"cannot reach prediction server at {self.socket_path} after "
            f"{self._retries + 1} attempts: {last_error}"
        ) from None

    def _request(self, payload: dict) -> dict:
        # Attach the caller's trace context only when telemetry is on —
        # with it off the frame (and therefore the wire) is byte-for-byte
        # what a telemetry-free build sends.
        context = current_context()
        if context is not None:
            payload["trace"] = context.to_wire()
        with self._lock:
            response = self._exchange(payload)
        if not response.get("ok"):
            # Fatal: the server answered, and the answer is an error —
            # retrying would re-earn the same refusal.
            raise ServeError(
                f"server error ({response.get('kind', 'unknown')}): "
                f"{response.get('error', 'no detail')}"
            )
        return response

    def _teardown(self) -> None:
        for handle in (self._rfile, self._wfile, self._sock):
            if handle is not None:
                try:
                    handle.close()
                except OSError:
                    pass
        self._sock = self._rfile = self._wfile = None

    def close(self) -> None:
        with self._lock:
            self._teardown()

    # -- the predictor surface -----------------------------------------------

    def _fetch_identity(self) -> dict:
        if self._identity is None:
            self._identity = self._request({"op": "status"})["status"]
        return self._identity

    @property
    def threshold(self) -> float:
        return float(self._fetch_identity()["threshold"])

    @property
    def version(self) -> str:
        return str(self._fetch_identity()["version"])

    def predict_proba_batch(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        graphs = list(graphs)
        if not graphs:
            return []
        payload = encode_graphs(graphs)
        payload["op"] = "predict_batch"
        # The serve.call span is open while _request reads the current
        # context, so the server parents its spans under this exact call.
        with obs.span("serve.call", op="predict_batch", graphs=len(graphs)):
            response = self._request(payload)
        probas = response["probas"]
        if len(probas) != len(graphs):
            raise ProtocolError(
                f"server returned {len(probas)} predictions for {len(graphs)} graphs"
            )
        served = response.get("version")
        if served is not None:
            self.observed_version = str(served)
        return [np.asarray(proba, dtype=np.float64) for proba in probas]

    # -- service management --------------------------------------------------

    def ping(self) -> bool:
        try:
            return bool(self._request({"op": "ping"})["ok"])
        except ServeError:
            return False

    def status(self) -> dict:
        """Live server stats (never the cached identity)."""
        status = self._request({"op": "status"})["status"]
        self._identity = status
        return status

    def swap(self, version: Optional[str] = None) -> dict:
        """Ask the server to hot-swap to a registry version.

        ``None`` swaps to whatever the registry manifest currently
        names as active (the promotion path: publish first, then tell
        every server to catch up). Returns the server's
        ``{version, previous, swapped}`` response; the cached identity
        is invalidated so the next ``threshold``/``version`` read
        reflects the new model.
        """
        payload: Dict[str, object] = {"op": "swap"}
        if version is not None:
            payload["version"] = version
        response = self._request(payload)
        self._identity = None
        return {
            "version": str(response["version"]),
            "previous": str(response["previous"]),
            "swapped": bool(response["swapped"]),
        }

    def metrics(self) -> dict:
        """The server's metrics snapshot + Prometheus exposition text."""
        response = self._request({"op": "metrics"})
        return {
            "snapshot": response.get("snapshot") or {},
            "exposition": response.get("exposition") or "",
        }

    def shutdown(self) -> None:
        try:
            self._request({"op": "shutdown"})
        except ServeError:
            # The server tears down established connections as part of
            # stopping, and that teardown can race the shutdown reply —
            # the ack is lost but the stop happened. If nothing is
            # listening any more, the request did its job.
            if probe_socket(self.socket_path) == "live":
                raise
        finally:
            self.close()

    def stats(self) -> dict:
        return {"backend": "socket", "socket": self.socket_path}
