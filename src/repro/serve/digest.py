"""Canonical content digests of CT graphs — the prediction cache key.

A served prediction is a pure function of (model parameters, graph
content): two requests whose graphs carry identical node features and
edges must hit the same cache line no matter which process, template
instance, or campaign generation produced them. The digest therefore
covers every array the PIC forward pass reads — node types, threads,
blocks, hint flags, token ids, and the full typed edge list — plus the
kernel version and the schedule hints (redundant with the hint edges
and flags, but cheap insurance against a future encoding that moves
information out of the arrays).

Digesting ``token_ids`` dominates the cost (``num_nodes × max_tokens``
int64s), and that array is shared by every schedule of a CTI — graphs
stamped from one :class:`~repro.graphs.ctgraph.CTIGraphTemplate` alias
the same object. The template-level portion of the digest is memoised
per ``token_ids`` array (same keying discipline as the PIC model's
encoder cache, holding a reference so ``id()`` cannot be reused), so a
candidate pool pays the big hash once and each candidate only hashes
its own hint flags and schedule edges.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Tuple

import numpy as np

from repro.graphs.ctgraph import EDGE_SCHEDULE, CTGraph

__all__ = ["graph_digest", "prediction_key", "clear_digest_memo"]

#: Memo of template-level digest prefixes: id(token_ids) -> (token_ids,
#: hexdigest). Bounded; eviction is FIFO like the model's encoder cache.
_TEMPLATE_MEMO: Dict[int, Tuple[np.ndarray, str]] = {}
_TEMPLATE_MEMO_CAP = 64


def _hash_arrays(hasher: "hashlib._Hash", *arrays: np.ndarray) -> None:
    for array in arrays:
        array = np.ascontiguousarray(array)
        hasher.update(str(array.dtype).encode("ascii"))
        hasher.update(repr(array.shape).encode("ascii"))
        hasher.update(array.tobytes())


def _template_prefix(graph: CTGraph) -> str:
    """Digest of everything schedule-independent, memoised per template."""
    key = id(graph.token_ids)
    cached = _TEMPLATE_MEMO.get(key)
    if cached is not None and cached[0] is graph.token_ids:
        return cached[1]
    hasher = hashlib.sha256()
    hasher.update(graph.kernel_version.encode("utf-8"))
    hasher.update(repr(graph.cti_key).encode("ascii"))
    base_rows = graph.edges[graph.edges[:, 2] != EDGE_SCHEDULE]
    _hash_arrays(
        hasher,
        graph.node_types,
        graph.node_threads,
        graph.node_blocks,
        graph.token_ids,
        base_rows,
    )
    prefix = hasher.hexdigest()
    if len(_TEMPLATE_MEMO) >= _TEMPLATE_MEMO_CAP:
        oldest = next(iter(_TEMPLATE_MEMO))
        del _TEMPLATE_MEMO[oldest]
    _TEMPLATE_MEMO[key] = (graph.token_ids, prefix)
    return prefix


def graph_digest(graph: CTGraph) -> str:
    """Hex digest of one CT graph's full prediction-relevant content.

    Canonical: graphs built independently (different template objects,
    different processes) digest identically iff their arrays match, and
    any change to the schedule hints — which rewrites the hint flags
    and/or schedule edges — changes the digest.
    """
    hasher = hashlib.sha256()
    hasher.update(_template_prefix(graph).encode("ascii"))
    schedule_rows = graph.edges[graph.edges[:, 2] == EDGE_SCHEDULE]
    _hash_arrays(hasher, graph.hint_flags, schedule_rows)
    hasher.update(repr(tuple(graph.hints)).encode("utf-8"))
    return hasher.hexdigest()


def prediction_key(model_version: str, graph: CTGraph) -> str:
    """The content-addressed cache key: model version + graph digest.

    Including the model version means a registry hot-swap implicitly
    invalidates every cached prediction of the previous version — stale
    entries simply stop being addressed and age out of the LRU.
    """
    return f"{model_version}:{graph_digest(graph)}"


def clear_digest_memo() -> None:
    """Drop the template-prefix memo (tests; never needed in production)."""
    _TEMPLATE_MEMO.clear()
