"""``repro.serve`` — the shared PIC inference service.

Snowcat's economics make the PIC predictor the hot shared resource: a
prediction is ~190× cheaper than a dynamic execution (§5.2.2), so every
consumer — MLPCT campaigns, Razzer-PIC, SB-PIC, continuous testing —
hammers the model far harder than it hammers the kernel. Before this
subsystem each of those consumers loaded its *own* ``PICModel`` and
re-scored identical candidate graphs from scratch; ``repro.serve`` turns
prediction into a service with four layers:

- :mod:`repro.serve.registry` — :class:`ModelRegistry`: versioned,
  checksummed checkpoints with atomic publish, hot-swap activation, and
  one-step rollback (durable via :mod:`repro.resilience.atomic`).
- :mod:`repro.serve.cache` — :class:`PredictionCache`: a
  content-addressed LRU keyed by a canonical digest of (model version,
  CT graph structure, schedule hints) so repeated candidates across
  strategies and campaign generations are never re-scored
  (:mod:`repro.serve.digest` defines the key).
- :mod:`repro.serve.batching` — :class:`MicroBatcher`: coalesces
  concurrent single-graph requests into ``predict_proba_batch`` calls
  (flush on max-batch or max-wait deadline) behind a bounded queue with
  admission control; also the model's concurrency discipline — all
  inference runs on the batcher thread, so the ``PICModel``'s internal
  caches never see concurrent writers.
- :mod:`repro.serve.backend` / :mod:`repro.serve.server` — the
  :class:`PredictionBackend` seam consumed by
  :class:`repro.core.scoring.CandidateScorer`: :class:`LocalBackend`
  (the byte-identical default), :class:`InProcessServer` (one shared
  model + cache + batcher inside the process), and a Unix-socket
  JSON server/client pair (:class:`PredictionServer` /
  :class:`SocketBackend`, length-prefixed frames over stdlib
  ``socketserver``) so parallel campaign workers share one model
  instance instead of N copies.

Everything is instrumented through :mod:`repro.obs` under the
``serve.*`` namespace; see ``docs/SERVING.md`` for the architecture,
cache semantics, and tuning knobs.
"""

from __future__ import annotations

from repro.serve.backend import InProcessServer, LocalBackend, PredictionBackend
from repro.serve.batching import BatcherConfig, MicroBatcher
from repro.serve.cache import PredictionCache
from repro.serve.digest import graph_digest, prediction_key
from repro.serve.registry import ModelRecord, ModelRegistry
from repro.serve.server import (
    PredictionServer,
    ServerConfig,
    SocketBackend,
    probe_socket,
    serve_forever,
)

__all__ = [
    "PredictionBackend",
    "LocalBackend",
    "InProcessServer",
    "BatcherConfig",
    "MicroBatcher",
    "PredictionCache",
    "graph_digest",
    "prediction_key",
    "ModelRecord",
    "ModelRegistry",
    "PredictionServer",
    "ServerConfig",
    "SocketBackend",
    "probe_socket",
    "serve_forever",
]
