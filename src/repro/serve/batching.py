"""Micro-batching scheduler: coalesce single-graph requests into batches.

The PIC model's batched forward pass is what makes inference cheap
(:meth:`predict_proba_batch` amortises per-call overhead across a
block-diagonal union), but concurrent clients naturally produce *single*
requests. The :class:`MicroBatcher` sits between them and the model: a
bounded queue feeds one worker thread that gathers up to
``max_batch`` requests — waiting at most ``max_wait_ms`` after the first
one arrives — and runs the whole gather through one compute call.

Two deliberate properties:

- **Serialised inference.** All compute runs on the single worker
  thread, so the shared model's internal caches (encoder memo, base
  features, template batch plans) never see concurrent writers. The
  batcher *is* the model's concurrency discipline, not just a perf
  device.
- **Admission control.** The queue is bounded; the default policy
  blocks the submitter (backpressure, counted in
  ``serve.queue.backpressure``), and ``block_on_full=False`` turns a
  full queue into an immediate :class:`~repro.errors.AdmissionError`
  (load-shedding, counted in ``serve.queue.rejected``).

Telemetry: ``serve.batch.size`` histogram, ``serve.batch.flush_full`` /
``serve.batch.flush_deadline`` counters, queue-depth gauge
``serve.queue.depth``; :meth:`MicroBatcher.stats` mirrors all of it for
the server's ``status`` op. The clock is injectable so deadline-flush
behaviour is testable under a fake clock.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro import obs
from repro.errors import AdmissionError, ServeError
from repro.obs.flight import active_recorder

__all__ = ["BatcherConfig", "PendingResult", "MicroBatcher"]


@dataclass(frozen=True)
class BatcherConfig:
    """Coalescing and admission knobs (CLI: ``--max-batch``,
    ``--max-wait-ms``)."""

    #: Largest compute batch; also the flush trigger.
    max_batch: int = 8
    #: How long the worker waits after the first request of a batch for
    #: more to arrive before flushing a partial batch.
    max_wait_ms: float = 2.0
    #: Bounded-queue capacity (admission control).
    max_queue: int = 256
    #: Full-queue policy: ``True`` blocks the submitter (backpressure),
    #: ``False`` raises :class:`~repro.errors.AdmissionError`.
    block_on_full: bool = True


class PendingResult:
    """A single request's future result (set once by the worker).

    Carries the lifecycle timestamps of its trip through the batcher
    (all in the batcher's clock): ``enqueued_at`` stamped by
    :meth:`MicroBatcher.submit`, ``compute_start``/``compute_end`` and
    ``batch_size`` stamped by the worker before resolving. The waiting
    thread may read them after :meth:`result` returns (the event wait
    orders the stamps); the serving backend turns them into synthetic
    ``serve.batch`` / ``serve.queue_wait`` / ``serve.model`` spans.
    """

    __slots__ = (
        "payload",
        "_event",
        "_value",
        "_error",
        "enqueued_at",
        "compute_start",
        "compute_end",
        "batch_size",
    )

    def __init__(self, payload: object) -> None:
        self.payload = payload
        self._event = threading.Event()
        self._value: object = None
        self._error: Optional[BaseException] = None
        self.enqueued_at: float = 0.0
        self.compute_start: float = 0.0
        self.compute_end: Optional[float] = None
        self.batch_size: int = 0

    def _resolve(self, value: object) -> None:
        self._value = value
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> object:
        if not self._event.wait(timeout):
            raise ServeError("timed out waiting for a served prediction")
        if self._error is not None:
            raise self._error
        return self._value


class MicroBatcher:
    """One worker thread turning a request queue into compute batches.

    ``compute`` receives the payloads of one gathered batch (a list) and
    must return one result per payload, in order. Any exception it
    raises is propagated to every requester in that batch.
    """

    def __init__(
        self,
        compute: Callable[[List[object]], Sequence[object]],
        config: Optional[BatcherConfig] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config or BatcherConfig()
        if self.config.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.config.max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        self._compute = compute
        self._clock = clock
        self._queue: "queue.Queue[Optional[PendingResult]]" = queue.Queue(
            maxsize=self.config.max_queue
        )
        self._lock = threading.Lock()
        self._submitted = 0
        self._rejected = 0
        self._backpressure = 0
        self._batches = 0
        self._flush_full = 0
        self._flush_deadline = 0
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._worker.start()

    # -- submission ----------------------------------------------------------

    def submit(self, payload: object) -> PendingResult:
        """Enqueue one request; returns its :class:`PendingResult`."""
        if self._closed:
            raise ServeError("micro-batcher is closed")
        pending = PendingResult(payload)
        pending.enqueued_at = self._clock()
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            if not self.config.block_on_full:
                with self._lock:
                    self._rejected += 1
                obs.add("serve.queue.rejected")
                recorder = active_recorder()
                if recorder is not None:  # load shedding is a post-mortem trigger
                    recorder.dump_now(
                        "admission_error",
                        detail=f"queue full at {self.config.max_queue} pending",
                    )
                raise AdmissionError(
                    f"serving queue full ({self.config.max_queue} pending); "
                    "request rejected by admission control"
                ) from None
            with self._lock:
                self._backpressure += 1
            obs.add("serve.queue.backpressure")
            self._queue.put(pending)  # backpressure: wait for capacity
        with self._lock:
            self._submitted += 1
        obs.gauge("serve.queue.depth", self._queue.qsize())
        return pending

    def submit_many(self, payloads: Sequence[object]) -> List[PendingResult]:
        return [self.submit(payload) for payload in payloads]

    # -- the worker ----------------------------------------------------------

    def _gather(self, first: PendingResult) -> List[PendingResult]:
        """One coalescing window: flush on max-batch or the deadline.

        The deadline is ``max_wait_ms`` after the window opens; a batch
        that fills first flushes immediately. Uses only ``self._clock``
        for time, so tests drive it with a fake clock.
        """
        batch = [first]
        deadline = self._clock() + self.config.max_wait_ms / 1000.0
        while len(batch) < self.config.max_batch:
            remaining = deadline - self._clock()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is None:  # shutdown sentinel: flush what we have
                self._queue.put(None)  # re-post for the main loop to see
                break
            batch.append(item)
        with self._lock:
            self._batches += 1
            if len(batch) >= self.config.max_batch:
                self._flush_full += 1
                obs.add("serve.batch.flush_full")
            else:
                self._flush_deadline += 1
                obs.add("serve.batch.flush_deadline")
        obs.observe("serve.batch.size", len(batch))
        return batch

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is None:
                return
            batch = self._gather(first)
            started = self._clock()
            for pending in batch:
                pending.batch_size = len(batch)
                pending.compute_start = started
            try:
                results = self._compute([pending.payload for pending in batch])
                if len(results) != len(batch):
                    raise ServeError(
                        f"compute returned {len(results)} results "
                        f"for a batch of {len(batch)}"
                    )
            except BaseException as error:  # propagate to every requester
                finished = self._clock()
                for pending in batch:
                    pending.compute_end = finished
                    pending._reject(error)
                continue
            finished = self._clock()
            for pending, value in zip(batch, results):
                pending.compute_end = finished
                pending._resolve(value)

    # -- lifecycle / stats ---------------------------------------------------

    def close(self, timeout: float = 10.0) -> None:
        """Stop accepting work, drain the queue, and join the worker."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._worker.join(timeout)

    def stats(self) -> dict:
        with self._lock:
            return {
                "submitted": self._submitted,
                "batches": self._batches,
                "flush_full": self._flush_full,
                "flush_deadline": self._flush_deadline,
                "rejected": self._rejected,
                "backpressure": self._backpressure,
                "queue_depth": self._queue.qsize(),
                "max_batch": self.config.max_batch,
                "max_wait_ms": self.config.max_wait_ms,
                "max_queue": self.config.max_queue,
            }
