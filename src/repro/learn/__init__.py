"""repro.learn — the continuous-learning model lifecycle.

Closes the loop the paper's §5.4 amortisation analysis argues for:
campaigns journal the ground-truth coverage labels of every CT they
execute; a tailer feeds them into a durable label store; a worker
fine-tunes the active model on fresh labels; a quality gate decides
promotion; the registry hot-swaps the new version into live campaigns.
See ``docs/LIFECYCLE.md`` for the end-to-end story and the crash-safety
argument.
"""

from repro.learn.labels import LabelRecord, LabelStore, LabelTailer, label_id
from repro.learn.promote import (
    GateReport,
    evaluate_candidate,
    maybe_rollback,
    publish_candidate,
    quarantine,
)
from repro.learn.worker import STATUS_NAME, FineTuneWorker, LearnConfig

__all__ = [
    "LabelRecord",
    "LabelStore",
    "LabelTailer",
    "label_id",
    "GateReport",
    "evaluate_candidate",
    "publish_candidate",
    "quarantine",
    "maybe_rollback",
    "LearnConfig",
    "FineTuneWorker",
    "STATUS_NAME",
]
