"""Quality-gated promotion of fine-tuned candidates (the lifecycle gate).

A candidate produced by the fine-tune worker never reaches the
:class:`~repro.serve.registry.ModelRegistry` on faith. It must first
pass :func:`evaluate_candidate`:

- **fresh-label holdout**: validation URB AP on labels the candidate was
  *not* trained on, compared against the currently active model on the
  same holdout. The candidate must not regress by more than
  ``min_gain`` (negative values tolerate a small dip — fresh labels are
  noisy; a large positive value is the CI lever for forcing a failure).
- **golden pipeline** (optional): the pinned ``repro quality`` gate
  (:func:`repro.oracle.quality.run_quality_gate`) scored with the
  candidate model. Only meaningful when the candidate's vocabulary is
  the golden kernel's — campaign-trained candidates usually are not, so
  this check is opt-in.

A failing candidate is quarantined — its checkpoint stays under the
worker's ``candidates/`` directory and a structured failure report lands
in ``quarantine/`` — and the registry is untouched. After a successful
promotion and live hot-swap, :func:`maybe_rollback` watches the swap
boundary the campaign recorded (races per execution before vs after)
and rolls the registry back one step when the live signal regresses.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ServeError
from repro.ml.training import validation_urb_ap
from repro.resilience.atomic import atomic_write_text

__all__ = [
    "GateReport",
    "evaluate_candidate",
    "publish_candidate",
    "quarantine",
    "maybe_rollback",
]


@dataclass
class GateReport:
    """Structured verdict of one promotion gate run."""

    candidate: str
    base: str
    candidate_ap: float
    active_ap: float
    min_gain: float
    holdout_size: int
    passed: bool
    #: Golden-pipeline verdict; ``None`` when the golden gate was skipped.
    golden_passed: Optional[bool] = None
    golden_failures: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidate": self.candidate,
            "base": self.base,
            "candidate_ap": self.candidate_ap,
            "active_ap": self.active_ap,
            "min_gain": self.min_gain,
            "holdout_size": self.holdout_size,
            "passed": self.passed,
            "golden_passed": self.golden_passed,
            "golden_failures": list(self.golden_failures),
        }


def evaluate_candidate(
    candidate,
    active,
    holdout: Sequence[object],
    base_version: str,
    candidate_name: str,
    min_gain: float = -0.05,
    golden: bool = False,
    baseline_path: Optional[str] = None,
) -> GateReport:
    """Run the promotion gate; never touches the registry.

    ``holdout`` must be fresh-label examples excluded from the
    candidate's training window. The rule is relative: the candidate
    passes when ``candidate_ap >= active_ap + min_gain``. With
    ``golden=True`` the pinned golden-pipeline gate must *also* pass
    (requires a vocabulary-compatible candidate).
    """
    candidate_ap = validation_urb_ap(candidate, holdout)
    active_ap = validation_urb_ap(active, holdout) if active is not None else 0.0
    passed = candidate_ap >= active_ap + min_gain
    report = GateReport(
        candidate=candidate_name,
        base=base_version,
        candidate_ap=float(candidate_ap),
        active_ap=float(active_ap),
        min_gain=float(min_gain),
        holdout_size=len(holdout),
        passed=passed,
    )
    if golden and passed:
        from repro.oracle.quality import run_quality_gate

        golden_report = run_quality_gate(
            baseline_path=baseline_path, model=candidate
        )
        report.golden_passed = golden_report.passed
        report.golden_failures = [
            check.name for check in golden_report.checks if not check.passed
        ]
        report.passed = passed and golden_report.passed
    obs.point(
        "learn.gate",
        candidate=candidate_name,
        base=base_version,
        candidate_ap=round(candidate_ap, 6),
        active_ap=round(active_ap, 6),
        passed=report.passed,
    )
    return report


def publish_candidate(registry, model, version: str):
    """Publish-and-activate, idempotent across journal resumes.

    A worker killed between publishing and journaling its terminal
    record re-runs this on resume; the registry's immutable records
    make the re-publish a :class:`~repro.errors.ServeError`, which we
    resolve by (re-)activating the already-published version.
    """
    try:
        return registry.publish(model, version=version, activate=True)
    except ServeError:
        return registry.activate(version)


def quarantine(root: str, name: str, report: Dict[str, object]) -> str:
    """Write a failed candidate's structured report; returns its path.

    The candidate checkpoint itself is left in place under
    ``candidates/`` for post-mortem; only the registry stays untouched.
    """
    directory = os.path.join(os.path.abspath(root), "quarantine")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    atomic_write_text(path, json.dumps(report, indent=2, sort_keys=True) + "\n")
    obs.point("learn.quarantine", candidate=name, report=path)
    return path


def maybe_rollback(registry, result, tolerance: float = 0.5):
    """Auto-rollback when post-swap live metrics regress.

    ``result`` is a :class:`~repro.core.mlpct.CampaignResult` whose
    campaign lived through one or more hot-swaps. If the races-per-
    execution rate *after* the last swap fell below ``tolerance`` times
    the rate before it (with real work on both sides of the boundary),
    the registry rolls back one step. Returns the re-activated
    :class:`~repro.serve.registry.ModelRecord`, or ``None`` when no
    rollback happened. The caller is responsible for swapping any live
    server back to the restored version.
    """
    deltas = result.swap_deltas()
    if not deltas:
        return None
    last = deltas[-1]
    if last["before_executions"] <= 0 or last["after_executions"] <= 0:
        return None
    if last["before_rate"] <= 0:
        return None
    if last["after_rate"] >= tolerance * last["before_rate"]:
        return None
    record = registry.rollback()
    obs.point(
        "learn.rollback",
        regressed=last["version"],
        restored=record.version,
        before_rate=round(float(last["before_rate"]), 6),
        after_rate=round(float(last["after_rate"]), 6),
    )
    return record
