"""Journal-fed label ingestion for the continuous-learning loop.

Campaigns run with ``--capture-labels`` record, inside each committed
``cti`` journal record, the ground-truth coverage labels of every CT they
executed (see :meth:`repro.core.mlpct._ExplorerBase.account_results`).
This module turns those journals into training data:

- :class:`LabelStore` is the durable, deduplicated label database — one
  checksummed JSON-lines journal holding both label records and
  per-source-journal watermarks, so a crashed or restarted tailer never
  re-ingests a label it already committed and never skips one it hasn't.
- :class:`LabelTailer` incrementally follows one or more campaign/fleet
  journals. It reads each journal's *valid prefix* without mutating the
  file (:func:`repro.resilience.journal.read_journal_tolerant`), so
  tailing a journal that a live campaign is still appending to is safe:
  a torn final line is simply "not there yet".

Watermark discipline: the store appends the new label records first and
the advanced watermark record *after* them. A crash in between means the
next poll re-reads the same journal span, and the content-addressed
dedup makes the re-ingest a no-op — at-least-once delivery plus
idempotence equals exactly-once labels.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import JournalError
from repro.resilience.atomic import canonical_json, sha256_hex
from repro.resilience.journal import JournalFile, read_journal_tolerant

__all__ = ["LabelRecord", "LabelStore", "LabelTailer", "label_id"]

STORE_NAME = "labels.jsonl"


def label_id(payload: Dict[str, object]) -> str:
    """Content address of one label: hash of its canonical payload.

    Two campaigns executing the same CT with the same hints produce the
    same labels — and the same id, which is what makes re-ingestion after
    a crash (or overlapping journals in a fleet) idempotent.
    """
    body = {
        "sti": payload["sti"],
        "hints": payload["hints"],
        "covered": payload["covered"],
    }
    return sha256_hex(canonical_json(body))


class LabelRecord(dict):
    """One ingested label (a dict with ``sti``/``hints``/``covered``/``id``)."""


class LabelStore:
    """Durable deduplicated store of campaign-captured labels.

    Layout: ``<root>/labels.jsonl``, a checksummed append-only journal of
    two record kinds:

    - ``{"kind": "label", "id": ..., "sti": [...], "hints": [[t, i], ...],
      "covered": [[...], ...]}`` — one executed CT's ground truth;
    - ``{"kind": "mark", "journal": <abspath>, "count": N}`` — "the first
      ``N`` records of that source journal have been fully ingested".

    Both share the journal's write-ahead semantics (flush + fsync per
    append, torn-final-line truncation on open), so the store survives
    SIGKILL at any instruction boundary.
    """

    def __init__(self, root: str) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self._file = JournalFile(os.path.join(self.root, STORE_NAME))
        self._ids: set = set()
        self.labels: List[LabelRecord] = []
        self._watermarks: Dict[str, int] = {}
        for record in self._file.records:
            self._replay(record)

    def _replay(self, record: Dict[str, object]) -> None:
        kind = record.get("kind")
        if kind == "label":
            identity = str(record["id"])
            if identity not in self._ids:
                self._ids.add(identity)
                self.labels.append(LabelRecord(record))
        elif kind == "mark":
            self._watermarks[str(record["journal"])] = int(record["count"])
        else:
            raise JournalError(
                f"label store {self._file.path} holds unknown record kind "
                f"{kind!r}"
            )

    @property
    def path(self) -> str:
        return self._file.path

    @property
    def count(self) -> int:
        return len(self.labels)

    def watermark(self, journal_path: str) -> int:
        """How many records of ``journal_path`` are already ingested."""
        return self._watermarks.get(os.path.abspath(journal_path), 0)

    def ingest(
        self,
        journal_path: str,
        payloads: Sequence[Dict[str, object]],
        processed_records: int,
    ) -> int:
        """Commit labels tailed from one journal and advance its watermark.

        Appends the (non-duplicate) label records first, the watermark
        record last: the watermark is the commit point, and everything
        before it re-ingests idempotently after a crash.
        Returns the number of genuinely new labels.
        """
        journal_path = os.path.abspath(journal_path)
        added = 0
        for payload in payloads:
            identity = label_id(payload)
            if identity in self._ids:
                continue
            record = {
                "kind": "label",
                "id": identity,
                "sti": list(payload["sti"]),
                "hints": [list(hint) for hint in payload["hints"]],
                "covered": [list(blocks) for blocks in payload["covered"]],
            }
            self._file.append(record)
            self._ids.add(identity)
            self.labels.append(LabelRecord(record))
            added += 1
        if processed_records != self._watermarks.get(journal_path, 0):
            self._file.append(
                {
                    "kind": "mark",
                    "journal": journal_path,
                    "count": int(processed_records),
                }
            )
            self._watermarks[journal_path] = int(processed_records)
        return added

    def window(self, size: int) -> List[LabelRecord]:
        """The most recent ``size`` labels, oldest first."""
        return self.labels[-size:] if size > 0 else []

    def close(self) -> None:
        self._file.close()


class LabelTailer:
    """Incrementally follow campaign/fleet journals into a label store."""

    def __init__(self, store: LabelStore, journals: Iterable[str]) -> None:
        self.store = store
        self.journals = [os.path.abspath(path) for path in journals]

    def poll(self) -> int:
        """One tail pass over every journal; returns new labels ingested.

        Per journal: read the valid prefix tolerantly, skip the already-
        watermarked records, pull the ``labels`` field out of committed
        ``cti`` records, and commit labels + watermark to the store. A
        journal that shrank below its watermark (a resumed campaign's
        ``rewrite()`` dropped an uncommitted tail) yields nothing this
        poll — the redone records are deterministically identical, so the
        watermark stays sound.
        """
        total = 0
        for path in self.journals:
            records, _torn = read_journal_tolerant(path)
            mark = self.store.watermark(path)
            if len(records) <= mark:
                continue
            fresh = records[mark:]
            payloads: List[Dict[str, object]] = []
            for record in fresh:
                if record.get("kind") != "cti":
                    continue
                for payload in record.get("labels", []) or []:
                    payloads.append(payload)
            added = self.store.ingest(path, payloads, len(records))
            total += added
            if added and obs.is_enabled():
                obs.point(
                    "learn.ingest",
                    journal=os.path.basename(path),
                    labels=added,
                    total=self.store.count,
                )
        return total
