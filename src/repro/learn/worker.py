"""The fine-tune worker: the engine of the continuous-learning loop.

One :meth:`FineTuneWorker.run_once` call is one *cycle*:

1. **trigger** — enough fresh labels accumulated in the
   :class:`~repro.learn.labels.LabelStore` since the last cycle
   (``LearnConfig.min_labels``), otherwise the call is a cheap no-op;
2. **train** — fork the registry's active model
   (:func:`~repro.ml.training.fine_tune_with_replay`) on a sliding
   window of fresh labels mixed with replay examples drawn from the
   original training distribution;
3. **gate** — :func:`~repro.learn.promote.evaluate_candidate` on a
   fresh-label holdout (plus optionally the golden pipeline);
4. **promote or quarantine** — publish-and-activate into the
   :class:`~repro.serve.registry.ModelRegistry`, or write a structured
   quarantine report; the registry is untouched on failure.

Every stage boundary is journaled (``<root>/learn.journal``, the same
checksummed write-ahead file campaigns use), so SIGKILL at any point
resumes deterministically: the cycle record pins the training window
(explicit label-id list), the base version, and the candidate name; the
trained record pins the candidate checkpoint's content checksum; retrain
after a crash reproduces the identical checkpoint because every input
is pinned and every stage is deterministic.

The worker's only nondeterministic output is the ``learn.json`` status
heartbeat (wall-clock timestamps) — observability, never consumed by
the deterministic path.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro import rng as rngmod
from repro.errors import CheckpointError, ServeError
from repro.execution.concurrent import ScheduleHint
from repro.execution.pct import propose_hint_pairs
from repro.graphs.dataset import CTExample
from repro.learn.labels import LabelStore
from repro.learn.promote import evaluate_candidate, publish_candidate, quarantine
from repro.ml.pic import PICModel
from repro.ml.training import TrainingConfig, fine_tune_with_replay
from repro.resilience.atomic import atomic_write_text
from repro.resilience.journal import JournalFile

__all__ = ["LearnConfig", "FineTuneWorker", "STATUS_NAME"]

JOURNAL_NAME = "learn.journal"
STATUS_NAME = "learn.json"


@dataclass(frozen=True)
class LearnConfig:
    """Knobs of the continuous-learning worker."""

    #: Fresh labels (since the last cycle started) that trigger a cycle.
    min_labels: int = 8
    #: Sliding training window: the most recent N labels.
    window: int = 256
    #: Fine-tuning schedule.
    epochs: int = 2
    learning_rate: float = 1e-3
    #: Every k-th window example is held out for the gate (never trained on).
    holdout_every: int = 4
    seed: int = 0
    #: Gate rule: candidate AP must be >= active AP + min_gain. The
    #: slightly negative default tolerates holdout noise; a large
    #: positive value forces a quarantine (CI's injected regression).
    min_gain: float = -0.05
    #: Replay CTIs labelled from the deployment's own distribution to
    #: anchor against catastrophic forgetting; schedules per CTI fixed at 2.
    replay_ctis: int = 2
    #: Also require the pinned golden ``repro quality`` gate (only
    #: meaningful for vocabulary-compatible candidates).
    golden_gate: bool = False


class FineTuneWorker:
    """Journal-backed, crash-safe fine-tune/gate/promote worker.

    ``snowcat`` must be the same deployment the journaled campaigns ran
    (build both through :meth:`repro.core.snowcat.Snowcat.standard`):
    label records reference corpus entries by ``sti_id``, and only an
    identically seeded corpus maps them back onto the same programs.

    ``pause`` is a test hook called with a stage name (``"cycle"``,
    ``"trained"``, ``"gate"``) right after that stage's journal record
    commits — the SIGKILL drill stops the process there.
    """

    def __init__(
        self,
        root: str,
        store: LabelStore,
        registry,
        snowcat,
        config: Optional[LearnConfig] = None,
        pause: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)
        self.store = store
        self.registry = registry
        self.snowcat = snowcat
        self.config = config or LearnConfig()
        self.journal = JournalFile(os.path.join(self.root, JOURNAL_NAME))
        self.candidates_dir = os.path.join(self.root, "candidates")
        os.makedirs(self.candidates_dir, exist_ok=True)
        self._pause_hook = pause

    # -- journal bookkeeping --------------------------------------------------

    def _cycles(self) -> Dict[int, Dict[str, Dict[str, object]]]:
        cycles: Dict[int, Dict[str, Dict[str, object]]] = {}
        for record in self.journal.records:
            cycles.setdefault(int(record["cycle"]), {})[
                str(record["kind"])
            ] = record
        return cycles

    @staticmethod
    def _terminal(state: Dict[str, Dict[str, object]]) -> Optional[str]:
        for kind in ("promoted", "quarantined"):
            if kind in state:
                return kind
        return None

    def _pause(self, stage: str) -> None:
        if self._pause_hook is not None:
            self._pause_hook(stage)

    # -- status heartbeat -----------------------------------------------------

    @property
    def status_path(self) -> str:
        return os.path.join(self.root, STATUS_NAME)

    def _write_status(self, **fields: object) -> None:
        payload: Dict[str, object] = {
            "total_labels": self.store.count,
            "active_version": self.registry.active_version,
            "config": asdict(self.config),
            "updated_unix": time.time(),
        }
        payload.update(fields)
        atomic_write_text(
            self.status_path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )

    # -- dataset reconstruction -----------------------------------------------

    def _examples_from_labels(
        self, labels: Sequence[Dict[str, object]]
    ) -> Tuple[List[CTExample], int]:
        """Rebuild labelled CT graphs from stored label payloads.

        Labels referencing STIs outside this deployment's corpus (a
        journal from a differently seeded campaign) are skipped and
        counted, never guessed at.
        """
        corpus = {
            int(entry.sti.sti_id): entry
            for entry in self.snowcat.graphs.corpus.entries
        }
        examples: List[CTExample] = []
        skipped = 0
        for record in labels:
            entries = []
            for sti in record["sti"]:
                entry = corpus.get(int(sti))
                if entry is None:
                    break
                entries.append(entry)
            if len(entries) != len(record["sti"]):
                skipped += 1
                continue
            hints = [
                ScheduleHint(thread=int(thread), iid=int(iid))
                for thread, iid in record["hints"]
            ]
            graph = self.snowcat.graphs.graph_for(*entries, hints)
            covered = [
                set(int(block) for block in blocks)
                for blocks in record["covered"]
            ]
            labels_array = np.zeros(graph.num_nodes, dtype=np.float64)
            for index in range(graph.num_nodes):
                thread = int(graph.node_threads[index])
                block = int(graph.node_blocks[index])
                if thread < len(covered) and block in covered[thread]:
                    labels_array[index] = 1.0
            examples.append(CTExample(graph=graph, labels=labels_array))
        return examples, skipped

    def _replay_examples(self) -> List[CTExample]:
        """Replay anchor set, built purely (own RNG streams, never the
        dataset builder's stateful one) so a resumed cycle reproduces it
        bit-for-bit."""
        if self.config.replay_ctis <= 0:
            return []
        rng = rngmod.split(self.config.seed, "learn-replay-hints")
        examples: List[CTExample] = []
        for entry_a, entry_b in self.snowcat.cti_stream(
            self.config.replay_ctis, "learn-replay"
        ):
            for pair in propose_hint_pairs(rng, entry_a.trace, entry_b.trace, 2):
                examples.append(
                    self.snowcat.graphs.label_ct(
                        entry_a, entry_b, list(pair), keep_result=False
                    )
                )
        return examples

    # -- candidate checkpoints ------------------------------------------------

    def candidate_path(self, name: str) -> str:
        return os.path.join(self.candidates_dir, f"{name}.npz")

    @staticmethod
    def _embedded_checksum(path: str) -> Optional[str]:
        """The content checksum :meth:`PICModel.save` embedded, or
        ``None`` for a missing/unreadable file. Raw ``.npz`` bytes are
        not deterministic (zip timestamps); the embedded checksum is."""
        if not os.path.exists(path):
            return None
        try:
            with np.load(path) as archive:
                return str(np.asarray(archive["__checksum__"]).ravel()[0])
        except Exception:
            return None

    # -- the cycle ------------------------------------------------------------

    def run_once(self) -> Optional[Dict[str, object]]:
        """Run (or resume) at most one cycle; ``None`` when not triggered."""
        cycles = self._cycles()
        if cycles:
            last = max(cycles)
            state = cycles[last]
            if self._terminal(state) is None:
                return self._run_cycle(last, state)
            last_total = int(state["cycle"]["total_labels"])
            next_cycle = last + 1
        else:
            last_total = 0
            next_cycle = 1
        fresh = self.store.count - last_total
        if fresh < self.config.min_labels:
            self._write_status(stage="idle", fresh_labels=fresh, cycle=None)
            return None
        return self._run_cycle(next_cycle, {})

    def _run_cycle(
        self, cycle: int, state: Dict[str, Dict[str, object]]
    ) -> Dict[str, object]:
        start = state.get("cycle")
        if start is None:
            base = self.registry.active_version
            if base is None:
                raise ServeError(
                    "continuous learning needs an active base model; "
                    "publish one first (repro learn publish)"
                )
            start = {
                "kind": "cycle",
                "cycle": cycle,
                "base": base,
                "candidate": f"ft-c{cycle}",
                "window": [
                    str(record["id"])
                    for record in self.store.window(self.config.window)
                ],
                "total_labels": self.store.count,
            }
            self.journal.append(start)
        base = str(start["base"])
        candidate_name = str(start["candidate"])
        self._write_status(stage="training", cycle=cycle, candidate=candidate_name)
        self._pause("cycle")

        by_id = {str(record["id"]): record for record in self.store.labels}
        window = [by_id[i] for i in start["window"] if i in by_id]
        examples, skipped = self._examples_from_labels(window)
        every = max(self.config.holdout_every, 1)
        holdout = examples[::every]
        train = [ex for idx, ex in enumerate(examples) if idx % every != 0]
        if not train:
            train, holdout = list(examples), list(examples)
        replay = self._replay_examples()

        path = self.candidate_path(candidate_name)
        trained = state.get("trained")
        checksum = self._embedded_checksum(path)
        if trained is not None and checksum == trained["checksum"]:
            candidate = PICModel.load(path, seed=self.config.seed)
        else:
            base_model = self.registry.load(base, seed=self.config.seed)
            result = fine_tune_with_replay(
                base_model,
                train,
                replay,
                holdout,
                config=TrainingConfig(
                    epochs=self.config.epochs,
                    learning_rate=self.config.learning_rate,
                    seed=rngmod.derive_seed(
                        self.config.seed, f"learn:{cycle}:{base}"
                    ),
                ),
                name=candidate_name,
            )
            candidate = result.model
            candidate.save(path)
            checksum = self._embedded_checksum(path)
            if trained is None:
                self.journal.append(
                    {
                        "kind": "trained",
                        "cycle": cycle,
                        "candidate": candidate_name,
                        "checksum": checksum,
                    }
                )
            elif checksum != trained["checksum"]:
                raise CheckpointError(
                    f"resumed cycle {cycle} retrained candidate "
                    f"{candidate_name!r} to checksum {checksum} but the "
                    f"journal pinned {trained['checksum']}: training "
                    "inputs changed under the journal"
                )
        self._pause("trained")

        gate = state.get("gate")
        if gate is None:
            active_model = self.registry.load(base, seed=self.config.seed)
            report = evaluate_candidate(
                candidate,
                active_model,
                holdout,
                base_version=base,
                candidate_name=candidate_name,
                min_gain=self.config.min_gain,
                golden=self.config.golden_gate,
            )
            gate = {
                "kind": "gate",
                "cycle": cycle,
                "passed": report.passed,
                "report": report.to_dict(),
            }
            self.journal.append(gate)
        self._pause("gate")

        if bool(gate["passed"]):
            record = publish_candidate(self.registry, candidate, candidate_name)
            self.journal.append(
                {
                    "kind": "promoted",
                    "cycle": cycle,
                    "candidate": candidate_name,
                    "version": record.version,
                }
            )
            outcome = "promoted"
            obs.point(
                "learn.promote", cycle=cycle, candidate=candidate_name, base=base
            )
        else:
            report_path = quarantine(self.root, candidate_name, dict(gate["report"]))
            self.journal.append(
                {
                    "kind": "quarantined",
                    "cycle": cycle,
                    "candidate": candidate_name,
                    "report": report_path,
                }
            )
            outcome = "quarantined"
        summary: Dict[str, object] = {
            "cycle": cycle,
            "outcome": outcome,
            "candidate": candidate_name,
            "base": base,
            "examples": len(examples),
            "holdout": len(holdout),
            "replay": len(replay),
            "skipped_labels": skipped,
            "candidate_ap": gate["report"]["candidate_ap"],
            "active_ap": gate["report"]["active_ap"],
        }
        self._write_status(stage=outcome, cycle=cycle, candidate=candidate_name)
        return summary

    def close(self) -> None:
        self.journal.close()
