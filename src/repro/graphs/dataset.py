"""Labeled CT-graph dataset construction (§5.1.1).

The paper collects CTIs (random STI pairs), explores interleavings per CTI,
executes each CT dynamically, and labels every graph vertex with whether
the block was covered in the concurrent run. Splits are made *by CTI* —
train/validation/evaluation CTIs are disjoint, with more interleavings
generated for evaluation CTIs — which this module mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro import rng as rngmod
from repro.analysis.cfg import KernelCFG, build_kernel_cfg
from repro.errors import DatasetError
from repro.execution.concurrent import ScheduleHint, run_concurrent
from repro.execution.pct import propose_hint_pairs
from repro.execution.trace import ConcurrentResult
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.generator import StiGenerator
from repro.graphs.ctgraph import (
    EDGE_INTER_DATAFLOW,
    CTGraph,
    CTIGraphTemplate,
    build_ct_template,
)
from repro.graphs.tokens import Vocabulary, build_vocabulary
from repro.kernel.code import Kernel

__all__ = ["CTExample", "DatasetSplits", "GraphDatasetBuilder"]


@dataclass
class CTExample:
    """One training/evaluation example: a CT graph and its coverage labels.

    Besides the per-node coverage labels, examples carry per-edge labels
    for the *inter-thread dataflow* edges: whether the potential write→read
    communication was actually realised during the concurrent execution —
    the additional prediction task §6 proposes for speeding up race
    reproduction further.
    """

    graph: CTGraph
    labels: np.ndarray  # float {0,1} per node: covered concurrently
    #: Row indices into ``graph.edges`` of the inter-thread dataflow edges.
    dataflow_edge_rows: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: float {0,1} per dataflow edge: communication realised concurrently.
    dataflow_labels: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.float64)
    )
    #: Dynamic-execution byproducts kept for analysis (races, bugs).
    result: Optional[ConcurrentResult] = None

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    def urb_labels(self) -> np.ndarray:
        return self.labels[self.graph.urb_mask()]

    def positive_fraction(self) -> float:
        if self.labels.size == 0:
            return 0.0
        return float(self.labels.mean())

    @property
    def num_dataflow_edges(self) -> int:
        return int(self.dataflow_edge_rows.shape[0])


@dataclass
class DatasetSplits:
    """CTI-disjoint train/validation/evaluation splits."""

    train: List[CTExample] = field(default_factory=list)
    validation: List[CTExample] = field(default_factory=list)
    evaluation: List[CTExample] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"train={len(self.train)} validation={len(self.validation)} "
            f"evaluation={len(self.evaluation)} graphs"
        )


def _label_dataflow_edges(
    graph: CTGraph, result: ConcurrentResult
) -> Tuple[np.ndarray, np.ndarray]:
    """Label inter-thread dataflow edges as realised/not realised.

    An edge (writer block of thread A → reader block of thread B) is
    realised when, in the concurrent trace, some read in B's block
    observed a value whose most recent writer was A executing the writer
    block.
    """
    if graph.num_edges == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    rows = np.flatnonzero(graph.edges[:, 2] == EDGE_INTER_DATAFLOW)
    if rows.size == 0:
        return rows.astype(np.int64), np.zeros(0, dtype=np.float64)

    # Realised communications from the serialized access stream.
    realized: set = set()
    last_writer: Dict[int, Tuple[int, int]] = {}  # addr -> (thread, block)
    for access in result.accesses:
        if access.is_write:
            last_writer[access.address] = (access.thread, access.block_id)
        else:
            writer = last_writer.get(access.address)
            if writer is not None and writer[0] != access.thread:
                realized.add(
                    (writer[0], writer[1], access.thread, access.block_id)
                )

    labels = np.zeros(rows.size, dtype=np.float64)
    for position, row in enumerate(rows):
        src, dst, _ = graph.edges[row]
        key = (
            int(graph.node_threads[src]),
            int(graph.node_blocks[src]),
            int(graph.node_threads[dst]),
            int(graph.node_blocks[dst]),
        )
        if key in realized:
            labels[position] = 1.0
    return rows.astype(np.int64), labels


class GraphDatasetBuilder:
    """End-to-end dataset pipeline for one kernel.

    Owns the fuzzing corpus, the whole-kernel CFG, and the vocabulary, and
    turns (CTI, hints) candidates into labeled :class:`CTExample` objects by
    actually executing them — the "graph dataset collection" stage (§4).
    """

    def __init__(
        self,
        kernel: Kernel,
        seed: int = 0,
        vocabulary: Optional[Vocabulary] = None,
        urb_hops: int = 1,
        shortcut_span: int = 4,
    ) -> None:
        self.kernel = kernel
        self.seed = seed
        self.cfg: KernelCFG = build_kernel_cfg(kernel)
        self.vocabulary = vocabulary or build_vocabulary(kernel)
        self.urb_hops = urb_hops
        self.shortcut_span = shortcut_span
        self.rng = rngmod.split(seed, f"dataset:{kernel.version}")
        self.generator = StiGenerator(kernel, seed=rngmod.derive_seed(seed, "fuzz"))
        self.corpus = Corpus(kernel)
        #: LRU-ish cache of CTI graph templates keyed by STI-id tuple.
        self._template_cache: Dict[Tuple[int, ...], CTIGraphTemplate] = {}
        self._template_cache_cap = 128

    # -- corpus ------------------------------------------------------------

    def grow_corpus(self, rounds: int, keep_all: bool = False) -> Corpus:
        """Fuzz for ``rounds`` iterations to populate the STI corpus."""
        with obs.span("corpus.grow", rounds=rounds) as span:
            self.corpus.grow(self.generator, rounds, keep_all=keep_all)
            span.set(size=len(self.corpus))
        obs.gauge("corpus.size", len(self.corpus))
        return self.corpus

    def require_corpus(self, minimum: int = 2) -> None:
        if len(self.corpus) < minimum:
            raise DatasetError(
                f"corpus has {len(self.corpus)} entries, need >= {minimum}; "
                f"call grow_corpus() first"
            )

    # -- single-example construction ------------------------------------------

    def template_for(self, *entries: CorpusEntry) -> CTIGraphTemplate:
        """Hint-independent graph template for one CTI, cached.

        Accepts one corpus entry per thread (two is the paper's
        configuration). Exploring one CTI scores many schedules; the
        template makes each additional schedule's graph construction
        O(#hints).
        """
        key = tuple(entry.sti.sti_id for entry in entries)
        template = self._template_cache.get(key)
        if template is None:
            template = build_ct_template(
                self.kernel,
                self.cfg,
                *(entry.trace for entry in entries),
                self.vocabulary,
                urb_hops=self.urb_hops,
                shortcut_span=self.shortcut_span,
            )
            if len(self._template_cache) >= self._template_cache_cap:
                oldest = next(iter(self._template_cache))
                del self._template_cache[oldest]
            self._template_cache[key] = template
        return template

    def graph_for(self, *args) -> CTGraph:
        """Graph for one (CTI, hints) candidate.

        Positional arguments are one corpus entry per thread followed by
        the hints sequence (the historical two-entry call is the N=2
        case).
        """
        *entries, hints = args
        return self.template_for(*entries).instantiate(self.kernel, hints)

    def label_ct(self, *args, keep_result: bool = True) -> CTExample:
        """Dynamically execute the CT and label its graph's vertices
        (coverage) and inter-thread dataflow edges (realised or not).

        Positional arguments are one corpus entry per thread followed by
        the hints sequence.
        """
        *entries, hints = args
        started = obs.tick()
        graph = self.graph_for(*entries, hints)
        result = run_concurrent(
            self.kernel,
            tuple(entry.sti.as_pairs() for entry in entries),
            hints=hints,
        )
        labels = np.zeros(graph.num_nodes, dtype=np.float64)
        for index in range(graph.num_nodes):
            thread = int(graph.node_threads[index])
            block_id = int(graph.node_blocks[index])
            if block_id in result.covered_blocks[thread]:
                labels[index] = 1.0
        dataflow_rows, dataflow_labels = _label_dataflow_edges(graph, result)
        obs.add("dataset.graphs_labeled")
        obs.tock("dataset.label_seconds", started)
        return CTExample(
            graph=graph,
            labels=labels,
            dataflow_edge_rows=dataflow_rows,
            dataflow_labels=dataflow_labels,
            result=result if keep_result else None,
        )

    # -- bulk construction ----------------------------------------------------

    def build_cti_pool(self, count: int) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        """Random CTIs: pairs of distinct corpus entries."""
        self.require_corpus()
        return self.corpus.sample_pairs(self.rng, count)

    def examples_for_cti(
        self,
        cti: Tuple[CorpusEntry, CorpusEntry],
        interleavings: int,
        keep_results: bool = False,
    ) -> List[CTExample]:
        """Generate and label ``interleavings`` schedules for one CTI."""
        entry_a, entry_b = cti
        proposals = propose_hint_pairs(
            self.rng, entry_a.trace, entry_b.trace, interleavings
        )
        return [
            self.label_ct(entry_a, entry_b, list(pair), keep_result=keep_results)
            for pair in proposals
        ]

    def build_splits(
        self,
        num_ctis: int,
        train_fraction: float = 0.5,
        validation_fraction: float = 0.1,
        train_interleavings: int = 8,
        evaluation_interleavings: int = 16,
    ) -> DatasetSplits:
        """Construct CTI-disjoint splits, paper style (§5.1.1).

        Training/validation CTIs get ``train_interleavings`` schedules each;
        evaluation CTIs get the (larger) ``evaluation_interleavings``.
        """
        with obs.span("dataset.build_splits", num_ctis=num_ctis) as span:
            ctis = self.build_cti_pool(num_ctis)
            if not ctis:
                raise DatasetError("no CTIs could be formed; corpus too small")
            num_train = max(1, int(len(ctis) * train_fraction))
            num_validation = max(1, int(len(ctis) * validation_fraction))
            splits = DatasetSplits()
            for position, cti in enumerate(ctis):
                if position < num_train:
                    bucket, interleavings = splits.train, train_interleavings
                elif position < num_train + num_validation:
                    bucket, interleavings = splits.validation, train_interleavings
                else:
                    bucket, interleavings = splits.evaluation, evaluation_interleavings
                bucket.extend(self.examples_for_cti(cti, interleavings))
            span.set(
                train=len(splits.train),
                validation=len(splits.validation),
                evaluation=len(splits.evaluation),
            )
        return splits
