"""Assembly tokenization and vocabulary for the encoder.

Blocks render to token streams via
:func:`repro.kernel.isa.tokenize_instruction` (numeric payloads elided,
§3.2). The vocabulary is built once per kernel family; because the ISA's
mnemonic/register token set is tiny and version-stable, a vocabulary built
on one kernel version transfers to the next — the property that makes the
paper's pre-train-once-then-fine-tune approach work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.kernel.code import BasicBlock, Kernel
from repro.kernel.isa import tokenize_instruction

__all__ = ["Vocabulary", "build_vocabulary", "block_token_ids"]

PAD_TOKEN = "[PAD]"
UNK_TOKEN = "[UNK]"
MASK_TOKEN = "[MASK]"
CLS_TOKEN = "[CLS]"
SPECIAL_TOKENS = (PAD_TOKEN, UNK_TOKEN, MASK_TOKEN, CLS_TOKEN)

#: Default cap on tokens per block fed to the encoder.
DEFAULT_MAX_TOKENS = 48


@dataclass
class Vocabulary:
    """Token-to-id mapping with the reserved special tokens first."""

    token_to_id: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for token in SPECIAL_TOKENS:
            if token not in self.token_to_id:
                self.token_to_id[token] = len(self.token_to_id)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD_TOKEN]

    @property
    def unk_id(self) -> int:
        return self.token_to_id[UNK_TOKEN]

    @property
    def mask_id(self) -> int:
        return self.token_to_id[MASK_TOKEN]

    @property
    def cls_id(self) -> int:
        return self.token_to_id[CLS_TOKEN]

    def __len__(self) -> int:
        return len(self.token_to_id)

    def add(self, token: str) -> int:
        if token not in self.token_to_id:
            self.token_to_id[token] = len(self.token_to_id)
        return self.token_to_id[token]

    def lookup(self, token: str) -> int:
        return self.token_to_id.get(token, self.unk_id)

    def encode(self, tokens: Sequence[str]) -> List[int]:
        return [self.lookup(token) for token in tokens]


def build_vocabulary(kernel: Kernel) -> Vocabulary:
    """Collect every token appearing in the kernel's assembly."""
    vocabulary = Vocabulary()
    for instruction in kernel.iter_instructions():
        for token in tokenize_instruction(instruction):
            vocabulary.add(token)
    return vocabulary


def block_tokens(block: BasicBlock) -> List[str]:
    """The raw token stream of one block, CLS-prefixed."""
    tokens = [CLS_TOKEN]
    for instruction in block.instructions:
        tokens.extend(tokenize_instruction(instruction))
    return tokens


def block_token_ids(
    vocabulary: Vocabulary,
    block: BasicBlock,
    max_tokens: int = DEFAULT_MAX_TOKENS,
) -> np.ndarray:
    """Fixed-length padded token-id vector for one block."""
    ids = vocabulary.encode(block_tokens(block))[:max_tokens]
    padded = np.full(max_tokens, vocabulary.pad_id, dtype=np.int64)
    padded[: len(ids)] = ids
    return padded
