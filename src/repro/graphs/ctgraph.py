"""CT graph construction (§3.1, Figure 4, Table 7).

Vertices are per-thread basic blocks: every block a thread covered
sequentially (SCB) or can reach within one control-flow hop (URB) becomes
one vertex ``(thread, block_id)``. Edges carry one of six types:

====  =======================  ======================================
 id    name                     source
====  =======================  ======================================
 0     SCB control flow         dynamic flow edges of the STI's run
 1     URB control flow         static frontier edges into URBs
 2     intra-thread dataflow    write→read block pairs within a trace
 3     inter-thread dataflow    potential write/read overlap across threads
 4     scheduling hint          the CT's proposed yield points
 5     shortcut                 densification: k-apart SCB flow vertices
====  =======================  ======================================

The scheduling-hint encoding follows the paper exactly: an edge from the
block containing hint ``A.x`` to the first block of thread B, and an edge
from the block containing ``B.y`` back to the block containing ``A.x``.
Hint endpoints are additionally exposed as per-node ``hint_flags`` so the
model can embed them — the same information as the edges, in node form.

Exploring one CTI means scoring hundreds to thousands of schedules whose
graphs differ *only* in the scheduling edges; :class:`CTIGraphTemplate`
builds everything else once and stamps out per-schedule graphs cheaply,
which is what makes the §5.2.2 inference/execution cost asymmetry real in
this reproduction too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.cfg import KernelCFG
from repro.analysis.urb import find_urbs, urb_frontier
from repro.execution.concurrent import ScheduleHint
from repro.execution.trace import SequentialTrace
from repro.graphs.tokens import DEFAULT_MAX_TOKENS, Vocabulary, block_token_ids
from repro.kernel.code import Kernel

__all__ = [
    "CTGraph",
    "CTIGraphTemplate",
    "build_ct_template",
    "build_ct_graph",
    "NODE_SCB",
    "NODE_URB",
    "NUM_NODE_TYPES",
    "EDGE_SCB_FLOW",
    "EDGE_URB_FLOW",
    "EDGE_INTRA_DATAFLOW",
    "EDGE_INTER_DATAFLOW",
    "EDGE_SCHEDULE",
    "EDGE_SHORTCUT",
    "NUM_EDGE_TYPES",
    "HINT_NONE",
    "HINT_SOURCE",
    "HINT_TARGET",
    "NUM_HINT_FLAGS",
]

NODE_SCB = 0
NODE_URB = 1
NUM_NODE_TYPES = 2

EDGE_SCB_FLOW = 0
EDGE_URB_FLOW = 1
EDGE_INTRA_DATAFLOW = 2
EDGE_INTER_DATAFLOW = 3
EDGE_SCHEDULE = 4
EDGE_SHORTCUT = 5
NUM_EDGE_TYPES = 6

HINT_NONE = 0
HINT_SOURCE = 1
HINT_TARGET = 2
NUM_HINT_FLAGS = 3

#: Distance (in SCB-flow hops) spanned by shortcut edges (§5.1.1).
DEFAULT_SHORTCUT_SPAN = 4


@dataclass
class CTGraph:
    """One concurrent-test graph, ready for the PIC model.

    Arrays are aligned by node index:

    - ``node_types``: SCB/URB per node
    - ``node_threads``: owning thread per node
    - ``node_blocks``: kernel block id per node
    - ``hint_flags``: HINT_* marker per node (scheduling-hint endpoints)
    - ``token_ids``: (num_nodes, max_tokens) encoder input
    - ``edges``: (num_edges, 3) rows of ``(src, dst, edge_type)``

    Graphs stamped from the same :class:`CTIGraphTemplate` share the
    ``token_ids`` array object, which the PIC model uses as an encoder
    cache key at inference time.
    """

    kernel_version: str
    cti_key: Tuple[int, ...]
    hints: Tuple[ScheduleHint, ...]
    node_types: np.ndarray
    node_threads: np.ndarray
    node_blocks: np.ndarray
    hint_flags: np.ndarray
    token_ids: np.ndarray
    edges: np.ndarray
    node_index: Dict[Tuple[int, int], int] = field(default_factory=dict)
    #: Shared per-template cache of prepared (sparse) base adjacency; the
    #: GNN memoises schedule-independent work here across instantiations.
    base_cache: Optional[Dict] = None

    @property
    def num_nodes(self) -> int:
        return int(self.node_types.shape[0])

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    def urb_mask(self) -> np.ndarray:
        return self.node_types == NODE_URB

    def scb_mask(self) -> np.ndarray:
        return self.node_types == NODE_SCB

    def nodes_of_block(self, block_id: int) -> List[int]:
        return [
            index
            for (thread, blk), index in self.node_index.items()
            if blk == block_id
        ]

    def edge_count_by_type(self) -> Dict[int, int]:
        counts: Dict[int, int] = {t: 0 for t in range(NUM_EDGE_TYPES)}
        for edge_type in self.edges[:, 2]:
            counts[int(edge_type)] += 1
        return counts


@dataclass
class CTIGraphTemplate:
    """Everything about a CTI's graph that does not depend on hints."""

    kernel_version: str
    cti_key: Tuple[int, ...]
    node_types: np.ndarray
    node_threads: np.ndarray
    node_blocks: np.ndarray
    token_ids: np.ndarray
    #: Edges of every type except EDGE_SCHEDULE.
    base_edges: np.ndarray
    node_index: Dict[Tuple[int, int], int]
    #: First covered block per thread (hint-edge resume targets).
    first_blocks: Tuple[Optional[int], ...]
    #: Lazily filled by the GNN with prepared base adjacency.
    sparse_cache: Dict = field(default_factory=dict)

    @property
    def num_nodes(self) -> int:
        return int(self.node_types.shape[0])

    def instantiate(self, kernel: Kernel, hints: Sequence[ScheduleHint]) -> CTGraph:
        """Stamp a per-schedule graph: base edges + this CT's hint edges."""
        schedule_rows, hint_flags = self._schedule_parts(kernel, hints)
        if schedule_rows:
            edges = np.vstack(
                [self.base_edges, np.asarray(schedule_rows, dtype=np.int64)]
            )
        else:
            edges = self.base_edges
        return CTGraph(
            kernel_version=self.kernel_version,
            cti_key=self.cti_key,
            hints=tuple(hints),
            node_types=self.node_types,
            node_threads=self.node_threads,
            node_blocks=self.node_blocks,
            hint_flags=hint_flags,
            token_ids=self.token_ids,
            edges=edges,
            node_index=self.node_index,
            base_cache=self.sparse_cache,
        )

    def _schedule_parts(
        self, kernel: Kernel, hints: Sequence[ScheduleHint]
    ) -> Tuple[List[Tuple[int, int, int]], np.ndarray]:
        """Scheduling-hint edges and node flags (§3.1 encoding).

        For hints ``A.x`` then ``B.y``: edge(block(A.x) → first block of B)
        and edge(block(B.y) → block(A.x)). Generalised to any alternating
        hint sequence: each hint's block points at the next thread's resume
        block (its first block for a fresh thread, the previous hint's
        block otherwise).
        """
        hint_flags = np.zeros(self.num_nodes, dtype=np.int64)
        rows: List[Tuple[int, int, int]] = []
        previous_hint_key: Optional[Tuple[int, int]] = None
        for hint in hints:
            block_id = kernel.block_of_instruction(hint.iid)
            src_key = (hint.thread, block_id)
            src_index = self.node_index.get(src_key)
            if src_index is None:
                continue  # hint inside a block the trace never reached
            hint_flags[src_index] = HINT_SOURCE
            # The next thread in the scheduler's round-robin order (the
            # other thread, in the two-thread configuration).
            target_thread = (hint.thread + 1) % len(self.first_blocks)
            if (
                previous_hint_key is not None
                and previous_hint_key[0] == target_thread
            ):
                dst_key = previous_hint_key
            else:
                first = self.first_blocks[target_thread]
                if first is None:
                    previous_hint_key = src_key
                    continue
                dst_key = (target_thread, first)
            dst_index = self.node_index.get(dst_key)
            if dst_index is not None:
                rows.append((src_index, dst_index, EDGE_SCHEDULE))
                if hint_flags[dst_index] == HINT_NONE:
                    hint_flags[dst_index] = HINT_TARGET
            previous_hint_key = src_key
        return rows, hint_flags


def build_ct_template(
    kernel: Kernel,
    cfg: KernelCFG,
    *args,
    urb_hops: int = 1,
    shortcut_span: int = DEFAULT_SHORTCUT_SPAN,
    max_tokens: int = DEFAULT_MAX_TOKENS,
) -> CTIGraphTemplate:
    """Build the hint-independent part of a CTI's graph.

    Positional arguments after ``cfg`` are one :class:`SequentialTrace`
    per thread followed by the :class:`Vocabulary` — the historical
    two-thread call ``build_ct_template(kernel, cfg, trace_a, trace_b,
    vocabulary)`` is the N=2 case.
    """
    *trace_args, vocabulary = args
    traces = tuple(trace_args)
    if not traces:
        raise ValueError("build_ct_template needs at least one trace")

    # -- vertices ----------------------------------------------------------
    node_index: Dict[Tuple[int, int], int] = {}
    node_types: List[int] = []
    node_threads: List[int] = []
    node_blocks: List[int] = []

    def add_node(thread: int, block_id: int, node_type: int) -> int:
        key = (thread, block_id)
        existing = node_index.get(key)
        if existing is not None:
            return existing
        index = len(node_types)
        node_index[key] = index
        node_types.append(node_type)
        node_threads.append(thread)
        node_blocks.append(block_id)
        return index

    for thread, trace in enumerate(traces):
        for block_id in trace.block_sequence:
            add_node(thread, block_id, NODE_SCB)
        for block_id in sorted(find_urbs(cfg, trace.covered_blocks, hops=urb_hops)):
            add_node(thread, block_id, NODE_URB)

    # -- edges -------------------------------------------------------------
    edge_rows: List[Tuple[int, int, int]] = []
    edge_seen: Set[Tuple[int, int, int]] = set()

    def add_edge(src: int, dst: int, edge_type: int) -> None:
        row = (src, dst, edge_type)
        if row not in edge_seen:
            edge_seen.add(row)
            edge_rows.append(row)

    for thread, trace in enumerate(traces):
        # SCB control flow: the dynamic path, deduplicated.
        for src_block, dst_block in trace.flow_edges:
            add_edge(
                node_index[(thread, src_block)],
                node_index[(thread, dst_block)],
                EDGE_SCB_FLOW,
            )
        # URB control flow: static frontier into this thread's URBs.
        for src_block, dst_block in urb_frontier(
            cfg, trace.covered_blocks, hops=urb_hops
        ):
            src_key = (thread, src_block)
            dst_key = (thread, dst_block)
            if src_key in node_index and dst_key in node_index:
                add_edge(node_index[src_key], node_index[dst_key], EDGE_URB_FLOW)
        # Intra-thread dataflow.
        for src_block, dst_block in trace.dataflow_edges():
            src_key = (thread, src_block)
            dst_key = (thread, dst_block)
            if src_key in node_index and dst_key in node_index:
                add_edge(
                    node_index[src_key], node_index[dst_key], EDGE_INTRA_DATAFLOW
                )

    _add_inter_thread_dataflow(traces, node_index, add_edge)
    _add_shortcut_edges(traces, node_index, add_edge, shortcut_span)

    # -- features -----------------------------------------------------------
    token_matrix = np.zeros((len(node_blocks), max_tokens), dtype=np.int64)
    token_cache: Dict[int, np.ndarray] = {}
    for index, block_id in enumerate(node_blocks):
        cached = token_cache.get(block_id)
        if cached is None:
            cached = block_token_ids(vocabulary, kernel.blocks[block_id], max_tokens)
            token_cache[block_id] = cached
        token_matrix[index] = cached

    base_edges = (
        np.asarray(edge_rows, dtype=np.int64)
        if edge_rows
        else np.zeros((0, 3), dtype=np.int64)
    )
    return CTIGraphTemplate(
        kernel_version=kernel.version,
        cti_key=tuple(trace.sti_id for trace in traces),
        node_types=np.asarray(node_types, dtype=np.int64),
        node_threads=np.asarray(node_threads, dtype=np.int64),
        node_blocks=np.asarray(node_blocks, dtype=np.int64),
        token_ids=token_matrix,
        base_edges=base_edges,
        node_index=node_index,
        first_blocks=tuple(
            trace.block_sequence[0] if trace.block_sequence else None
            for trace in traces
        ),
    )


def build_ct_graph(
    kernel: Kernel,
    cfg: KernelCFG,
    *args,
    urb_hops: int = 1,
    shortcut_span: int = DEFAULT_SHORTCUT_SPAN,
    max_tokens: int = DEFAULT_MAX_TOKENS,
) -> CTGraph:
    """One-shot CT graph assembly (template + instantiate).

    Positional arguments after ``cfg`` are one trace per thread, then the
    hints sequence, then the :class:`Vocabulary` (matching the historical
    two-thread signature at N=2).
    """
    *trace_args, hints, vocabulary = args
    template = build_ct_template(
        kernel,
        cfg,
        *trace_args,
        vocabulary,
        urb_hops=urb_hops,
        shortcut_span=shortcut_span,
        max_tokens=max_tokens,
    )
    return template.instantiate(kernel, hints)


def _add_inter_thread_dataflow(traces, node_index, add_edge) -> None:
    """Potential inter-thread dataflow: writes in one thread paired with
    reads of an overlapping address in another (§3.1, edge type 4).

    Ordered writer/reader pairs are visited writer-major, so the
    two-thread order ``(0, 1), (1, 0)`` — and hence edge-row order — is
    unchanged."""
    num_threads = len(traces)
    for writer_thread in range(num_threads):
        writes: Dict[int, Set[int]] = {}
        for access in traces[writer_thread].accesses:
            if access.is_write:
                writes.setdefault(access.address, set()).add(access.block_id)
        for reader_thread in range(num_threads):
            if reader_thread == writer_thread:
                continue
            for access in traces[reader_thread].accesses:
                if access.is_write:
                    continue
                for writer_block in writes.get(access.address, ()):
                    src_key = (writer_thread, writer_block)
                    dst_key = (reader_thread, access.block_id)
                    if src_key in node_index and dst_key in node_index:
                        add_edge(
                            node_index[src_key],
                            node_index[dst_key],
                            EDGE_INTER_DATAFLOW,
                        )


def _add_shortcut_edges(traces, node_index, add_edge, span: int) -> None:
    """Shortcut densification: connect SCB-path vertices ``span`` apart."""
    if span <= 1:
        return
    for thread, trace in enumerate(traces):
        sequence = trace.block_sequence
        for i in range(len(sequence) - span):
            src_key = (thread, sequence[i])
            dst_key = (thread, sequence[i + span])
            add_edge(node_index[src_key], node_index[dst_key], EDGE_SHORTCUT)
