"""Concurrent-test graph representation and dataset construction (§3.1).

A CT (two STIs + scheduling hints) becomes a graph whose vertices are
per-thread kernel basic blocks (SCBs and URBs) and whose edges are the five
paper types — SCB control flow, URB control flow, intra-thread dataflow,
inter-thread potential dataflow, scheduling hints — plus shortcut
densification edges (§5.1.1).
"""

from repro.graphs.tokens import Vocabulary, build_vocabulary, block_token_ids
from repro.graphs.ctgraph import (
    EDGE_INTER_DATAFLOW,
    EDGE_INTRA_DATAFLOW,
    EDGE_SCB_FLOW,
    EDGE_SCHEDULE,
    EDGE_SHORTCUT,
    EDGE_URB_FLOW,
    HINT_NONE,
    HINT_SOURCE,
    HINT_TARGET,
    NODE_SCB,
    NODE_URB,
    NUM_EDGE_TYPES,
    NUM_HINT_FLAGS,
    NUM_NODE_TYPES,
    CTGraph,
    CTIGraphTemplate,
    build_ct_graph,
    build_ct_template,
)
from repro.graphs.dataset import CTExample, DatasetSplits, GraphDatasetBuilder

__all__ = [
    "Vocabulary",
    "build_vocabulary",
    "block_token_ids",
    "CTGraph",
    "CTIGraphTemplate",
    "build_ct_graph",
    "build_ct_template",
    "NODE_SCB",
    "NODE_URB",
    "NUM_NODE_TYPES",
    "HINT_NONE",
    "HINT_SOURCE",
    "HINT_TARGET",
    "NUM_HINT_FLAGS",
    "EDGE_SCB_FLOW",
    "EDGE_URB_FLOW",
    "EDGE_INTRA_DATAFLOW",
    "EDGE_INTER_DATAFLOW",
    "EDGE_SCHEDULE",
    "EDGE_SHORTCUT",
    "NUM_EDGE_TYPES",
    "CTExample",
    "DatasetSplits",
    "GraphDatasetBuilder",
]
