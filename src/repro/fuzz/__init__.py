"""Sequential-test-input fuzzing: the Syzkaller stand-in.

Generates and mutates STIs (sequences of syscalls with arguments), keeps a
coverage-guided corpus, and records the single-thread traces that prime
the concurrent-test generator — step 1 and 2 of the paper's workflow (§3).
"""

from repro.fuzz.sti import STI, SyscallCall
from repro.fuzz.generator import FuzzerConfig, StiGenerator
from repro.fuzz.corpus import Corpus, CorpusEntry

__all__ = [
    "STI",
    "SyscallCall",
    "FuzzerConfig",
    "StiGenerator",
    "Corpus",
    "CorpusEntry",
]
