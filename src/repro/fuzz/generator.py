"""STI generation and mutation.

A deliberately faithful miniature of Syzkaller's loop: random generation
from the syscall table, mutation of corpus entries (argument tweaks, call
insertion/deletion/reordering), and a bias toward in-range argument values
with occasional out-of-range probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro import rng as rngmod
from repro.fuzz.sti import STI, SyscallCall
from repro.kernel.code import Kernel
from repro.kernel.syscalls import SyscallSpec

__all__ = ["FuzzerConfig", "StiGenerator"]


@dataclass(frozen=True)
class FuzzerConfig:
    """Knobs of the STI generator."""

    min_calls: int = 1
    max_calls: int = 4
    #: Probability an argument is sampled outside its declared range.
    out_of_range_prob: float = 0.1
    #: Probability each mutation step tweaks an argument (vs structure).
    arg_mutation_prob: float = 0.6
    #: Number of mutation operations applied per mutate() call.
    mutations_per_call: int = 2


class StiGenerator:
    """Generates and mutates STIs for one kernel."""

    def __init__(
        self,
        kernel: Kernel,
        seed: int = 0,
        config: Optional[FuzzerConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.config = config or FuzzerConfig()
        self.rng = rngmod.split(seed, f"fuzz:{kernel.version}")
        self._names = kernel.syscall_names()
        self._next_id = 0

    # -- generation --------------------------------------------------------

    def _fresh_id(self) -> int:
        sti_id = self._next_id
        self._next_id += 1
        return sti_id

    def _sample_args(self, spec: SyscallSpec) -> List[int]:
        args = []
        for low, high in spec.arg_ranges:
            if self.rng.random() < self.config.out_of_range_prob:
                args.append(int(self.rng.integers(high + 1, high + 16)))
            else:
                args.append(int(self.rng.integers(low, high + 1)))
        return args

    def _sample_call(self) -> SyscallCall:
        name = str(self.rng.choice(self._names))
        spec = self.kernel.syscalls[name]
        return SyscallCall(name=name, args=tuple(self._sample_args(spec)))

    def generate(self) -> STI:
        """Generate a fresh random STI."""
        cfg = self.config
        count = int(self.rng.integers(cfg.min_calls, cfg.max_calls + 1))
        calls = tuple(self._sample_call() for _ in range(count))
        return STI(sti_id=self._fresh_id(), calls=calls)

    def generate_many(self, count: int) -> List[STI]:
        return [self.generate() for _ in range(count)]

    # -- mutation ------------------------------------------------------------

    def mutate(self, parent: STI) -> STI:
        """Produce a mutated child of ``parent`` (parent is unchanged)."""
        calls = list(parent.calls)
        for _ in range(self.config.mutations_per_call):
            if not calls:
                calls.append(self._sample_call())
                continue
            if self.rng.random() < self.config.arg_mutation_prob:
                self._mutate_args(calls)
            else:
                self._mutate_structure(calls)
        if not calls:
            calls.append(self._sample_call())
        return STI(sti_id=self._fresh_id(), calls=tuple(calls))

    def _mutate_args(self, calls: List[SyscallCall]) -> None:
        index = int(self.rng.integers(len(calls)))
        call = calls[index]
        spec = self.kernel.syscalls[call.name]
        if not call.args:
            return
        args = list(call.args)
        arg_index = int(self.rng.integers(len(args)))
        low, high = (
            spec.arg_ranges[arg_index] if arg_index < len(spec.arg_ranges) else (0, 7)
        )
        if self.rng.random() < 0.5:
            args[arg_index] = int(self.rng.integers(low, high + 1))
        else:
            args[arg_index] += int(self.rng.integers(-2, 3))
        calls[index] = SyscallCall(name=call.name, args=tuple(args))

    def _mutate_structure(self, calls: List[SyscallCall]) -> None:
        roll = self.rng.random()
        if roll < 0.4 and len(calls) < self.config.max_calls:
            position = int(self.rng.integers(len(calls) + 1))
            calls.insert(position, self._sample_call())
        elif roll < 0.7 and len(calls) > self.config.min_calls:
            calls.pop(int(self.rng.integers(len(calls))))
        elif len(calls) >= 2:
            i, j = self.rng.choice(len(calls), size=2, replace=False)
            calls[int(i)], calls[int(j)] = calls[int(j)], calls[int(i)]

    def targeted(self, syscall_name: str, args: Sequence[int]) -> STI:
        """Build a single-call STI with explicit arguments (for tests and
        directed experiments like Razzer's race reproduction)."""
        spec = self.kernel.syscalls[syscall_name]
        return STI(
            sti_id=self._fresh_id(),
            calls=(SyscallCall(name=syscall_name, args=tuple(spec.clamp_args(list(args)))),),
        )
