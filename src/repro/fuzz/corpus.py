"""Coverage-guided fuzzing corpus.

Stores STIs together with their sequential traces, keeps only inputs that
increased cumulative block coverage (Syzkaller's feedback rule), and serves
as the STI source for concurrent-test generation: every entry carries the
trace the CT graph builder needs (SCBs, flow edges, memory footprint,
instruction stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.execution.sequential import run_sequential
from repro.execution.trace import SequentialTrace
from repro.fuzz.generator import StiGenerator
from repro.fuzz.sti import STI
from repro.kernel.code import Kernel

__all__ = ["CorpusEntry", "Corpus"]


@dataclass
class CorpusEntry:
    """An STI plus everything recorded from its single-thread run."""

    sti: STI
    trace: SequentialTrace

    @property
    def covered_blocks(self) -> Set[int]:
        return self.trace.covered_blocks


class Corpus:
    """A coverage-guided collection of executed STIs."""

    def __init__(self, kernel: Kernel) -> None:
        self.kernel = kernel
        self.entries: List[CorpusEntry] = []
        self.cumulative_coverage: Set[int] = set()
        self.executions = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries)

    def execute_and_consider(self, sti: STI, keep_all: bool = False) -> Optional[CorpusEntry]:
        """Run ``sti`` sequentially; keep it if it adds coverage.

        Returns the new entry, or ``None`` when the input was discarded.
        ``keep_all=True`` bypasses the feedback rule (used when a fixed
        population of STIs is wanted, e.g. for dataset construction).
        """
        trace = run_sequential(self.kernel, sti.as_pairs(), sti_id=sti.sti_id)
        self.executions += 1
        new_blocks = trace.covered_blocks - self.cumulative_coverage
        if not new_blocks and not keep_all:
            return None
        self.cumulative_coverage |= trace.covered_blocks
        entry = CorpusEntry(sti=sti, trace=trace)
        self.entries.append(entry)
        return entry

    def grow(
        self,
        generator: StiGenerator,
        rounds: int,
        mutation_bias: float = 0.5,
        keep_all: bool = False,
    ) -> int:
        """Run ``rounds`` fuzzing iterations; returns entries added.

        Each round either mutates a random corpus entry or generates a
        fresh STI, then applies the coverage feedback rule.
        """
        added = 0
        for _ in range(rounds):
            if self.entries and generator.rng.random() < mutation_bias:
                parent = self.entries[int(generator.rng.integers(len(self.entries)))]
                candidate = generator.mutate(parent.sti)
            else:
                candidate = generator.generate()
            if self.execute_and_consider(candidate, keep_all=keep_all) is not None:
                added += 1
        return added

    def sample_pairs(
        self, rng: np.random.Generator, count: int
    ) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        """Random CTI candidates: pairs of distinct corpus entries."""
        if len(self.entries) < 2:
            return []
        pairs = []
        for _ in range(count):
            i, j = rng.choice(len(self.entries), size=2, replace=False)
            pairs.append((self.entries[int(i)], self.entries[int(j)]))
        return pairs

    def sample_groups(
        self, rng: np.random.Generator, count: int, size: int
    ) -> List[Tuple[CorpusEntry, ...]]:
        """Random N-thread CTI candidates: ``size`` distinct entries each.

        The two-thread stream stays on :meth:`sample_pairs` (identical
        RNG consumption to the historical path); this is the N>2
        generalisation for ``repro campaign --threads N``.
        """
        if len(self.entries) < size:
            return []
        groups = []
        for _ in range(count):
            chosen = rng.choice(len(self.entries), size=size, replace=False)
            groups.append(
                tuple(self.entries[int(index)] for index in chosen)
            )
        return groups

    def coverage_fraction(self) -> float:
        """Cumulative sequential block coverage over the whole kernel."""
        if self.kernel.num_blocks == 0:
            return 0.0
        return len(self.cumulative_coverage) / self.kernel.num_blocks
