"""Sequential test inputs (STIs).

An STI is what one test thread executes: an ordered list of syscall
invocations with concrete integer arguments (§1: "a pair or more sequential
test inputs that concurrently invoke sequences of system calls").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

__all__ = ["SyscallCall", "STI"]


@dataclass(frozen=True)
class SyscallCall:
    """One syscall invocation."""

    name: str
    args: Tuple[int, ...] = ()

    def as_pair(self) -> Tuple[str, List[int]]:
        return (self.name, list(self.args))

    def render(self) -> str:
        rendered_args = ", ".join(str(a) for a in self.args)
        return f"{self.name}({rendered_args})"


@dataclass(frozen=True)
class STI:
    """A sequential test input: an immutable syscall sequence."""

    sti_id: int
    calls: Tuple[SyscallCall, ...]

    def as_pairs(self) -> List[Tuple[str, List[int]]]:
        """The executor-facing representation."""
        return [call.as_pair() for call in self.calls]

    def render(self) -> str:
        return "; ".join(call.render() for call in self.calls)

    def __len__(self) -> int:
        return len(self.calls)

    @property
    def syscall_names(self) -> Tuple[str, ...]:
        return tuple(call.name for call in self.calls)
