"""The assembly encoder: the RoBERTa stand-in (§3.2).

Embeds a basic block's (numeric-elided) assembly token stream into a fixed
vector. Architecture: learned token embeddings, masked mean pooling over
the block's tokens, and a projection layer. Pre-training uses a masked-
token objective — mask a token, predict its identity from the pooled
context — the same masked-language-model idea the paper applies, sized for
the tiny synthetic ISA vocabulary.

The pre-trained token table is shared into the PIC model and fine-tuned
together with the GNN, exactly as the paper fine-tunes θ_BERT during PIC
training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import rng as rngmod
from repro.graphs.tokens import Vocabulary, block_token_ids
from repro.kernel.code import Kernel
from repro.ml.autograd import (
    Parameter,
    Tensor,
    gather_rows,
    masked_mean,
    matmul,
    relu,
    softmax_cross_entropy,
)
from repro.ml.optim import Adam

__all__ = ["EncoderConfig", "AsmEncoder", "pretrain_encoder"]


@dataclass(frozen=True)
class EncoderConfig:
    """Shape of the assembly encoder."""

    vocab_size: int
    token_dim: int = 32
    output_dim: int = 48


class AsmEncoder:
    """Token-embedding + pooling + projection block encoder."""

    def __init__(self, config: EncoderConfig, seed: int = 0) -> None:
        self.config = config
        rng = rngmod.split(seed, "encoder-init")
        scale_token = 1.0 / np.sqrt(config.token_dim)
        scale_proj = 1.0 / np.sqrt(config.token_dim)
        self.token_table = Parameter(
            rng.normal(0.0, scale_token, size=(config.vocab_size, config.token_dim)),
            name="encoder.token_table",
        )
        self.w_proj = Parameter(
            rng.normal(0.0, scale_proj, size=(config.token_dim, config.output_dim)),
            name="encoder.w_proj",
        )
        self.b_proj = Parameter(
            np.zeros(config.output_dim), name="encoder.b_proj"
        )

    def parameters(self) -> List[Parameter]:
        return [self.token_table, self.w_proj, self.b_proj]

    def pooled(self, token_ids: np.ndarray, pad_id: int) -> Tensor:
        """Masked mean of token embeddings: (N, T) ids → (N, token_dim)."""
        embedded = gather_rows(self.token_table, token_ids)  # (N, T, D)
        mask = token_ids != pad_id
        return masked_mean(embedded, mask)

    def encode(self, token_ids: np.ndarray, pad_id: int) -> Tensor:
        """(N, T) token ids → (N, output_dim) block embeddings."""
        pooled = self.pooled(token_ids, pad_id)
        return relu(matmul(pooled, self.w_proj) + self.b_proj)


@dataclass
class PretrainResult:
    """Loss trajectory of the masked-token pre-training."""

    losses: List[float]

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def improved(self) -> bool:
        return len(self.losses) >= 2 and self.losses[-1] < self.losses[0]


def pretrain_encoder(
    encoder: AsmEncoder,
    kernel: Kernel,
    vocabulary: Vocabulary,
    epochs: int = 3,
    batch_size: int = 64,
    learning_rate: float = 5e-3,
    seed: int = 0,
    max_tokens: int = 48,
) -> PretrainResult:
    """Masked-token pre-training over all kernel assembly (§3.2).

    Per example: one random non-pad token of a block is replaced by [MASK];
    the model predicts its identity from the pooled context embedding
    through a throwaway output head (discarded after pre-training, like
    BERT's MLM head).
    """
    rng = rngmod.split(seed, "encoder-pretrain")
    token_rows = np.stack(
        [
            block_token_ids(vocabulary, block, max_tokens)
            for block in kernel.blocks.values()
            if len(block.instructions) > 0
        ]
    )
    head = Parameter(
        rng.normal(0.0, 0.1, size=(encoder.config.token_dim, encoder.config.vocab_size)),
        name="encoder.mlm_head",
    )
    optimizer = Adam(
        encoder.parameters()[:1] + [head], learning_rate=learning_rate
    )
    pad_id = vocabulary.pad_id
    mask_id = vocabulary.mask_id
    losses: List[float] = []
    for _ in range(epochs):
        order = rng.permutation(len(token_rows))
        epoch_losses = []
        for start in range(0, len(order), batch_size):
            batch = token_rows[order[start : start + batch_size]].copy()
            targets = np.zeros(batch.shape[0], dtype=np.int64)
            for row in range(batch.shape[0]):
                valid = np.flatnonzero(batch[row] != pad_id)
                position = int(valid[rng.integers(len(valid))])
                targets[row] = batch[row, position]
                batch[row, position] = mask_id
            optimizer.zero_grad()
            pooled = encoder.pooled(batch, pad_id)
            logits = matmul(pooled, head)
            loss = softmax_cross_entropy(logits, targets)
            loss.backward()
            optimizer.step()
            epoch_losses.append(loss.item())
        losses.append(float(np.mean(epoch_losses)))
    return PretrainResult(losses=losses)
