"""Relational graph convolution over CT graphs.

The paper's GNN module is a GCN (PyTorch Geometric) whose edge-type
embeddings let message passing distinguish the five CT edge types. Here
each edge type gets its own weight matrix per layer (an R-GCN), which
subsumes edge-type embeddings, and messages flow in both edge directions
with separate weights — coverage of a block depends both on what reaches it
and on what it reaches.

Propagation uses normalised sparse adjacency matrices (1/in-degree per
type). For graphs stamped from one :class:`CTIGraphTemplate`, the base
(schedule-independent) adjacency is built once and shared via the graph's
``base_cache``; only the two scheduling-hint edges are prepared per
schedule. This is what lets one CTI's hundreds of candidate schedules be
scored at a small fraction of an execution's cost (§5.2.2).

Deeper stacks see farther in the graph; the paper observes deeper GNNs
predict concurrent coverage better (§5.1.2), which ``num_layers`` exposes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

try:  # scipy's C kernel directly: lets the hot loop reuse one output buffer
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover - all supported scipy versions have it
    _sptools = None

from repro import rng as rngmod
from repro.graphs.ctgraph import CTGraph, EDGE_SCHEDULE, NUM_EDGE_TYPES
from repro.ml.autograd import Parameter, Tensor, matmul, relu, spmm

__all__ = [
    "GNNConfig",
    "RelationalGCN",
    "prepare_adjacency",
    "prepare_adjacency_batch",
]


@dataclass(frozen=True)
class GNNConfig:
    """Shape of the GNN stack."""

    hidden_dim: int = 48
    num_layers: int = 4
    num_edge_types: int = NUM_EDGE_TYPES
    bidirectional: bool = True


def _freeze_csr(matrix: sp.csr_matrix) -> sp.csr_matrix:
    """Mark a CSR matrix's backing arrays read-only.

    Everything published into a template's shared ``base_cache`` is read
    concurrently by server worker threads; freezing at publish time turns
    any accidental in-place mutation into an immediate ``ValueError``
    instead of silent cross-thread corruption.
    """
    matrix.data.setflags(write=False)
    matrix.indices.setflags(write=False)
    matrix.indptr.setflags(write=False)
    return matrix


def _freeze_pair(
    pair: Tuple[sp.csr_matrix, sp.csr_matrix]
) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    _freeze_csr(pair[0])
    _freeze_csr(pair[1])
    return pair


def _normalized_pair(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """(forward, reverse) adjacency with 1/in-degree normalisation.

    forward[d, s] = 1/in_deg(d) for each edge s→d; reverse likewise on the
    transposed edge set.
    """
    ones = np.ones(len(src))
    in_degree = np.bincount(dst, minlength=num_nodes).astype(np.float64)
    out_degree = np.bincount(src, minlength=num_nodes).astype(np.float64)
    forward = sp.csr_matrix(
        (1.0 / np.maximum(in_degree[dst], 1.0), (dst, src)),
        shape=(num_nodes, num_nodes),
    )
    reverse = sp.csr_matrix(
        (1.0 / np.maximum(out_degree[src], 1.0), (src, dst)),
        shape=(num_nodes, num_nodes),
    )
    return forward, reverse


def prepare_adjacency(
    graph: CTGraph,
) -> Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]]:
    """Per-edge-type normalised adjacency, with template-level caching.

    Non-schedule types are identical for every schedule of a CTI, so they
    live in the template-shared ``base_cache``; the schedule type is built
    per graph (it is at most a handful of edges).
    """
    cached = getattr(graph, "_adjacency", None)
    if cached is not None:
        return cached
    n = graph.num_nodes
    result: Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]] = {}
    base_cache = graph.base_cache if graph.base_cache is not None else {}
    types_present = np.unique(graph.edges[:, 2]) if graph.num_edges else []
    for edge_type in types_present:
        edge_type = int(edge_type)
        if edge_type != EDGE_SCHEDULE and edge_type in base_cache:
            result[edge_type] = base_cache[edge_type]
            continue
        rows = graph.edges[graph.edges[:, 2] == edge_type]
        pair = _normalized_pair(
            rows[:, 0].astype(np.int64), rows[:, 1].astype(np.int64), n
        )
        result[edge_type] = pair
        if edge_type != EDGE_SCHEDULE:
            base_cache[edge_type] = _freeze_pair(pair)
    graph._adjacency = result  # per-graph memo
    return result


def prepare_adjacency_batch(
    graphs: Sequence[CTGraph],
) -> Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]]:
    """Block-diagonal per-edge-type adjacency of a disjoint-union batch.

    Message passing never crosses components, so normalising over the
    concatenated (offset-shifted) edge set computes exactly the per-graph
    propagation: in/out degrees never mix across components, and each CSR
    row holds the same (column, value) entries as the per-graph matrix.

    Built directly from the merged edge arrays — one sparse construction
    per edge type for the whole batch instead of per graph. When every
    graph comes from one :class:`CTIGraphTemplate` (shared ``base_cache``,
    the candidate-pool case), the merged schedule-independent matrices are
    cached in the template keyed by batch shape, so scoring a pool builds
    them once and only the handful of scheduling-hint edges are prepared
    per batch.
    """
    if len(graphs) == 1:
        return prepare_adjacency(graphs[0])
    offsets = np.cumsum([0] + [graph.num_nodes for graph in graphs])
    n_total = int(offsets[-1])
    shifted = [
        graph.edges + np.array([offset, offset, 0], dtype=graph.edges.dtype)
        for offset, graph in zip(offsets[:-1], graphs)
        if graph.num_edges
    ]
    all_edges = (
        np.vstack(shifted) if shifted else np.zeros((0, 3), dtype=np.int64)
    )

    def merged_pair(rows: np.ndarray) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
        return _normalized_pair(
            rows[:, 0].astype(np.int64), rows[:, 1].astype(np.int64), n_total
        )

    result: Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]] = {}
    base_cache = graphs[0].base_cache
    shared_template = base_cache is not None and all(
        graph.base_cache is base_cache for graph in graphs
    )
    cache_key = ("__batched__", len(graphs), n_total)
    base = base_cache.get(cache_key) if shared_template else None
    if base is None:
        base = {}
        for edge_type in np.unique(all_edges[:, 2]) if len(all_edges) else []:
            edge_type = int(edge_type)
            if edge_type == EDGE_SCHEDULE:
                continue
            base[edge_type] = merged_pair(
                all_edges[all_edges[:, 2] == edge_type]
            )
        if shared_template:
            for pair in base.values():
                _freeze_pair(pair)
            base_cache[cache_key] = base
    result.update(base)
    schedule_rows = all_edges[all_edges[:, 2] == EDGE_SCHEDULE]
    if len(schedule_rows):
        result[EDGE_SCHEDULE] = merged_pair(schedule_rows)
    return result


def _compressed_columns(
    matrix: sp.csr_matrix,
) -> Tuple[np.ndarray, sp.csr_matrix]:
    """(nonzero column indices, matrix restricted to those columns).

    ``A @ (h @ W)`` only reads ``h @ W`` at columns where ``A`` is
    nonzero, so the per-type weight GEMM can run on just those rows of
    ``h`` — in CT graphs most nodes lack edges of any given type, which
    removes over half of the batched GEMM work exactly. Keeping the full
    row dimension lets the sparse propagation accumulate directly into
    the layer output buffer.
    """
    cols = np.unique(matrix.indices)
    remap = np.empty(matrix.shape[1], np.int32)
    remap[cols] = np.arange(len(cols), dtype=np.int32)
    compressed = sp.csr_matrix(
        (matrix.data, remap[matrix.indices], matrix.indptr),
        shape=(matrix.shape[0], len(cols)),
    )
    return cols, compressed


@dataclass
class _BatchPlan:
    """Template-cached compressed adjacency of a uniform candidate batch.

    All schedules of one CTI share their base edges, so the block-diagonal
    union of a same-template batch is the base adjacency tiled ``k``
    times — built once per (template, batch shape) and cached in the
    template's ``base_cache``; only each chunk's scheduling-hint edges are
    merged per call. Each (edge_type, direction) term keeps only its
    nonzero *columns* (the nodes that send messages of that type), so the
    per-type weight GEMM runs on just those rows of ``h``; the terms'
    column-compressed matrices are stacked side by side into one
    ``matrix`` whose single sparse product accumulates every term
    straight into the layer output. ``cols`` concatenates the terms'
    column supports (one gather per layer) and ``slices`` delimits each
    term's segment.

    Plans live in a *shared* template cache and are therefore immutable
    on publish (arrays frozen read-only); the mutable layer buffers the
    loop writes into are per-thread (:func:`_layer_buffers`), so server
    worker threads can score the same template concurrently while
    steady-state scoring on any one thread still allocates almost
    nothing.
    """

    terms: List[Tuple[int, int]]
    cols: np.ndarray
    slices: np.ndarray
    matrix: sp.csr_matrix
    #: Lazily built float32 view of ``matrix`` (shared indices/indptr,
    #: cast data), for the ``inference_mode="float32"`` fast path. Built
    #: at most once per plan; a concurrent double-build is idempotent.
    matrix32: Optional[sp.csr_matrix] = None

    def freeze(self) -> "_BatchPlan":
        self.cols.setflags(write=False)
        self.slices.setflags(write=False)
        _freeze_csr(self.matrix)
        return self

    def matrix_for(self, dtype: np.dtype) -> sp.csr_matrix:
        """The plan matrix with CSR data in ``dtype``.

        ``csr_matvecs`` is dtype-templated — data, input and output must
        agree — so the float32 path needs float32 matrix data. The cast
        happens once per plan (plans are template-cached), not per call.
        """
        if dtype != np.float32:
            return self.matrix
        cast = self.matrix32
        if cast is None:
            cast = sp.csr_matrix(
                (
                    self.matrix.data.astype(np.float32),
                    self.matrix.indices,
                    self.matrix.indptr,
                ),
                shape=self.matrix.shape,
            )
            self.matrix32 = _freeze_csr(cast)
        return cast


#: Per-thread reusable (out, scratch) layer buffers, keyed by shape; a
#: small FIFO cap bounds memory when many batch shapes are in play.
_LAYER_BUFFERS = threading.local()
_LAYER_BUFFER_CAP = 16


def _layer_buffers(
    n_total: int, n_cols: int, width: int, dtype: np.dtype = np.float64
) -> Tuple[np.ndarray, np.ndarray]:
    store = getattr(_LAYER_BUFFERS, "store", None)
    if store is None:
        store = _LAYER_BUFFERS.store = {}
    key = (n_total, n_cols, width, np.dtype(dtype).name)
    buffers = store.get(key)
    if buffers is None:
        if len(store) >= _LAYER_BUFFER_CAP:
            del store[next(iter(store))]
        buffers = (
            np.empty((n_total, width), dtype=dtype),
            np.empty((n_cols, width), dtype=dtype),
        )
        store[key] = buffers
    return buffers


class RelationalGCN:
    """A stack of relational graph-convolution layers."""

    def __init__(self, config: GNNConfig, seed: int = 0) -> None:
        self.config = config
        rng = rngmod.split(seed, "gnn-init")
        d = config.hidden_dim
        scale = 1.0 / np.sqrt(d)
        directions = 2 if config.bidirectional else 1
        self.w_self: List[Parameter] = []
        self.bias: List[Parameter] = []
        #: [layer][edge_type][direction] weight matrices
        self.w_edge: List[List[List[Parameter]]] = []
        for layer in range(config.num_layers):
            self.w_self.append(
                Parameter(rng.normal(0.0, scale, size=(d, d)), name=f"gnn.{layer}.self")
            )
            self.bias.append(Parameter(np.zeros(d), name=f"gnn.{layer}.bias"))
            per_type: List[List[Parameter]] = []
            for edge_type in range(config.num_edge_types):
                per_direction = [
                    Parameter(
                        rng.normal(0.0, scale, size=(d, d)),
                        name=f"gnn.{layer}.type{edge_type}.dir{direction}",
                    )
                    for direction in range(directions)
                ]
                per_type.append(per_direction)
            self.w_edge.append(per_type)
        # Cast-once float32 weight copies for inference_mode="float32";
        # built lazily, dropped whenever parameters change.
        self._cast32: Optional[Tuple[list, list, list]] = None

    def invalidate_casts(self) -> None:
        """Drop cached float32 weight copies (call after any parameter
        update — the PIC model hooks this into its dirty-flag path)."""
        self._cast32 = None

    def _weight_views(self, dtype: np.dtype) -> Tuple[list, list, list]:
        """(w_self, bias, w_edge) raw arrays in ``dtype``.

        float64 returns the live parameter arrays (no copies); float32
        returns cached casts, built once at first use after load/update
        rather than per forward pass.
        """
        if dtype != np.float32:
            return (
                [p.data for p in self.w_self],
                [p.data for p in self.bias],
                [
                    [[p.data for p in per_direction] for per_direction in per_type]
                    for per_type in self.w_edge
                ],
            )
        cast = self._cast32
        if cast is None:
            cast = (
                [p.data.astype(np.float32) for p in self.w_self],
                [p.data.astype(np.float32) for p in self.bias],
                [
                    [
                        [p.data.astype(np.float32) for p in per_direction]
                        for per_direction in per_type
                    ]
                    for per_type in self.w_edge
                ],
            )
            self._cast32 = cast
        return cast

    def parameters(self) -> List[Parameter]:
        flat: List[Parameter] = []
        flat.extend(self.w_self)
        flat.extend(self.bias)
        for per_type in self.w_edge:
            for per_direction in per_type:
                flat.extend(per_direction)
        return flat

    def forward(self, h: Tensor, graph: CTGraph) -> Tensor:
        """Run all layers; input and output are (num_nodes, hidden_dim)."""
        adjacency = prepare_adjacency(graph)
        for layer in range(self.config.num_layers):
            out = matmul(h, self.w_self[layer]) + self.bias[layer]
            for edge_type, (forward_adj, reverse_adj) in adjacency.items():
                weights = self.w_edge[layer][edge_type]
                out = out + matmul(spmm(forward_adj, h), weights[0])
                if self.config.bidirectional:
                    out = out + matmul(spmm(reverse_adj, h), weights[1])
            h = relu(out)
        return h

    def forward_numpy(self, h: np.ndarray, graph: CTGraph) -> np.ndarray:
        """Gradient-free fast path for inference (same math as forward)."""
        return self._run_numpy(h, prepare_adjacency(graph))

    def forward_numpy_batch(
        self, h: np.ndarray, graphs: Sequence[CTGraph]
    ) -> np.ndarray:
        """Batched inference over a disjoint-union of graphs.

        ``h`` is the concatenated node features of all graphs; adjacency is
        the block-diagonal union, so the output rows equal the per-graph
        :meth:`forward_numpy` results stacked in order. Same-template
        batches (one CTI's candidate pool) take the compressed-row fast
        path with a cached :class:`_BatchPlan`; mixed batches fall back to
        the generic merged adjacency.
        """
        plan = self._batch_plan(graphs) if len(graphs) > 1 else None
        if plan is None:
            return self._run_numpy(h, prepare_adjacency_batch(graphs))
        return self._run_numpy_compressed(
            h, plan, self._schedule_terms(graphs)
        )

    def _batch_plan(self, graphs: Sequence[CTGraph]) -> Optional[_BatchPlan]:
        """Cached compressed plan when the batch shares one template."""
        first = graphs[0]
        base_cache = first.base_cache
        if base_cache is None:
            return None
        n = first.num_nodes
        for graph in graphs[1:]:
            if graph.base_cache is not base_cache or graph.num_nodes != n:
                return None
        key = ("__plan__", len(graphs), n)
        plan = base_cache.get(key)
        if plan is None:
            plan = self._build_plan(first, len(graphs))
            base_cache[key] = plan
        return plan

    def _build_plan(self, graph: CTGraph, k: int) -> _BatchPlan:
        n = graph.num_nodes
        n_total = n * k
        offsets = (np.arange(k) * n).astype(np.int64)
        base_rows = graph.edges[graph.edges[:, 2] != EDGE_SCHEDULE]
        directions = 2 if self.config.bidirectional else 1
        terms: List[Tuple[int, int]] = []
        col_blocks: List[np.ndarray] = []
        matrices: List[sp.csr_matrix] = []
        types = np.unique(base_rows[:, 2]) if len(base_rows) else []
        for edge_type in types:
            rows = base_rows[base_rows[:, 2] == edge_type]
            src = (rows[:, 0][None, :] + offsets[:, None]).ravel()
            dst = (rows[:, 1][None, :] + offsets[:, None]).ravel()
            pair = _normalized_pair(src, dst, n_total)
            for direction in range(directions):
                cols, compressed = _compressed_columns(pair[direction])
                terms.append((int(edge_type), direction))
                col_blocks.append(cols)
                matrices.append(compressed)
        cols = (
            np.concatenate(col_blocks)
            if col_blocks
            else np.empty(0, np.int64)
        )
        slices = np.cumsum([0] + [len(block) for block in col_blocks])
        matrix = (
            sp.hstack(matrices, format="csr")
            if matrices
            else sp.csr_matrix((n_total, 0))
        )
        return _BatchPlan(
            terms=terms, cols=cols, slices=slices, matrix=matrix
        ).freeze()

    def _schedule_terms(
        self, graphs: Sequence[CTGraph]
    ) -> List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
        """Merged scheduling-hint edges of one chunk, in gather/scatter form.

        Each term is ``(direction, rows_out, rows_in, coeff)``: messages
        are gathered from ``rows_in``, scaled by the 1/in-degree ``coeff``
        (same normalisation as :func:`_normalized_pair`), pushed through
        the direction's weight and scatter-added into ``rows_out``. Hint
        edges are so few — a couple per candidate — that edge-list form
        beats building sparse matrices for every chunk.
        """
        n = graphs[0].num_nodes
        n_total = n * len(graphs)
        srcs: List[np.ndarray] = []
        dsts: List[np.ndarray] = []
        for j, graph in enumerate(graphs):
            rows = graph.edges[graph.edges[:, 2] == EDGE_SCHEDULE]
            if len(rows):
                srcs.append(rows[:, 0].astype(np.int64) + j * n)
                dsts.append(rows[:, 1].astype(np.int64) + j * n)
        if not srcs:
            return []
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        in_degree = np.bincount(dst, minlength=n_total).astype(np.float64)
        terms = [(0, dst, src, 1.0 / np.maximum(in_degree[dst], 1.0))]
        if self.config.bidirectional:
            out_degree = np.bincount(src, minlength=n_total).astype(np.float64)
            terms.append((1, src, dst, 1.0 / np.maximum(out_degree[src], 1.0)))
        return terms

    def _run_numpy_compressed(
        self,
        h: np.ndarray,
        plan: _BatchPlan,
        schedule_terms: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]],
    ) -> np.ndarray:
        """Compressed-row layer loop (same math as :meth:`_run_numpy`).

        Every zero column skipped here multiplies an exact zero in the
        dense path, so results match the generic batch and per-graph
        paths to floating-point accuracy; the per-type GEMMs run only on
        the nodes that send messages of that type, and the sparse
        propagation accumulates straight into the layer output buffer.

        The loop runs entirely in ``h.dtype``: float64 uses the live
        parameter arrays, float32 (``inference_mode="float32"``) uses
        cast-once weight copies, a cast-once plan matrix and float32
        scratch buffers — no per-call casting anywhere in the loop.
        """
        dtype = h.dtype
        matrix = plan.matrix_for(dtype)
        w_self, bias, w_edge = self._weight_views(dtype)
        width = h.shape[1]
        out, scratch = _layer_buffers(
            matrix.shape[0], len(plan.cols), width, dtype
        )
        if schedule_terms and dtype == np.float32:
            schedule_terms = [
                (direction, rows_out, rows_in, coeff.astype(np.float32))
                for direction, rows_out, rows_in, coeff in schedule_terms
            ]
        for layer in range(self.config.num_layers):
            np.dot(h, w_self[layer], out=out)
            out += bias[layer]
            if len(plan.cols):
                # note: h.take() beats np.take(..., out=) — numpy's buffered
                # out-path is several times slower than a fresh gather
                gather = h.take(plan.cols, axis=0)
                for i, (edge_type, direction) in enumerate(plan.terms):
                    weight = w_edge[layer][edge_type][direction]
                    segment = slice(plan.slices[i], plan.slices[i + 1])
                    np.dot(gather[segment], weight, out=scratch[segment])
                if _sptools is not None:
                    _sptools.csr_matvecs(
                        matrix.shape[0],
                        matrix.shape[1],
                        width,
                        matrix.indptr,
                        matrix.indices,
                        matrix.data,
                        scratch.ravel(),
                        out.ravel(),
                    )
                else:
                    out += matrix @ scratch
            for direction, rows_out, rows_in, coeff in schedule_terms:
                weight = w_edge[layer][EDGE_SCHEDULE][direction]
                contrib = (h[rows_in] * coeff[:, None]) @ weight
                np.add.at(out, rows_out, contrib)
            np.maximum(out, 0.0, out=h)
        return h

    def _run_numpy(
        self,
        h: np.ndarray,
        adjacency: Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]],
    ) -> np.ndarray:
        for layer in range(self.config.num_layers):
            out = h @ self.w_self[layer].data + self.bias[layer].data
            for edge_type, (forward_adj, reverse_adj) in adjacency.items():
                weights = self.w_edge[layer][edge_type]
                out += (forward_adj @ h) @ weights[0].data
                if self.config.bidirectional:
                    out += (reverse_adj @ h) @ weights[1].data
            h = np.maximum(out, 0.0)
        return h
