"""Relational graph convolution over CT graphs.

The paper's GNN module is a GCN (PyTorch Geometric) whose edge-type
embeddings let message passing distinguish the five CT edge types. Here
each edge type gets its own weight matrix per layer (an R-GCN), which
subsumes edge-type embeddings, and messages flow in both edge directions
with separate weights — coverage of a block depends both on what reaches it
and on what it reaches.

Propagation uses normalised sparse adjacency matrices (1/in-degree per
type). For graphs stamped from one :class:`CTIGraphTemplate`, the base
(schedule-independent) adjacency is built once and shared via the graph's
``base_cache``; only the two scheduling-hint edges are prepared per
schedule. This is what lets one CTI's hundreds of candidate schedules be
scored at a small fraction of an execution's cost (§5.2.2).

Deeper stacks see farther in the graph; the paper observes deeper GNNs
predict concurrent coverage better (§5.1.2), which ``num_layers`` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro import rng as rngmod
from repro.graphs.ctgraph import CTGraph, EDGE_SCHEDULE, NUM_EDGE_TYPES
from repro.ml.autograd import Parameter, Tensor, matmul, relu, spmm

__all__ = ["GNNConfig", "RelationalGCN", "prepare_adjacency"]


@dataclass(frozen=True)
class GNNConfig:
    """Shape of the GNN stack."""

    hidden_dim: int = 48
    num_layers: int = 4
    num_edge_types: int = NUM_EDGE_TYPES
    bidirectional: bool = True


def _normalized_pair(
    src: np.ndarray, dst: np.ndarray, num_nodes: int
) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """(forward, reverse) adjacency with 1/in-degree normalisation.

    forward[d, s] = 1/in_deg(d) for each edge s→d; reverse likewise on the
    transposed edge set.
    """
    ones = np.ones(len(src))
    in_degree = np.bincount(dst, minlength=num_nodes).astype(np.float64)
    out_degree = np.bincount(src, minlength=num_nodes).astype(np.float64)
    forward = sp.csr_matrix(
        (1.0 / np.maximum(in_degree[dst], 1.0), (dst, src)),
        shape=(num_nodes, num_nodes),
    )
    reverse = sp.csr_matrix(
        (1.0 / np.maximum(out_degree[src], 1.0), (src, dst)),
        shape=(num_nodes, num_nodes),
    )
    return forward, reverse


def prepare_adjacency(
    graph: CTGraph,
) -> Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]]:
    """Per-edge-type normalised adjacency, with template-level caching.

    Non-schedule types are identical for every schedule of a CTI, so they
    live in the template-shared ``base_cache``; the schedule type is built
    per graph (it is at most a handful of edges).
    """
    cached = getattr(graph, "_adjacency", None)
    if cached is not None:
        return cached
    n = graph.num_nodes
    result: Dict[int, Tuple[sp.csr_matrix, sp.csr_matrix]] = {}
    base_cache = graph.base_cache if graph.base_cache is not None else {}
    types_present = np.unique(graph.edges[:, 2]) if graph.num_edges else []
    for edge_type in types_present:
        edge_type = int(edge_type)
        if edge_type != EDGE_SCHEDULE and edge_type in base_cache:
            result[edge_type] = base_cache[edge_type]
            continue
        rows = graph.edges[graph.edges[:, 2] == edge_type]
        pair = _normalized_pair(
            rows[:, 0].astype(np.int64), rows[:, 1].astype(np.int64), n
        )
        result[edge_type] = pair
        if edge_type != EDGE_SCHEDULE:
            base_cache[edge_type] = pair
    graph._adjacency = result  # per-graph memo
    return result


class RelationalGCN:
    """A stack of relational graph-convolution layers."""

    def __init__(self, config: GNNConfig, seed: int = 0) -> None:
        self.config = config
        rng = rngmod.split(seed, "gnn-init")
        d = config.hidden_dim
        scale = 1.0 / np.sqrt(d)
        directions = 2 if config.bidirectional else 1
        self.w_self: List[Parameter] = []
        self.bias: List[Parameter] = []
        #: [layer][edge_type][direction] weight matrices
        self.w_edge: List[List[List[Parameter]]] = []
        for layer in range(config.num_layers):
            self.w_self.append(
                Parameter(rng.normal(0.0, scale, size=(d, d)), name=f"gnn.{layer}.self")
            )
            self.bias.append(Parameter(np.zeros(d), name=f"gnn.{layer}.bias"))
            per_type: List[List[Parameter]] = []
            for edge_type in range(config.num_edge_types):
                per_direction = [
                    Parameter(
                        rng.normal(0.0, scale, size=(d, d)),
                        name=f"gnn.{layer}.type{edge_type}.dir{direction}",
                    )
                    for direction in range(directions)
                ]
                per_type.append(per_direction)
            self.w_edge.append(per_type)

    def parameters(self) -> List[Parameter]:
        flat: List[Parameter] = []
        flat.extend(self.w_self)
        flat.extend(self.bias)
        for per_type in self.w_edge:
            for per_direction in per_type:
                flat.extend(per_direction)
        return flat

    def forward(self, h: Tensor, graph: CTGraph) -> Tensor:
        """Run all layers; input and output are (num_nodes, hidden_dim)."""
        adjacency = prepare_adjacency(graph)
        for layer in range(self.config.num_layers):
            out = matmul(h, self.w_self[layer]) + self.bias[layer]
            for edge_type, (forward_adj, reverse_adj) in adjacency.items():
                weights = self.w_edge[layer][edge_type]
                out = out + matmul(spmm(forward_adj, h), weights[0])
                if self.config.bidirectional:
                    out = out + matmul(spmm(reverse_adj, h), weights[1])
            h = relu(out)
        return h

    def forward_numpy(self, h: np.ndarray, graph: CTGraph) -> np.ndarray:
        """Gradient-free fast path for inference (same math as forward)."""
        adjacency = prepare_adjacency(graph)
        for layer in range(self.config.num_layers):
            out = h @ self.w_self[layer].data + self.bias[layer].data
            for edge_type, (forward_adj, reverse_adj) in adjacency.items():
                weights = self.w_edge[layer][edge_type]
                out += (forward_adj @ h) @ weights[0].data
                if self.config.bidirectional:
                    out += (reverse_adj @ h) @ weights[1].data
            h = np.maximum(out, 0.0)
        return h
