"""Predictor evaluation: the Table 1 machinery (§5.2.1).

Computes per-graph binary-classification metrics over URB nodes (or all
nodes, the §A.3 variant) and averages them across the evaluation split,
for any :class:`~repro.ml.baselines.CoveragePredictor`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.graphs.dataset import CTExample
from repro.ml.baselines import CoveragePredictor
from repro.ml.metrics import BinaryMetrics, classification_metrics, mean_metrics

__all__ = ["evaluate_predictor", "predictor_table"]


def evaluate_predictor(
    predictor: CoveragePredictor,
    examples: Sequence[CTExample],
    urb_only: bool = True,
) -> Dict[str, float]:
    """Mean per-graph metrics for one predictor.

    ``urb_only=True`` restricts scoring to URB nodes, the paper's primary
    (and harder) target subpopulation; ``False`` scores all nodes (§A.3).

    Graphs with no positive URB label are skipped in URB-only mode: recall
    (and hence F1) is undefined there, and the paper's graphs — two orders
    of magnitude larger than ours — always carry positives, so skipping
    keeps the per-graph averages comparable.
    """
    per_graph: List[BinaryMetrics] = []
    for example in examples:
        predictions = predictor.predict(example.graph)
        labels = example.labels
        if urb_only:
            mask = example.graph.urb_mask()
            if not mask.any():
                continue
            predictions = predictions[mask]
            labels = labels[mask]
            if labels.sum() == 0:
                continue
        per_graph.append(classification_metrics(labels, predictions))
    return mean_metrics(per_graph)


def predictor_table(
    predictors: Dict[str, CoveragePredictor],
    examples: Sequence[CTExample],
    urb_only: bool = True,
) -> List[Dict[str, object]]:
    """Table 1: one row per predictor, ordered as given."""
    rows: List[Dict[str, object]] = []
    for name, predictor in predictors.items():
        metrics = evaluate_predictor(predictor, examples, urb_only=urb_only)
        row: Dict[str, object] = {"predictor": name}
        row.update(metrics)
        rows.append(row)
    return rows
