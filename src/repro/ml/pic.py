"""The per-interleaving coverage (PIC) model (§3.2).

Combines the assembly encoder, a node-type embedding, the relational GCN,
and a per-node binary classification head. The model predicts, for every
vertex of a CT graph (SCBs and URBs of both threads), the probability the
block is covered when the CT is dynamically executed under its scheduling
hints.

Training minimises binary cross-entropy per graph (the paper computes BCE
within each graph first, then averages across the population). Because URB
positives are ~1% of nodes, the loss supports a positive-class weight and a
URB-node weight so the interesting minority is not drowned out.
"""

from __future__ import annotations

import io
import json
import zipfile
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import rng as rngmod
from repro.errors import CheckpointError, ModelError
from repro.graphs.ctgraph import (
    CTGraph,
    NODE_URB,
    NUM_EDGE_TYPES,
    NUM_HINT_FLAGS,
    NUM_NODE_TYPES,
)
from repro.graphs.dataset import CTExample
from repro.ml.autograd import (
    Parameter,
    Tensor,
    bce_with_logits,
    dropout,
    gather_rows,
    matmul,
    rowwise_sum,
)
from repro.ml.encoder import AsmEncoder, EncoderConfig
from repro.ml.gnn import GNNConfig, RelationalGCN

__all__ = ["PICConfig", "PICModel", "stable_sigmoid", "CHECKPOINT_SCHEMA"]

#: On-disk model checkpoint schema. Version 1 was a bare ``np.savez`` of
#: the state dict; version 2 adds a checksummed, versioned header with
#: the embedded :class:`PICConfig`, so a checkpoint is self-describing
#: and corruption is detected at load instead of producing NaNs later.
CHECKPOINT_SCHEMA = 2


def _checkpoint_checksum(state: Dict[str, np.ndarray], config_json: str) -> str:
    """Content checksum over the parameter arrays and embedded config.

    Covers name, dtype, shape, and raw bytes of every array (sorted by
    name), so any bit flip in the payload fails verification.
    """
    from repro.resilience.atomic import sha256_hex

    parts: List[bytes] = []
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        parts.append(name.encode("utf-8"))
        parts.append(str(array.dtype).encode("utf-8"))
        parts.append(repr(array.shape).encode("utf-8"))
        parts.append(array.tobytes())
    parts.append(config_json.encode("utf-8"))
    parts.append(str(CHECKPOINT_SCHEMA).encode("utf-8"))
    return sha256_hex(b"".join(parts))


def stable_sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function.

    The naive ``1/(1+exp(-z))`` overflows for large negative ``z`` (and
    ``exp(z)/(1+exp(z))`` for large positive ``z``); the split form stays
    finite over the whole float range. For ``z >= 0`` it computes exactly
    the naive expression, so well-conditioned predictions are unchanged.
    """
    z = np.asarray(z, dtype=np.float64)
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


@dataclass(frozen=True)
class PICConfig:
    """Hyperparameters of one PIC model (the §5.1.2 tuning space)."""

    vocab_size: int
    pad_id: int
    token_dim: int = 32
    hidden_dim: int = 48
    num_layers: int = 4
    dropout: float = 0.1
    #: Loss weight multiplier for positive labels (class imbalance).
    positive_weight: float = 4.0
    #: Additional loss weight multiplier for URB nodes.
    urb_weight: float = 4.0
    bidirectional: bool = True
    #: Weight of the auxiliary inter-thread dataflow prediction loss
    #: (§6's proposed extra task); 0 disables the head during training.
    dataflow_weight: float = 0.0
    name: str = "PIC"


class PICModel:
    """Encoder + GNN + per-node classifier; the paper's coverage predictor."""

    def __init__(
        self,
        config: PICConfig,
        seed: int = 0,
        pretrained_encoder: Optional[AsmEncoder] = None,
    ) -> None:
        self.config = config
        self._rng = rngmod.split(seed, f"pic:{config.name}")
        if pretrained_encoder is not None:
            if pretrained_encoder.config.vocab_size != config.vocab_size:
                raise ModelError("pretrained encoder vocabulary size mismatch")
            if pretrained_encoder.config.output_dim != config.hidden_dim:
                raise ModelError(
                    "pretrained encoder output_dim must equal PIC hidden_dim"
                )
            self.encoder = pretrained_encoder
        else:
            self.encoder = AsmEncoder(
                EncoderConfig(
                    vocab_size=config.vocab_size,
                    token_dim=config.token_dim,
                    output_dim=config.hidden_dim,
                ),
                seed=rngmod.derive_seed(seed, "encoder"),
            )
        init_rng = rngmod.split(seed, "pic-init")
        scale = 1.0 / np.sqrt(config.hidden_dim)
        self.node_type_table = Parameter(
            init_rng.normal(0.0, scale, size=(NUM_NODE_TYPES, config.hidden_dim)),
            name="pic.node_type_table",
        )
        self.hint_flag_table = Parameter(
            init_rng.normal(0.0, scale, size=(NUM_HINT_FLAGS, config.hidden_dim)),
            name="pic.hint_flag_table",
        )
        self.gnn = RelationalGCN(
            GNNConfig(
                hidden_dim=config.hidden_dim,
                num_layers=config.num_layers,
                num_edge_types=NUM_EDGE_TYPES,
                bidirectional=config.bidirectional,
            ),
            seed=rngmod.derive_seed(seed, "gnn"),
        )
        self.w_out = Parameter(
            init_rng.normal(0.0, scale, size=(config.hidden_dim, 1)), name="pic.w_out"
        )
        self.b_out = Parameter(np.zeros(1), name="pic.b_out")
        # Bilinear head scoring inter-thread dataflow edges (§6 task).
        self.w_dataflow = Parameter(
            init_rng.normal(0.0, scale, size=(config.hidden_dim, config.hidden_dim)),
            name="pic.w_dataflow",
        )
        self.b_dataflow = Parameter(np.zeros(1), name="pic.b_dataflow")
        #: Classification threshold, tuned on validation URBs (§5.1.2).
        self.threshold: float = 0.5
        # Inference-time encoder cache: graphs stamped from one CTI
        # template share their token_ids array, whose block embeddings do
        # not depend on the schedule. Invalidated on any training step.
        self._inference_cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
        # Per-template schedule-independent node features (code + node-type
        # + zero-hint-flag embeddings) per inference dtype; hinted rows are
        # patched per graph.
        self._base_features_cache: Dict[int, Tuple[np.ndarray, Dict[str, np.ndarray]]] = {}
        self._inference_cache_cap = 32
        self._params_dirty = False
        #: "float64" (default, exact) or "float32" — the reduced-precision
        #: fast path for same-template batched inference. Training and the
        #: per-graph path always run float64.
        self.inference_mode: str = "float64"
        # Cast-once float32 copies of the head + hint tables; rebuilt only
        # after a parameter change.
        self._head32: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def set_inference_mode(self, mode: str) -> "PICModel":
        """Select the batched-inference dtype: ``"float64"`` (exact,
        default) or ``"float32"`` (cast-once weights + plans; probabilities
        match float64 to ~1e-6 — see docs/PERFORMANCE.md for when that is
        safe). Returns ``self`` for chaining."""
        if mode not in ("float64", "float32"):
            raise ModelError(f"unknown inference mode {mode!r}")
        self.inference_mode = mode
        return self

    def _invalidate_casts(self) -> None:
        self._head32 = None
        self.gnn.invalidate_casts()

    def _head_views(self, dtype: np.dtype) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(hint_flag_table, w_out, b_out) in ``dtype`` (cast once)."""
        if dtype != np.float32:
            return (
                self.hint_flag_table.data,
                self.w_out.data,
                self.b_out.data,
            )
        views = self._head32
        if views is None:
            views = (
                self.hint_flag_table.data.astype(np.float32),
                self.w_out.data.astype(np.float32),
                self.b_out.data.astype(np.float32),
            )
            self._head32 = views
        return views

    # -- parameters ------------------------------------------------------------

    def parameters(self) -> List[Parameter]:
        return (
            self.encoder.parameters()
            + [
                self.node_type_table,
                self.hint_flag_table,
                self.w_out,
                self.b_out,
                self.w_dataflow,
                self.b_dataflow,
            ]
            + self.gnn.parameters()
        )

    # -- forward ---------------------------------------------------------------

    def _code_embeddings(self, graph: CTGraph, training: bool) -> Tensor:
        """Encoder output; cached at inference per CTI template."""
        if training:
            self._params_dirty = True
            return self.encoder.encode(graph.token_ids, self.config.pad_id)
        if self._params_dirty:
            self._inference_cache.clear()
            self._base_features_cache.clear()
            self._invalidate_casts()
            self._params_dirty = False
        key = id(graph.token_ids)
        cached = self._inference_cache.get(key)
        # Holding a reference to the keyed array prevents id() reuse.
        if cached is None or cached[0] is not graph.token_ids:
            encoded = self.encoder.encode(graph.token_ids, self.config.pad_id).data
            if len(self._inference_cache) >= self._inference_cache_cap:
                oldest = next(iter(self._inference_cache))
                # pop(): concurrent server worker threads may race on
                # eviction; losing the race must not raise.
                self._inference_cache.pop(oldest, None)
            cached = (graph.token_ids, encoded)
            self._inference_cache[key] = cached
        return Tensor(cached[1])

    def _hidden(self, graph: CTGraph, training: bool) -> Tensor:
        """Node representations after message passing."""
        code = self._code_embeddings(graph, training)
        types = gather_rows(self.node_type_table, graph.node_types)
        flags = gather_rows(self.hint_flag_table, graph.hint_flags)
        h = code + types + flags
        h = dropout(h, self.config.dropout, self._rng, training)
        return self.gnn.forward(h, graph)

    def logits(self, graph: CTGraph, training: bool = False) -> Tensor:
        """Per-node coverage logits for one CT graph."""
        hidden = self._hidden(graph, training)
        return matmul(hidden, self.w_out) + self.b_out  # (N, 1)

    def _dataflow_logits(
        self, hidden: Tensor, graph: CTGraph, edge_rows: np.ndarray
    ) -> Tensor:
        """Bilinear scores of inter-thread dataflow edges: (E, 1)."""
        src = graph.edges[edge_rows, 0]
        dst = graph.edges[edge_rows, 1]
        h_src = gather_rows(hidden, src)
        h_dst = gather_rows(hidden, dst)
        scores = rowwise_sum(matmul(h_src, self.w_dataflow) * h_dst)
        return scores + self.b_dataflow

    def predict_proba(self, graph: CTGraph) -> np.ndarray:
        """Coverage probabilities, shape (num_nodes,).

        Uses a gradient-free numpy path with the per-template encoder
        cache — this is the fast inference the paper's workflow depends on
        (many predictions per dynamic execution, §5.2.2).
        """
        h = self._hidden_numpy(graph)
        z = (h @ self.w_out.data + self.b_out.data)[:, 0]
        return stable_sigmoid(z)

    def predict(self, graph: CTGraph) -> np.ndarray:
        """Boolean coverage predictions under the tuned threshold."""
        return self.predict_proba(graph) >= self.threshold

    # -- batched inference -----------------------------------------------------

    def _hidden_numpy(self, graph: CTGraph) -> np.ndarray:
        """Gradient-free node representations of one graph."""
        code = self._code_embeddings(graph, training=False).data
        h = (
            code
            + self.node_type_table.data[graph.node_types]
            + self.hint_flag_table.data[graph.hint_flags]
        )
        return self.gnn.forward_numpy(h, graph)

    def _base_node_features(
        self, graph: CTGraph, dtype: np.dtype = np.float64
    ) -> np.ndarray:
        """Schedule-independent input features of one template's graphs.

        Code embeddings, node-type embeddings, and the zero hint-flag
        embedding are all identical across a CTI's candidate schedules, so
        the sum is cached per template (keyed like the encoder cache);
        only the handful of hinted rows differ per candidate. The cache
        holds one variant per inference dtype — the float32 cast happens
        once per template, not per batch.
        """
        key = id(graph.token_ids)
        cached = self._base_features_cache.get(key)
        if cached is None or cached[0] is not graph.token_ids:
            base = (
                self._code_embeddings(graph, training=False).data
                + self.node_type_table.data[graph.node_types]
                + self.hint_flag_table.data[0]
            )
            if len(self._base_features_cache) >= self._inference_cache_cap:
                oldest = next(iter(self._base_features_cache))
                self._base_features_cache.pop(oldest, None)
            cached = (graph.token_ids, {"float64": base})
            self._base_features_cache[key] = cached
        variants = cached[1]
        name = np.dtype(dtype).name
        variant = variants.get(name)
        if variant is None:
            variant = variants["float64"].astype(dtype)
            variants[name] = variant
        return variant

    def _hidden_numpy_batch(self, graphs: Sequence[CTGraph]) -> np.ndarray:
        """Gradient-free node representations of a disjoint-union batch.

        Per-graph code embeddings go through the per-template encoder
        cache (all schedules of one CTI share their ``token_ids`` array,
        so a whole candidate pool costs one encode), and the GNN reuses
        the template-shared ``base_cache`` adjacencies — only each
        candidate's scheduling-hint edges are prepared fresh. Uniform
        same-template batches broadcast the cached base features and patch
        just the hinted rows; mixed batches build features per graph.

        ``inference_mode="float32"`` applies to the uniform fast path
        only — mixed batches and the per-graph path always run float64
        (they are rare in campaigns, and keeping them exact preserves
        the single-graph determinism contract).
        """
        first = graphs[0]
        base_cache = first.base_cache
        n = first.num_nodes
        uniform = base_cache is not None and all(
            graph.base_cache is base_cache and graph.num_nodes == n
            for graph in graphs[1:]
        )
        if uniform:
            dtype = (
                np.float32
                if self.inference_mode == "float32"
                else np.float64
            )
            base = self._base_node_features(first, dtype)
            k = len(graphs)
            h = np.empty((k * n, base.shape[1]), dtype=dtype)
            np.copyto(h.reshape(k, n, -1), base)
            flags = self._head_views(dtype)[0]
            for j, graph in enumerate(graphs):
                hinted = np.flatnonzero(graph.hint_flags)
                if len(hinted):
                    h[j * n + hinted] += (
                        flags[graph.hint_flags[hinted]] - flags[0]
                    )
        else:
            code = np.vstack(
                [
                    self._code_embeddings(graph, training=False).data
                    for graph in graphs
                ]
            )
            node_types = np.concatenate([graph.node_types for graph in graphs])
            hint_flags = np.concatenate([graph.hint_flags for graph in graphs])
            h = (
                code
                + self.node_type_table.data[node_types]
                + self.hint_flag_table.data[hint_flags]
            )
        return self.gnn.forward_numpy_batch(h, graphs)

    def predict_proba_batch(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        """Coverage probabilities of many graphs in one forward pass.

        Merges the candidates into one block-diagonal batch (PyTorch
        Geometric style), amortising the per-graph Python/NumPy overhead
        of :meth:`predict_proba` across the pool, then splits the per-node
        probabilities back out per graph. Results match the per-graph path
        to floating-point accuracy.
        """
        if not graphs:
            return []
        if len(graphs) == 1:
            return [self.predict_proba(graphs[0])]
        h = self._hidden_numpy_batch(graphs)
        _, w_out, b_out = self._head_views(h.dtype)
        # stable_sigmoid upcasts float32 logits, so probabilities are
        # float64 downstream regardless of inference mode.
        z = (h @ w_out + b_out)[:, 0]
        proba = stable_sigmoid(z)
        offsets = np.cumsum([0] + [graph.num_nodes for graph in graphs])
        return [
            proba[offsets[i] : offsets[i + 1]] for i in range(len(graphs))
        ]

    def predict_batch(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        """Boolean coverage predictions of many graphs (tuned threshold)."""
        return [proba >= self.threshold for proba in self.predict_proba_batch(graphs)]

    def warm_inference_caches(self, graphs: Sequence[CTGraph]) -> None:
        """Populate the per-template caches for ``graphs`` on this thread.

        The thread-parallel batch scorer calls this on the dispatching
        thread before sharding, so worker threads only *read* the shared
        encoder/base-feature caches and cast-once weight views instead of
        racing to fill them.
        """
        dtype = np.float32 if self.inference_mode == "float32" else np.float64
        seen: Dict[int, bool] = {}
        for graph in graphs:
            key = id(graph.token_ids)
            if key in seen:
                continue
            seen[key] = True
            self._base_node_features(graph, dtype)
        self._head_views(dtype)
        self.gnn._weight_views(dtype)

    def predict_dataflow_proba_batch(
        self,
        graphs: Sequence[CTGraph],
        edge_rows_per_graph: Sequence[np.ndarray],
    ) -> List[np.ndarray]:
        """Batched variant of :meth:`predict_dataflow_proba`.

        ``edge_rows_per_graph[i]`` indexes rows of ``graphs[i].edges``;
        returns one realisation-probability array per graph.
        """
        if not graphs:
            return []
        if len(graphs) != len(edge_rows_per_graph):
            raise ModelError("graphs and edge_rows_per_graph lengths differ")
        h = self._hidden_numpy_batch(graphs)
        offsets = np.cumsum([0] + [graph.num_nodes for graph in graphs])
        results: List[np.ndarray] = []
        for graph, offset, edge_rows in zip(graphs, offsets[:-1], edge_rows_per_graph):
            edge_rows = np.asarray(edge_rows, dtype=np.int64)
            if edge_rows.size == 0:
                results.append(np.zeros(0))
                continue
            src = graph.edges[edge_rows, 0] + offset
            dst = graph.edges[edge_rows, 1] + offset
            scores = ((h[src] @ self.w_dataflow.data) * h[dst]).sum(axis=1)
            z = scores + self.b_dataflow.data[0]
            results.append(stable_sigmoid(z))
        return results

    # -- loss --------------------------------------------------------------------

    def _sample_weights(self, example: CTExample) -> np.ndarray:
        weights = np.ones(example.num_nodes)
        if self.config.positive_weight != 1.0:
            weights[example.labels > 0.5] *= self.config.positive_weight
        if self.config.urb_weight != 1.0:
            weights[example.graph.node_types == NODE_URB] *= self.config.urb_weight
        return weights

    def loss(self, example: CTExample, training: bool = True) -> Tensor:
        """Weighted BCE of one graph (per-graph loss, as in §3.2).

        With ``dataflow_weight > 0`` the §6 auxiliary task is added: BCE
        over the inter-thread dataflow edges' realised/not-realised labels,
        sharing the node representations.
        """
        hidden = self._hidden(example.graph, training)
        logits = matmul(hidden, self.w_out) + self.b_out
        targets = example.labels[:, None]
        weights = self._sample_weights(example)[:, None]
        total = bce_with_logits(logits, targets, weights)
        if self.config.dataflow_weight > 0.0 and example.num_dataflow_edges:
            edge_logits = self._dataflow_logits(
                hidden, example.graph, example.dataflow_edge_rows
            )
            edge_loss = bce_with_logits(
                edge_logits, example.dataflow_labels[:, None]
            )
            total = total + edge_loss * self.config.dataflow_weight
        return total

    def predict_dataflow_proba(
        self, graph: CTGraph, edge_rows: np.ndarray
    ) -> np.ndarray:
        """Realisation probabilities of inter-thread dataflow edges.

        Gradient-free fast path mirroring :meth:`predict_proba`.
        """
        if edge_rows.size == 0:
            return np.zeros(0)
        h = self._hidden_numpy(graph)
        src = graph.edges[edge_rows, 0]
        dst = graph.edges[edge_rows, 1]
        scores = ((h[src] @ self.w_dataflow.data) * h[dst]).sum(axis=1)
        z = scores + self.b_dataflow.data[0]
        return stable_sigmoid(z)

    # -- checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {p.name: p.data.copy() for p in self.parameters()}
        state["__threshold__"] = np.asarray([self.threshold])
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for parameter in self.parameters():
            if parameter.name not in state:
                raise CheckpointError(f"missing parameter {parameter.name!r}")
            loaded = np.asarray(state[parameter.name])
            if loaded.shape != parameter.data.shape:
                raise CheckpointError(
                    f"shape mismatch for {parameter.name!r}: "
                    f"{loaded.shape} vs {parameter.data.shape}"
                )
            parameter.data = loaded.astype(np.float64).copy()
        if "__threshold__" in state:
            self.threshold = float(np.asarray(state["__threshold__"]).ravel()[0])
        self._inference_cache.clear()
        self._base_features_cache.clear()
        self._invalidate_casts()
        self._params_dirty = False

    def save(self, path: str) -> None:
        """Write a durable, self-describing checkpoint to ``path``.

        The archive embeds a schema version, a content checksum, and the
        model's :class:`PICConfig` (as JSON), and reaches disk via an
        atomic temp+fsync+rename — a crash mid-save leaves either the old
        checkpoint or the new one, never a torn file.
        """
        from repro.resilience.atomic import atomic_write_bytes, canonical_json

        state = self.state_dict()
        config_json = canonical_json(asdict(self.config))
        buffer = io.BytesIO()
        # savez through a buffer: writing to a file object keeps the exact
        # destination name (np.savez appends ``.npz`` to bare paths) and
        # lets the bytes go through the atomic-write helper.
        np.savez(
            buffer,
            __schema__=np.asarray([CHECKPOINT_SCHEMA]),
            __checksum__=np.asarray([_checkpoint_checksum(state, config_json)]),
            __config__=np.asarray([config_json]),
            **state,
        )
        atomic_write_bytes(path, buffer.getvalue())

    @staticmethod
    def _read_checkpoint(path: str) -> Tuple[Dict[str, np.ndarray], PICConfig]:
        """Read and verify a checkpoint; any unusable file is a
        :class:`~repro.errors.CheckpointError` (the signal consumers use
        to degrade gracefully instead of crashing)."""
        try:
            with np.load(path) as archive:
                payload = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile) as error:
            raise CheckpointError(
                f"cannot read model checkpoint {path!r}: {error}"
            ) from None
        for key in ("__schema__", "__checksum__", "__config__"):
            if key not in payload:
                raise CheckpointError(
                    f"model checkpoint {path!r} lacks the {key} header "
                    "(not a Snowcat model checkpoint, or written by a "
                    "pre-versioning build)"
                )
        schema = int(np.asarray(payload.pop("__schema__")).ravel()[0])
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"model checkpoint {path!r} has schema {schema}, "
                f"this build reads schema {CHECKPOINT_SCHEMA}"
            )
        checksum = str(np.asarray(payload.pop("__checksum__")).ravel()[0])
        config_json = str(np.asarray(payload.pop("__config__")).ravel()[0])
        if _checkpoint_checksum(payload, config_json) != checksum:
            raise CheckpointError(
                f"model checkpoint {path!r} failed checksum verification "
                "(corrupt or truncated)"
            )
        try:
            config = PICConfig(**json.loads(config_json))
        except (ValueError, TypeError) as error:
            raise CheckpointError(
                f"model checkpoint {path!r} embeds an unreadable config: {error}"
            ) from None
        return payload, config

    @classmethod
    def load(cls, path: str, seed: int = 0) -> "PICModel":
        """Reconstruct a model purely from a checkpoint file.

        The embedded config makes the checkpoint self-describing: unlike
        :meth:`restore`, no externally supplied :class:`PICConfig` is
        needed (this is what ``repro campaign --model`` consumes).
        """
        state, config = cls._read_checkpoint(path)
        model = cls(config, seed=seed)
        model.load_state_dict(state)
        return model

    @staticmethod
    def restore(path: str, config: PICConfig, seed: int = 0) -> "PICModel":
        """Load a checkpoint into a model built from ``config``.

        ``config`` must agree with the checkpoint's embedded config on
        every architecture field (name may differ).
        """
        from dataclasses import replace as dc_replace

        state, saved_config = PICModel._read_checkpoint(path)
        if asdict(dc_replace(saved_config, name=config.name)) != asdict(config):
            raise CheckpointError(
                f"model checkpoint {path!r} was written with config "
                f"{saved_config}, incompatible with requested {config}"
            )
        model = PICModel(config, seed=seed)
        model.load_state_dict(state)
        return model

    def clone(self, name: Optional[str] = None, seed: int = 0) -> "PICModel":
        """Deep copy (used to fork fine-tuned variants from a base model)."""
        from dataclasses import replace as dc_replace

        config = dc_replace(self.config, name=name or self.config.name)
        twin = PICModel(config, seed=seed)
        twin.load_state_dict(self.state_dict())
        return twin
