"""Baseline coverage predictors of Table 1 (§5.2.1).

- **All pos**: every node predicted covered ("a simple static analysis").
- **Fair coin**: positive with probability 50%.
- **Biased coin**: positive with the base rate of positive URBs observed in
  training graphs (the paper uses 1.1%).

All predictors — including :class:`~repro.ml.pic.PICModel` — satisfy the
:class:`CoveragePredictor` protocol, so the evaluation and the selection
strategies are agnostic to which one is plugged in.
"""

from __future__ import annotations

from typing import Iterable, List, Protocol, Sequence

import numpy as np

from repro import rng as rngmod
from repro.graphs.ctgraph import CTGraph
from repro.graphs.dataset import CTExample

__all__ = [
    "CoveragePredictor",
    "AllPositive",
    "FairCoin",
    "BiasedCoin",
    "observed_urb_positive_rate",
]


class CoveragePredictor(Protocol):
    """Anything that predicts per-node coverage of a CT graph.

    Predictors may additionally expose ``predict_proba_batch(graphs)``
    returning one probability array per graph (and a ``threshold``
    attribute for the boolean cut); the candidate-scoring engine
    (:mod:`repro.core.scoring`) uses the batch path when present and
    falls back to these per-graph methods otherwise. Predictors whose
    :meth:`predict` consumes randomness (the coin baselines) must *not*
    advertise a batch path, so scoring order — and hence their RNG
    stream — is preserved.
    """

    def predict_proba(self, graph: CTGraph) -> np.ndarray:
        """Coverage probability per node, shape (num_nodes,)."""
        ...

    def predict(self, graph: CTGraph) -> np.ndarray:
        """Boolean coverage prediction per node."""
        ...


class AllPositive:
    """Predicts every node covered."""

    #: Boolean cut used by the batched scoring engine.
    threshold: float = 0.5

    def predict_proba(self, graph: CTGraph) -> np.ndarray:
        return np.ones(graph.num_nodes)

    def predict(self, graph: CTGraph) -> np.ndarray:
        return np.ones(graph.num_nodes, dtype=bool)

    def predict_proba_batch(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        return [np.ones(graph.num_nodes) for graph in graphs]


class _CoinPredictor:
    """Shared machinery of the random baselines."""

    def __init__(self, positive_probability: float, seed: int = 0) -> None:
        if not 0.0 <= positive_probability <= 1.0:
            raise ValueError("positive probability must be in [0, 1]")
        self.positive_probability = positive_probability
        self._rng = rngmod.split(seed, f"coin:{positive_probability}")

    def predict_proba(self, graph: CTGraph) -> np.ndarray:
        return np.full(graph.num_nodes, self.positive_probability)

    def predict(self, graph: CTGraph) -> np.ndarray:
        return self._rng.random(graph.num_nodes) < self.positive_probability


class FairCoin(_CoinPredictor):
    """Positive with probability 50%."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__(0.5, seed=seed)


class BiasedCoin(_CoinPredictor):
    """Positive with the training base rate of positive URBs."""

    def __init__(self, positive_probability: float, seed: int = 0) -> None:
        super().__init__(positive_probability, seed=seed)


def observed_urb_positive_rate(examples: Iterable[CTExample]) -> float:
    """Average frequency of positive URBs in a dataset (Biased coin's p)."""
    total, positive = 0, 0.0
    for example in examples:
        urb_labels = example.urb_labels()
        total += urb_labels.size
        positive += float(urb_labels.sum())
    return positive / total if total else 0.0
