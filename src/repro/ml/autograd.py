"""Minimal reverse-mode automatic differentiation over NumPy.

The paper trains its models with PyTorch + PyTorch Geometric; neither is
available offline, so this module provides the handful of differentiable
operations the PIC architecture needs: broadcasting arithmetic, matmul,
ReLU, row gather (embeddings), edge propagation (the sparse
gather-multiply-scatter at the heart of a GCN layer), masked mean pooling,
and fused numerically-stable losses (sigmoid-BCE and softmax-CE).

Design notes:

- A :class:`Tensor` wraps an ``ndarray`` plus an optional backward closure;
  :meth:`Tensor.backward` runs a topological sweep.
- Gradients of broadcast operands are un-broadcast by summing over the
  broadcast axes, so biases and scalar coefficients "just work".
- :class:`Parameter` marks leaf tensors the optimizer should update.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

__all__ = [
    "Tensor",
    "Parameter",
    "matmul",
    "relu",
    "gather_rows",
    "propagate",
    "spmm",
    "rowwise_sum",
    "masked_mean",
    "dropout",
    "bce_with_logits",
    "softmax_cross_entropy",
    "concat_rows",
]

ArrayLike = Union[np.ndarray, float, int]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of NumPy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum away leading extra axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A node in the computation graph."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Tuple["Tensor", ...] = (),
        backward: Optional[Callable[[np.ndarray], None]] = None,
    ) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = requires_grad or any(p.requires_grad for p in parents)
        self._parents = parents
        self._backward = backward

    # -- plumbing -----------------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    def accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor (defaults to d(self)=1)."""
        topo: List[Tensor] = []
        visited: Set[int] = set()

        def visit(node: Tensor) -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo.append(node)

        visit(self)
        if grad is None:
            grad = np.ones_like(self.data)
        self.accumulate(np.asarray(grad, dtype=np.float64))
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # -- arithmetic -----------------------------------------------------------

    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike]) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._lift(other)
        out = Tensor(self.data + other.data, parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other.accumulate(_unbroadcast(grad, other.data.shape))

        out._backward = backward
        return out

    __radd__ = __add__

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor._lift(other)
        out = Tensor(self.data * other.data, parents=(self, other))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other.accumulate(_unbroadcast(grad * self.data, other.data.shape))

        out._backward = backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-Tensor._lift(other))

    def sum(self) -> "Tensor":
        out = Tensor(self.data.sum(), parents=(self,))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self.accumulate(np.broadcast_to(grad, self.data.shape).copy())

        out._backward = backward
        return out

    def mean(self) -> "Tensor":
        count = self.data.size
        return self.sum() * (1.0 / max(count, 1))

    def item(self) -> float:
        return float(self.data)


class Parameter(Tensor):
    """A learnable leaf tensor."""

    def __init__(self, data: ArrayLike, name: str = "") -> None:
        super().__init__(data, requires_grad=True)
        self.name = name

    __slots__ = ("name",)

    def zero_grad(self) -> None:
        self.grad = None


def matmul(a: Tensor, b: Tensor) -> Tensor:
    out = Tensor(a.data @ b.data, parents=(a, b))

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a.accumulate(grad @ b.data.T)
        if b.requires_grad:
            b.accumulate(a.data.T @ grad)

    out._backward = backward
    return out


def relu(x: Tensor) -> Tensor:
    mask = x.data > 0
    out = Tensor(x.data * mask, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate(grad * mask)

    out._backward = backward
    return out


def gather_rows(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup (embedding): out[i] = table[indices[i]]."""
    indices = np.asarray(indices, dtype=np.int64)
    out = Tensor(table.data[indices], parents=(table,))

    def backward(grad: np.ndarray) -> None:
        if table.requires_grad:
            accumulated = np.zeros_like(table.data)
            np.add.at(accumulated, indices, grad)
            table.accumulate(accumulated)

    out._backward = backward
    return out


def propagate(
    h: Tensor,
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    weights: np.ndarray,
) -> Tensor:
    """Sparse message passing: out[d] = Σ_{edges e: dst[e]=d} w_e · h[src[e]].

    ``weights`` is a per-edge normalisation coefficient (non-learnable).
    This single op is the core of every GCN layer.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    aggregated = np.zeros((num_nodes, h.data.shape[1]))
    if src.size:
        np.add.at(aggregated, dst, h.data[src] * weights[:, None])
    out = Tensor(aggregated, parents=(h,))

    def backward(grad: np.ndarray) -> None:
        if h.requires_grad and src.size:
            dh = np.zeros_like(h.data)
            np.add.at(dh, src, grad[dst] * weights[:, None])
            h.accumulate(dh)
        elif h.requires_grad:
            h.accumulate(np.zeros_like(h.data))

    out._backward = backward
    return out


def spmm(matrix, x: Tensor) -> Tensor:
    """Sparse-dense product ``matrix @ x`` with a constant sparse matrix.

    ``matrix`` is any scipy.sparse matrix (typically CSR); the GNN uses it
    for normalised adjacency propagation. Gradient: ``matrix.T @ grad``.
    """
    out = Tensor(matrix @ x.data, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate(matrix.T @ grad)

    out._backward = backward
    return out


def masked_mean(x: Tensor, mask: np.ndarray) -> Tensor:
    """Mean over axis 1 of a (N, T, D) tensor, restricted by mask (N, T)."""
    mask = np.asarray(mask, dtype=np.float64)
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)  # (N, 1)
    pooled = (x.data * mask[:, :, None]).sum(axis=1) / counts
    out = Tensor(pooled, parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            expanded = (grad / counts)[:, None, :] * mask[:, :, None]
            x.accumulate(expanded)

    out._backward = backward
    return out


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; identity when not training or rate <= 0."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.data.shape) < keep) / keep
    return x * Tensor(mask)


def rowwise_sum(x: Tensor) -> Tensor:
    """Sum over the last axis, keeping a trailing singleton: (N, D) → (N, 1)."""
    out = Tensor(x.data.sum(axis=-1, keepdims=True), parents=(x,))

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x.accumulate(np.broadcast_to(grad, x.data.shape).copy())

    out._backward = backward
    return out


def concat_rows(parts: Sequence[Tensor]) -> Tensor:
    """Concatenate along the last axis."""
    out_data = np.concatenate([p.data for p in parts], axis=-1)
    out = Tensor(out_data, parents=tuple(parts))
    offsets = np.cumsum([0] + [p.data.shape[-1] for p in parts])

    def backward(grad: np.ndarray) -> None:
        for part, start, end in zip(parts, offsets[:-1], offsets[1:]):
            if part.requires_grad:
                part.accumulate(grad[..., start:end])

    out._backward = backward
    return out


def bce_with_logits(
    logits: Tensor, targets: np.ndarray, sample_weights: Optional[np.ndarray] = None
) -> Tensor:
    """Numerically stable mean binary cross-entropy on logits.

    loss_i = max(z,0) - z·y + log(1 + exp(-|z|)); d loss / dz = σ(z) - y.
    """
    z = logits.data
    y = np.asarray(targets, dtype=np.float64)
    weights = (
        np.ones_like(y)
        if sample_weights is None
        else np.asarray(sample_weights, dtype=np.float64)
    )
    total_weight = max(float(weights.sum()), 1e-12)
    per_element = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    value = float((per_element * weights).sum() / total_weight)
    out = Tensor(value, parents=(logits,))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            sigma = 1.0 / (1.0 + np.exp(-z))
            logits.accumulate(grad * weights * (sigma - y) / total_weight)

    out._backward = backward
    return out


def softmax_cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy; ``targets`` are class indices (N,)."""
    z = logits.data
    targets = np.asarray(targets, dtype=np.int64)
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = z.shape[0]
    losses = -np.log(np.maximum(probs[np.arange(n), targets], 1e-12))
    out = Tensor(float(losses.mean()), parents=(logits,))

    def backward(grad: np.ndarray) -> None:
        if logits.requires_grad:
            dz = probs.copy()
            dz[np.arange(n), targets] -= 1.0
            logits.accumulate(grad * dz / n)

    out._backward = backward
    return out
