"""Predictor calibration and measured operating points.

Two jobs:

1. **Operating point**: measure a trained predictor's TPR, FPR and the
   positive base rate on a labeled dataset — the three numbers the §A.6
   rejection-filter model needs. This closes the loop between the ML
   microbenchmark (Table 1) and the end-to-end economics: instead of a
   hypothetical filter, the filter model can be fed *this* model's
   measured behaviour.

2. **Probability calibration**: reliability curve and Expected Calibration
   Error (ECE) of the predicted coverage probabilities. A filter threshold
   is only meaningful if the probabilities roughly mean what they say.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.filtermodel import FilterModel
from repro.graphs.dataset import CTExample
from repro.ml.baselines import CoveragePredictor
from repro.ml.metrics import classification_metrics

__all__ = [
    "OperatingPoint",
    "measure_operating_point",
    "reliability_curve",
    "expected_calibration_error",
]


@dataclass(frozen=True)
class OperatingPoint:
    """A predictor's measured confusion behaviour on URB nodes."""

    base_rate: float
    true_positive_rate: float
    false_positive_rate: float
    num_nodes: int

    def filter_model(self, **cost_overrides) -> FilterModel:
        """The §A.6 economics of a filter with *this* behaviour."""
        from repro.core.costs import CostModel

        return FilterModel(
            fruitful_probability=self.base_rate,
            true_positive_rate=self.true_positive_rate,
            false_positive_rate=self.false_positive_rate,
            costs=CostModel(**cost_overrides),
        )


def _pooled_urbs(
    predictor: CoveragePredictor, examples: Sequence[CTExample]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    labels, predictions, scores = [], [], []
    for example in examples:
        mask = example.graph.urb_mask()
        if not mask.any():
            continue
        labels.append(example.labels[mask])
        predictions.append(predictor.predict(example.graph)[mask])
        scores.append(predictor.predict_proba(example.graph)[mask])
    if not labels:
        return np.zeros(0), np.zeros(0, dtype=bool), np.zeros(0)
    return (
        np.concatenate(labels),
        np.concatenate(predictions).astype(bool),
        np.concatenate(scores),
    )


def measure_operating_point(
    predictor: CoveragePredictor, examples: Sequence[CTExample]
) -> OperatingPoint:
    """Measure (base rate, TPR, FPR) over pooled evaluation URBs."""
    labels, predictions, _ = _pooled_urbs(predictor, examples)
    if labels.size == 0:
        return OperatingPoint(0.0, 0.0, 0.0, 0)
    metrics = classification_metrics(labels, predictions)
    return OperatingPoint(
        base_rate=float(labels.mean()),
        true_positive_rate=metrics.recall,
        false_positive_rate=1.0 - metrics.specificity,
        num_nodes=int(labels.size),
    )


def reliability_curve(
    predictor: CoveragePredictor,
    examples: Sequence[CTExample],
    bins: int = 10,
) -> List[Tuple[float, float, int]]:
    """(mean predicted probability, observed frequency, count) per bin.

    Bins with no samples are omitted.
    """
    labels, _, scores = _pooled_urbs(predictor, examples)
    if labels.size == 0:
        return []
    edges = np.linspace(0.0, 1.0, bins + 1)
    curve: List[Tuple[float, float, int]] = []
    for low, high in zip(edges[:-1], edges[1:]):
        in_bin = (scores >= low) & (
            (scores < high) if high < 1.0 else (scores <= high)
        )
        count = int(in_bin.sum())
        if count == 0:
            continue
        curve.append(
            (float(scores[in_bin].mean()), float(labels[in_bin].mean()), count)
        )
    return curve


def expected_calibration_error(
    predictor: CoveragePredictor,
    examples: Sequence[CTExample],
    bins: int = 10,
) -> float:
    """Weighted mean |confidence - accuracy| over probability bins."""
    curve = reliability_curve(predictor, examples, bins)
    total = sum(count for _, _, count in curve)
    if total == 0:
        return 0.0
    return float(
        sum(abs(confidence - observed) * count for confidence, observed, count in curve)
        / total
    )
