"""Mini-batching of CT graphs.

PyTorch Geometric trains GNNs on batches formed as disjoint unions of
graphs — one big block-diagonal adjacency, node features concatenated.
The same trick works here: message passing never crosses components, so a
merged batch computes exactly the per-graph results while amortising the
Python/NumPy overhead of many small forward passes.

The per-graph BCE normalisation of §3.2 ("binary cross entropy within
each graph first") is preserved through per-node weights: every node's
weight is divided by its graph's total weight, so each graph contributes
equally to the batch loss regardless of size.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from repro.errors import DatasetError
from repro.graphs.ctgraph import CTGraph
from repro.graphs.dataset import CTExample

__all__ = ["merge_examples", "iter_batches"]


def merge_examples(examples: Sequence[CTExample]) -> CTExample:
    """Disjoint-union merge of CT examples into one batch example.

    Token matrices must share their width (they do when built by one
    vocabulary/builder). The merged example carries concatenated labels
    and dataflow-edge labels, with edge indices shifted per component.
    """
    if not examples:
        raise DatasetError("cannot merge an empty batch")
    width = examples[0].graph.token_ids.shape[1]
    for example in examples:
        if example.graph.token_ids.shape[1] != width:
            raise DatasetError("token widths differ across batch members")

    node_offsets = np.cumsum([0] + [e.graph.num_nodes for e in examples])
    edge_row_offsets = np.cumsum([0] + [e.graph.num_edges for e in examples])

    edges: List[np.ndarray] = []
    dataflow_rows: List[np.ndarray] = []
    for offset, row_offset, example in zip(
        node_offsets[:-1], edge_row_offsets[:-1], examples
    ):
        graph = example.graph
        if graph.num_edges:
            shifted = graph.edges.copy()
            shifted[:, 0] += offset
            shifted[:, 1] += offset
            edges.append(shifted)
        if example.num_dataflow_edges:
            dataflow_rows.append(example.dataflow_edge_rows + row_offset)

    merged_graph = CTGraph(
        kernel_version=examples[0].graph.kernel_version,
        cti_key=(-1, -1),
        hints=(),
        node_types=np.concatenate([e.graph.node_types for e in examples]),
        node_threads=np.concatenate([e.graph.node_threads for e in examples]),
        node_blocks=np.concatenate([e.graph.node_blocks for e in examples]),
        hint_flags=np.concatenate([e.graph.hint_flags for e in examples]),
        token_ids=np.vstack([e.graph.token_ids for e in examples]),
        edges=np.vstack(edges) if edges else np.zeros((0, 3), dtype=np.int64),
        node_index={},
        base_cache=None,
    )
    return CTExample(
        graph=merged_graph,
        labels=np.concatenate([e.labels for e in examples]),
        dataflow_edge_rows=(
            np.concatenate(dataflow_rows)
            if dataflow_rows
            else np.zeros(0, dtype=np.int64)
        ),
        dataflow_labels=np.concatenate(
            [e.dataflow_labels for e in examples]
        )
        if dataflow_rows
        else np.zeros(0, dtype=np.float64),
    )


def per_graph_weights(examples: Sequence[CTExample]) -> np.ndarray:
    """Node weights making each component count equally in a batch loss."""
    parts = []
    for example in examples:
        n = max(example.num_nodes, 1)
        parts.append(np.full(example.num_nodes, 1.0 / n))
    return np.concatenate(parts) if parts else np.zeros(0)


def iter_batches(
    examples: Sequence[CTExample],
    batch_size: int,
    rng: np.random.Generator,
) -> Iterator[CTExample]:
    """Shuffle and yield merged batches of ``batch_size`` examples."""
    if batch_size < 1:
        raise DatasetError("batch size must be >= 1")
    order = rng.permutation(len(examples))
    for start in range(0, len(order), batch_size):
        chunk = [examples[int(i)] for i in order[start : start + batch_size]]
        if batch_size == 1:
            yield chunk[0]
        else:
            yield merge_examples(chunk)
