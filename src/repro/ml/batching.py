"""Mini-batching of CT graphs.

PyTorch Geometric trains GNNs on batches formed as disjoint unions of
graphs — one big block-diagonal adjacency, node features concatenated.
The same trick works here: message passing never crosses components, so a
merged batch computes exactly the per-graph results while amortising the
Python/NumPy overhead of many small forward passes.

The per-graph BCE normalisation of §3.2 ("binary cross entropy within
each graph first") is preserved through per-node weights: every node's
weight is divided by its graph's total weight, so each graph contributes
equally to the batch loss regardless of size.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError
from repro.graphs.ctgraph import CTGraph
from repro.graphs.dataset import CTExample

__all__ = ["merge_graphs", "merge_examples", "iter_batches", "node_offsets"]


def node_offsets(graphs: Sequence[CTGraph]) -> np.ndarray:
    """Cumulative node offsets of a batch: shape (len(graphs) + 1,)."""
    return np.cumsum([0] + [graph.num_nodes for graph in graphs])


def merge_graphs(graphs: Sequence[CTGraph]) -> Tuple[CTGraph, np.ndarray]:
    """Disjoint-union merge of bare CT graphs into one block-diagonal graph.

    Returns the merged graph and the node offsets (cumsum with leading 0)
    needed to split per-node results back out per component. Token
    matrices must share their width (they do when built by one
    vocabulary/builder).
    """
    if not graphs:
        raise DatasetError("cannot merge an empty batch")
    width = graphs[0].token_ids.shape[1]
    for graph in graphs:
        if graph.token_ids.shape[1] != width:
            raise DatasetError("token widths differ across batch members")

    offsets = node_offsets(graphs)
    edges: List[np.ndarray] = []
    for offset, graph in zip(offsets[:-1], graphs):
        if graph.num_edges:
            shifted = graph.edges.copy()
            shifted[:, 0] += offset
            shifted[:, 1] += offset
            edges.append(shifted)

    merged = CTGraph(
        kernel_version=graphs[0].kernel_version,
        cti_key=(-1, -1),
        hints=(),
        node_types=np.concatenate([g.node_types for g in graphs]),
        node_threads=np.concatenate([g.node_threads for g in graphs]),
        node_blocks=np.concatenate([g.node_blocks for g in graphs]),
        hint_flags=np.concatenate([g.hint_flags for g in graphs]),
        token_ids=np.vstack([g.token_ids for g in graphs]),
        edges=np.vstack(edges) if edges else np.zeros((0, 3), dtype=np.int64),
        node_index={},
        base_cache=None,
    )
    return merged, offsets


def merge_examples(examples: Sequence[CTExample]) -> CTExample:
    """Disjoint-union merge of CT examples into one batch example.

    The merged example carries concatenated labels and dataflow-edge
    labels, with edge indices shifted per component.
    """
    merged_graph, _ = merge_graphs([example.graph for example in examples])

    edge_row_offsets = np.cumsum([0] + [e.graph.num_edges for e in examples])
    dataflow_rows: List[np.ndarray] = []
    for row_offset, example in zip(edge_row_offsets[:-1], examples):
        if example.num_dataflow_edges:
            dataflow_rows.append(example.dataflow_edge_rows + row_offset)

    return CTExample(
        graph=merged_graph,
        labels=np.concatenate([e.labels for e in examples]),
        dataflow_edge_rows=(
            np.concatenate(dataflow_rows)
            if dataflow_rows
            else np.zeros(0, dtype=np.int64)
        ),
        dataflow_labels=np.concatenate(
            [e.dataflow_labels for e in examples]
        )
        if dataflow_rows
        else np.zeros(0, dtype=np.float64),
    )


def per_graph_weights(examples: Sequence[CTExample]) -> np.ndarray:
    """Node weights making each component count equally in a batch loss."""
    parts = []
    for example in examples:
        n = max(example.num_nodes, 1)
        parts.append(np.full(example.num_nodes, 1.0 / n))
    return np.concatenate(parts) if parts else np.zeros(0)


def iter_batches(
    examples: Sequence[CTExample],
    batch_size: int,
    rng: np.random.Generator,
) -> Iterator[CTExample]:
    """Shuffle and yield merged batches of ``batch_size`` examples."""
    if batch_size < 1:
        raise DatasetError("batch size must be >= 1")
    order = rng.permutation(len(examples))
    for start in range(0, len(order), batch_size):
        chunk = [examples[int(i)] for i in order[start : start + batch_size]]
        if batch_size == 1:
            yield chunk[0]
        else:
            yield merge_examples(chunk)
