"""Training, model selection, threshold tuning, and fine-tuning (§5.1.2).

The loop mirrors the paper's methodology:

- per-graph BCE minimised with Adam;
- after each epoch, Average Precision on *validation URBs* is computed and
  the best checkpoint across epochs is kept ("we chose the model training
  checkpoint with the highest AP ... computed over URBs only");
- the classification threshold is then tuned for the best mean F2 on
  validation URBs ("F2 favors a higher recall over a higher precision");
- :func:`fine_tune_pic` forks an existing model and continues training on a
  new kernel version's data — the PIC-6.ft.* variants of Table 2;
- :func:`hyperparameter_search` is the miniature of the paper's 80-config
  sweep, and reproduces its observation that deeper GNNs do better.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro import rng as rngmod
from repro.errors import DatasetError
from repro.graphs.dataset import CTExample
from repro.ml.autograd import Parameter
from repro.ml.metrics import average_precision, tune_threshold
from repro.ml.optim import Adam
from repro.ml.pic import PICConfig, PICModel

__all__ = [
    "TrainingConfig",
    "TrainingResult",
    "train_pic",
    "fine_tune_pic",
    "fine_tune_with_replay",
    "hyperparameter_search",
    "validation_urb_ap",
]


@dataclass(frozen=True)
class TrainingConfig:
    """Knobs of one training run."""

    epochs: int = 5
    learning_rate: float = 3e-3
    clip_norm: float = 5.0
    weight_decay: float = 0.0
    seed: int = 0
    threshold_beta: float = 2.0
    #: Graphs merged per gradient step (disjoint-union batching); 1 keeps
    #: the paper's one-graph-per-step loop.
    batch_size: int = 1


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    model: PICModel
    best_epoch: int
    history: List[Dict[str, float]] = field(default_factory=list)
    threshold: float = 0.5
    threshold_fbeta: float = 0.0
    num_training_graphs: int = 0

    @property
    def best_validation_ap(self) -> float:
        if not self.history:
            return 0.0
        return max(entry["validation_urb_ap"] for entry in self.history)


def validation_urb_ap(model: PICModel, examples: Sequence[CTExample]) -> float:
    """Mean per-graph Average Precision on URB nodes."""
    values = []
    for example in examples:
        mask = example.graph.urb_mask()
        if not mask.any() or example.labels[mask].sum() == 0:
            continue
        scores = model.predict_proba(example.graph)[mask]
        values.append(average_precision(example.labels[mask], scores))
    return float(np.mean(values)) if values else 0.0


def _tune_model_threshold(
    model: PICModel, validation: Sequence[CTExample], beta: float
) -> Tuple[float, float]:
    """Global F-beta threshold over pooled validation URB nodes."""
    all_labels, all_scores = [], []
    for example in validation:
        mask = example.graph.urb_mask()
        if not mask.any():
            continue
        all_labels.append(example.labels[mask])
        all_scores.append(model.predict_proba(example.graph)[mask])
    if not all_labels:
        return 0.5, 0.0
    labels = np.concatenate(all_labels)
    scores = np.concatenate(all_scores)
    return tune_threshold(labels, scores, beta=beta)


def train_pic(
    model: PICModel,
    train: Sequence[CTExample],
    validation: Sequence[CTExample],
    config: Optional[TrainingConfig] = None,
) -> TrainingResult:
    """Train ``model`` in place; keeps the best-AP checkpoint."""
    config = config or TrainingConfig()
    if not train:
        raise DatasetError("empty training set")
    rng = rngmod.split(config.seed, "train-shuffle")
    optimizer = Adam(
        model.parameters(),
        learning_rate=config.learning_rate,
        weight_decay=config.weight_decay,
        clip_norm=config.clip_norm,
    )
    history: List[Dict[str, float]] = []
    best_state: Optional[Dict[str, np.ndarray]] = None
    best_ap = -1.0
    best_epoch = 0
    from repro.ml.batching import iter_batches

    with obs.span(
        "train.pic",
        model=model.config.name,
        epochs=config.epochs,
        graphs=len(train),
    ) as span:
        for epoch in range(config.epochs):
            epoch_started = time.perf_counter() if obs.is_enabled() else 0.0
            losses = []
            for example in iter_batches(train, config.batch_size, rng):
                optimizer.zero_grad()
                loss = model.loss(example, training=True)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            epoch_ap = validation_urb_ap(model, validation)
            history.append(
                {
                    "epoch": float(epoch),
                    "train_loss": float(np.mean(losses)),
                    "validation_urb_ap": epoch_ap,
                }
            )
            if obs.is_enabled():
                epoch_seconds = time.perf_counter() - epoch_started
                obs.add("train.epochs")
                obs.add("train.gradient_steps", len(losses))
                obs.observe("train.epoch_seconds", epoch_seconds)
                obs.point(
                    "train.epoch",
                    model=model.config.name,
                    epoch=epoch,
                    train_loss=history[-1]["train_loss"],
                    validation_urb_ap=epoch_ap,
                    seconds=round(epoch_seconds, 6),
                )
            if epoch_ap > best_ap:
                best_ap = epoch_ap
                best_epoch = epoch
                best_state = model.state_dict()
        if best_state is not None:
            model.load_state_dict(best_state)
        threshold, fbeta = _tune_model_threshold(
            model, validation, beta=config.threshold_beta
        )
        model.threshold = threshold
        span.set(best_epoch=best_epoch, best_validation_ap=best_ap,
                 threshold=round(threshold, 4))
    return TrainingResult(
        model=model,
        best_epoch=best_epoch,
        history=history,
        threshold=threshold,
        threshold_fbeta=fbeta,
        num_training_graphs=len(train),
    )


def fine_tune_pic(
    base: PICModel,
    train: Sequence[CTExample],
    validation: Sequence[CTExample],
    config: Optional[TrainingConfig] = None,
    name: str = "PIC.ft",
) -> TrainingResult:
    """Fork ``base`` and continue training on new-version data (§5.4).

    The base model is untouched; the returned result holds the fine-tuned
    clone. Defaults to a gentler learning rate than from-scratch training.
    """
    config = config or TrainingConfig(epochs=2, learning_rate=1e-3)
    with obs.span("train.fine_tune", base=base.config.name, model=name):
        clone = base.clone(name=name, seed=config.seed)
        return train_pic(clone, train, validation, config)


def fine_tune_with_replay(
    base: PICModel,
    fresh: Sequence[CTExample],
    replay: Sequence[CTExample],
    validation: Sequence[CTExample],
    config: Optional[TrainingConfig] = None,
    name: str = "PIC.ft",
) -> TrainingResult:
    """Fine-tune on fresh campaign labels mixed with replay examples.

    The continuous-learning worker's training recipe: ``fresh`` is the
    sliding window of journal-tailed labels, ``replay`` a sample of the
    original training distribution that anchors the model against
    catastrophic forgetting. The two sets are concatenated and shuffled
    together by :func:`train_pic`'s seeded epoch shuffle, so the mix is
    a pure function of the inputs and ``config.seed``.
    """
    combined = list(fresh) + list(replay)
    return fine_tune_pic(base, combined, validation, config=config, name=name)


def hyperparameter_search(
    base_config: PICConfig,
    train: Sequence[CTExample],
    validation: Sequence[CTExample],
    num_layers_grid: Sequence[int] = (1, 2, 4),
    hidden_dim_grid: Sequence[int] = (32, 48),
    learning_rate_grid: Sequence[float] = (1e-3, 3e-3),
    epochs: int = 3,
    seed: int = 0,
) -> List[Dict[str, float]]:
    """Small grid search over PIC hyperparameters (§5.1.2 in miniature).

    Returns one record per configuration with its best validation URB AP,
    sorted best-first. The paper's headline observation — deeper GNN stacks
    reach higher AP because concurrent behaviour depends on longer-range
    flows — is directly visible in the returned records.
    """
    records: List[Dict[str, float]] = []
    for num_layers, hidden_dim, learning_rate in itertools.product(
        num_layers_grid, hidden_dim_grid, learning_rate_grid
    ):
        config = replace(
            base_config,
            num_layers=num_layers,
            hidden_dim=hidden_dim,
            name=f"PIC.l{num_layers}.d{hidden_dim}.lr{learning_rate}",
        )
        model = PICModel(config, seed=seed)
        result = train_pic(
            model,
            train,
            validation,
            TrainingConfig(epochs=epochs, learning_rate=learning_rate, seed=seed),
        )
        records.append(
            {
                "num_layers": float(num_layers),
                "hidden_dim": float(hidden_dim),
                "learning_rate": learning_rate,
                "best_validation_ap": result.best_validation_ap,
            }
        )
    records.sort(key=lambda record: -record["best_validation_ap"])
    return records
