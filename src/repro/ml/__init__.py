"""Learned coverage prediction: the PyTorch(-Geometric) stand-in.

A compact reverse-mode autograd over NumPy (`autograd`), the BERT-like
assembly encoder with masked-token pre-training (`encoder`), a relational
GCN (`gnn`), the PIC model that combines them (`pic`), training/fine-tuning
loops with model selection and threshold tuning (`training`), the paper's
baseline predictors (`baselines`), and classification metrics (`metrics`).
"""

from repro.ml.autograd import Tensor, Parameter
from repro.ml.optim import Adam
from repro.ml.metrics import (
    BinaryMetrics,
    average_precision,
    classification_metrics,
    tune_threshold,
)
from repro.ml.encoder import AsmEncoder, EncoderConfig, pretrain_encoder
from repro.ml.gnn import RelationalGCN, GNNConfig
from repro.ml.pic import PICConfig, PICModel
from repro.ml.baselines import AllPositive, BiasedCoin, FairCoin, CoveragePredictor
from repro.ml.training import TrainingConfig, TrainingResult, train_pic, fine_tune_pic
from repro.ml.batching import iter_batches, merge_examples
from repro.ml.calibration import (
    OperatingPoint,
    expected_calibration_error,
    measure_operating_point,
    reliability_curve,
)
from repro.ml.evaluation import evaluate_predictor, predictor_table

__all__ = [
    "Tensor",
    "Parameter",
    "Adam",
    "BinaryMetrics",
    "average_precision",
    "classification_metrics",
    "tune_threshold",
    "AsmEncoder",
    "EncoderConfig",
    "pretrain_encoder",
    "RelationalGCN",
    "GNNConfig",
    "PICConfig",
    "PICModel",
    "CoveragePredictor",
    "AllPositive",
    "FairCoin",
    "BiasedCoin",
    "TrainingConfig",
    "TrainingResult",
    "train_pic",
    "fine_tune_pic",
    "merge_examples",
    "iter_batches",
    "OperatingPoint",
    "measure_operating_point",
    "reliability_curve",
    "expected_calibration_error",
    "evaluate_predictor",
    "predictor_table",
]
