"""Optimizers."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

import numpy as np

from repro.ml.autograd import Parameter

__all__ = ["Adam"]


class Adam:
    """Adam with optional gradient clipping (global norm)."""

    def __init__(
        self,
        parameters: Sequence[Parameter],
        learning_rate: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
        clip_norm: float = 0.0,
    ) -> None:
        self.parameters = list(parameters)
        self.learning_rate = learning_rate
        self.beta1, self.beta2 = betas
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.grad = None

    def _clip(self) -> None:
        if self.clip_norm <= 0.0:
            return
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = total**0.5
        if norm > self.clip_norm:
            scale = self.clip_norm / (norm + 1e-12)
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale

    def step(self) -> None:
        self._step += 1
        self._clip()
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for index, parameter in enumerate(self.parameters):
            grad = parameter.grad
            if grad is None:
                continue
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * parameter.data
            m = self._m[index]
            v = self._v[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
