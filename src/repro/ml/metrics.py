"""Binary-classification metrics used throughout the evaluation.

Implements everything Table 1 reports — precision, recall, F1, accuracy,
balanced accuracy — plus Average Precision (used for model selection,
§5.1.2) and F-beta threshold tuning (the paper tunes the classification
threshold for the best F2 on validation URBs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "BinaryMetrics",
    "classification_metrics",
    "average_precision",
    "fbeta_score",
    "tune_threshold",
    "mean_metrics",
]


@dataclass(frozen=True)
class BinaryMetrics:
    """Confusion-matrix-derived metrics for one prediction set."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def precision(self) -> float:
        denominator = self.tp + self.fp
        return self.tp / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.tp + self.fn
        return self.tp / denominator if denominator else 0.0

    @property
    def specificity(self) -> float:
        denominator = self.tn + self.fp
        return self.tn / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else 0.0

    @property
    def balanced_accuracy(self) -> float:
        return 0.5 * (self.recall + self.specificity)

    @property
    def f1(self) -> float:
        return self.fbeta(1.0)

    def fbeta(self, beta: float) -> float:
        precision, recall = self.precision, self.recall
        if precision == 0.0 and recall == 0.0:
            return 0.0
        beta2 = beta * beta
        denominator = beta2 * precision + recall
        if denominator == 0.0:
            return 0.0
        return (1.0 + beta2) * precision * recall / denominator


def classification_metrics(
    labels: np.ndarray, predictions: np.ndarray
) -> BinaryMetrics:
    """Confusion counts from boolean/0-1 arrays."""
    labels = np.asarray(labels).astype(bool)
    predictions = np.asarray(predictions).astype(bool)
    tp = int(np.sum(labels & predictions))
    fp = int(np.sum(~labels & predictions))
    tn = int(np.sum(~labels & ~predictions))
    fn = int(np.sum(labels & ~predictions))
    return BinaryMetrics(tp=tp, fp=fp, tn=tn, fn=fn)


def fbeta_score(labels: np.ndarray, predictions: np.ndarray, beta: float) -> float:
    return classification_metrics(labels, predictions).fbeta(beta)


def average_precision(labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the precision-recall curve (AP), step interpolation.

    Returns 0.0 when there are no positives (undefined AP), which keeps
    model selection well-behaved on sparse graphs.
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    num_positive = int(labels.sum())
    if num_positive == 0 or labels.size == 0:
        return 0.0
    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    cumulative_tp = np.cumsum(sorted_labels)
    ranks = np.arange(1, labels.size + 1)
    precision_at_rank = cumulative_tp / ranks
    return float((precision_at_rank * sorted_labels).sum() / num_positive)


def tune_threshold(
    labels: np.ndarray,
    scores: np.ndarray,
    beta: float = 2.0,
    grid: Optional[Sequence[float]] = None,
) -> Tuple[float, float]:
    """Pick the probability threshold maximising F-beta (default F2).

    Returns ``(threshold, score)``. The paper tunes on validation URBs with
    F2 "because it favors a higher recall over a higher precision" (§5.1.2).
    """
    labels = np.asarray(labels).astype(bool)
    scores = np.asarray(scores, dtype=np.float64)
    if grid is None:
        grid = np.linspace(0.05, 0.95, 19)
    best_threshold, best_score = 0.5, -1.0
    for threshold in grid:
        score = fbeta_score(labels, scores >= threshold, beta)
        if score > best_score:
            best_threshold, best_score = float(threshold), float(score)
    return best_threshold, best_score


def mean_metrics(per_graph: Iterable[BinaryMetrics]) -> dict:
    """Average metric values across graphs (Table 1 averages per graph)."""
    rows = list(per_graph)
    if not rows:
        return {
            "f1": 0.0,
            "precision": 0.0,
            "recall": 0.0,
            "accuracy": 0.0,
            "balanced_accuracy": 0.0,
        }
    return {
        "f1": float(np.mean([m.f1 for m in rows])),
        "precision": float(np.mean([m.precision for m in rows])),
        "recall": float(np.mean([m.recall for m in rows])),
        "accuracy": float(np.mean([m.accuracy for m in rows])),
        "balanced_accuracy": float(np.mean([m.balanced_accuracy for m in rows])),
    }
