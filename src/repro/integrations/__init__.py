"""PIC integration case studies (§5.6): Razzer and Snowboard stand-ins."""

from repro.integrations.razzer import (
    RazzerConfig,
    RazzerHarness,
    RazzerOutcome,
    RazzerVariant,
)
from repro.integrations.snowboard import (
    InsPairCluster,
    SnowboardConfig,
    SnowboardHarness,
    SamplerOutcome,
)

__all__ = [
    "RazzerConfig",
    "RazzerHarness",
    "RazzerOutcome",
    "RazzerVariant",
    "InsPairCluster",
    "SnowboardConfig",
    "SnowboardHarness",
    "SamplerOutcome",
]
