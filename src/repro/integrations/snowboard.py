"""Snowboard cluster sampling with PIC (§5.6.2, Table 5).

Snowboard clusters CTIs with the INS-PAIR strategy: a CTI belongs to the
cluster of ``(write instruction, read instruction)`` when one constituent
STI's sequential run writes a shared memory address the other STI's run
reads. Published Snowboard samples 1 exemplar CTI per cluster; the paper
shows fertile clusters need more exemplars, and compares samplers on the
*buggy clusters*:

- **SB-RND(q)**: sample a fixed fraction ``q`` of the cluster at random.
- **SB-PIC(S1/S2)**: predict each CTI's coverage under a synthetic
  single-hint schedule that makes the write yield to the read, and keep
  CTIs whose predicted coverage is interesting under strategy S1 or S2.

Selected CTIs then go through regular interleaving exploration; a trial is
a *bug-finding run* when the injected bug manifests. Repeating trials
yields the bug-finding probability and the effective sampling rate, the
two columns of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import rng as rngmod
from repro.core.scoring import DEFAULT_BATCH_SIZE, CandidateScorer
from repro.core.strategies import SelectionStrategy, make_strategy
from repro.execution.concurrent import ScheduleHint, run_concurrent
from repro.execution.pct import propose_hint_pairs
from repro.execution.races import find_potential_races
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.graphs.dataset import GraphDatasetBuilder
from repro.kernel.bugs import BugKind, BugSpec
from repro.ml.baselines import CoveragePredictor

__all__ = [
    "InsPairCluster",
    "SnowboardConfig",
    "SamplerOutcome",
    "SnowboardHarness",
]


@dataclass
class InsPairCluster:
    """One INS-PAIR cluster: CTIs that can realise a write/read pair."""

    write_iid: int
    read_iid: int
    address: int
    #: (writer entry, reader entry) CTIs, writer thread first.
    ctis: List[Tuple[CorpusEntry, CorpusEntry]] = field(default_factory=list)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.write_iid, self.read_iid)

    def __len__(self) -> int:
        return len(self.ctis)


@dataclass(frozen=True)
class SnowboardConfig:
    """Budgets of the sampling study."""

    #: Interleavings explored per selected CTI.
    schedules_per_cti: int = 12
    #: Trials per (cluster, sampler) for the probability estimate
    #: (the paper uses 1000; scaled for the simulated substrate).
    trials: int = 50
    #: Cap on CTIs per cluster considered.
    max_cluster_size: int = 64
    #: Probe graphs scored per batched inference call (see
    #: :mod:`repro.core.scoring`).
    score_batch_size: int = DEFAULT_BATCH_SIZE


@dataclass
class SamplerOutcome:
    """One Table 5 row fragment: a sampler's result on one buggy cluster."""

    sampler: str
    cluster_key: Tuple[int, int]
    bug_finding_probability: float
    mean_ctis_executed: float
    sampling_rate: float


class SnowboardHarness:
    """Builds INS-PAIR clusters and runs the Table 5 sampling study."""

    def __init__(
        self,
        graphs: GraphDatasetBuilder,
        predictor: Optional[CoveragePredictor] = None,
        config: Optional[SnowboardConfig] = None,
        seed: int = 0,
    ) -> None:
        self.graphs = graphs
        self.kernel = graphs.kernel
        self.predictor = predictor
        self.config = config or SnowboardConfig()
        self.scorer = (
            None
            if predictor is None
            else CandidateScorer(
                predictor, batch_size=self.config.score_batch_size
            )
        )
        self.seed = seed
        #: (cluster key, trial, writer id, reader id) -> bug manifested.
        #: Exploration depends only on the trial, not on which sampler
        #: picked the CTI, so samplers share outcomes (fair and fast).
        self._explore_cache: Dict[Tuple, bool] = {}
        #: (cluster key, writer id, reader id) -> (graph, prediction); the
        #: synthetic probe hint is fixed per cluster, so predictions are
        #: trial-invariant.
        self._prediction_cache: Dict[Tuple, Tuple] = {}

    # -- clustering -------------------------------------------------------------

    def build_clusters(
        self, max_pairs_per_cti: int = 64
    ) -> Dict[Tuple[int, int], InsPairCluster]:
        """INS-PAIR clustering over all ordered corpus-entry pairs."""
        corpus = self.graphs.corpus
        clusters: Dict[Tuple[int, int], InsPairCluster] = {}
        entries = list(corpus)
        for writer in entries:
            writes = {
                (access.iid, access.address)
                for access in writer.trace.accesses
                if access.is_write
            }
            if not writes:
                continue
            write_by_address: Dict[int, List[int]] = {}
            for iid, address in writes:
                write_by_address.setdefault(address, []).append(iid)
            for reader in entries:
                if reader.sti.sti_id == writer.sti.sti_id:
                    continue
                added = 0
                for access in reader.trace.accesses:
                    if access.is_write:
                        continue
                    for write_iid in write_by_address.get(access.address, ()):
                        key = (write_iid, access.iid)
                        cluster = clusters.get(key)
                        if cluster is None:
                            cluster = InsPairCluster(
                                write_iid=write_iid,
                                read_iid=access.iid,
                                address=access.address,
                            )
                            clusters[key] = cluster
                        if len(cluster.ctis) < self.config.max_cluster_size:
                            cluster.ctis.append((writer, reader))
                        added += 1
                        if added >= max_pairs_per_cti:
                            break
                    if added >= max_pairs_per_cti:
                        break
        return clusters

    def buggy_clusters(
        self, clusters: Dict[Tuple[int, int], InsPairCluster]
    ) -> List[InsPairCluster]:
        """Clusters over an injected bug's shared variable.

        INS-PAIR keys come from *sequential* traces, while some racing
        reads live in URBs (the AV gadgets), so clusters are matched to
        bugs by the variable their instruction pair touches; exploring
        such a cluster's CTIs is what can manifest the bug. One (largest)
        cluster per bug is returned — the "buggy clusters" of §5.6.2.
        """
        best: Dict[int, InsPairCluster] = {}
        spec_by_id = {spec.bug_id: spec for spec in self.kernel.bugs}

        def rank(cluster: InsPairCluster, spec: BugSpec) -> Tuple[int, int, int]:
            # Prefer the cluster keyed on the spec's exact racing pair,
            # then the racing write (the fruitful data flow), then size.
            return (
                int(cluster.key == (spec.write_iid, spec.read_iid)),
                int(cluster.write_iid == spec.write_iid),
                len(cluster),
            )

        for cluster in clusters.values():
            spec = self.bug_for_cluster(cluster)
            if spec is None or len(cluster) < 2:
                continue
            current = best.get(spec.bug_id)
            if current is None or rank(cluster, spec) > rank(current, spec):
                best[spec.bug_id] = cluster
        return [best[bug_id] for bug_id in sorted(best)]

    def bug_for_cluster(self, cluster: InsPairCluster) -> Optional[BugSpec]:
        for spec in self.kernel.bugs:
            if cluster.address == spec.variable:
                return spec
        return None

    # -- exploration of one CTI ---------------------------------------------------

    def _explore_cti(
        self,
        spec: BugSpec,
        cluster: InsPairCluster,
        writer: CorpusEntry,
        reader: CorpusEntry,
        trial_seed: int,
    ) -> bool:
        """Snowboard-style interleaving exploration of one selected CTI.

        Snowboard "exercises different interleavings of the predicted data
        flows": the write side yields at the cluster's write instruction
        (realising the write→read communication) while the reader-side
        switch point varies — so fruitfulness genuinely differs between a
        cluster's CTIs. Returns True when the bug manifests.
        """
        rng = rngmod.split(
            trial_seed, f"sb-explore:{writer.sti.sti_id}:{reader.sti.sti_id}"
        )
        cluster_write = cluster.write_iid
        reader_trace = reader.trace.iid_trace
        if not reader_trace:
            return False
        proposals = []
        for _ in range(self.config.schedules_per_cti):
            y = int(reader_trace[int(rng.integers(len(reader_trace)))])
            proposals.append(
                [
                    ScheduleHint(thread=0, iid=cluster_write),
                    ScheduleHint(thread=1, iid=y),
                ]
            )
        for pair in proposals:
            result = run_concurrent(
                self.kernel,
                (writer.sti.as_pairs(), reader.sti.as_pairs()),
                hints=list(pair),
            )
            if spec.kind is BugKind.DATA_RACE:
                races = find_potential_races(result.accesses)
                # Triage-level identity: any race over the bug's shared
                # variable is a report of this bug.
                if any(race.address == spec.variable for race in races):
                    return True
            else:
                if any(
                    event.block_id == spec.manifest_block
                    for event in result.bug_events
                ):
                    return True
        return False

    # -- samplers ---------------------------------------------------------------

    def _sample_random(
        self,
        cluster: InsPairCluster,
        fraction: float,
        rng: np.random.Generator,
    ) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        count = max(1, int(round(fraction * len(cluster))))
        indices = rng.choice(len(cluster), size=min(count, len(cluster)), replace=False)
        return [cluster.ctis[int(i)] for i in indices]

    def _synthetic_hint(
        self, cluster: InsPairCluster, writer: CorpusEntry
    ) -> List[ScheduleHint]:
        """One hint: the writer thread yields right after the racing write."""
        return [ScheduleHint(thread=0, iid=cluster.write_iid)]

    def _sample_pic(
        self,
        cluster: InsPairCluster,
        strategy: SelectionStrategy,
        rng: np.random.Generator,
    ) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        assert self.scorer is not None
        strategy.reset()
        order = rng.permutation(len(cluster))
        # Prefetch uncached predictions through the batched engine, in
        # first-encounter order — the order a lazy loop would have
        # predicted them in, which matters for RNG-consuming predictors.
        missing: List[Tuple[Tuple, CorpusEntry, CorpusEntry]] = []
        queued: Set[Tuple] = set()
        for index in order:
            writer, reader = cluster.ctis[int(index)]
            key = (cluster.key, writer.sti.sti_id, reader.sti.sti_id)
            if key not in self._prediction_cache and key not in queued:
                queued.add(key)
                missing.append((key, writer, reader))
        if missing:
            graphs = [
                self.graphs.graph_for(
                    writer, reader, self._synthetic_hint(cluster, writer)
                )
                for _, writer, reader in missing
            ]
            predictions = self.scorer.predict_graphs(graphs)
            for (key, _, _), graph, predicted in zip(
                missing, graphs, predictions
            ):
                self._prediction_cache[key] = (graph, predicted)
        selected = []
        for index in order:
            writer, reader = cluster.ctis[int(index)]
            key = (cluster.key, writer.sti.sti_id, reader.sti.sti_id)
            graph, predicted = self._prediction_cache[key]
            if strategy.is_interesting(graph, predicted):
                strategy.commit(graph, predicted)
                selected.append((writer, reader))
        return selected

    # -- the study ---------------------------------------------------------------

    def evaluate_sampler(
        self,
        cluster: InsPairCluster,
        sampler: str,
        fraction: float = 0.5,
    ) -> SamplerOutcome:
        """Bug-finding probability of one sampler on one buggy cluster.

        ``sampler`` is one of ``"SB-RND"``, ``"SB-PIC(S1)"``,
        ``"SB-PIC(S2)"``; ``fraction`` only applies to SB-RND.
        """
        spec = self.bug_for_cluster(cluster)
        if spec is None:
            raise ValueError("cluster is not a buggy cluster")
        hits = 0
        executed_counts = []
        for trial in range(self.config.trials):
            sampling_seed = rngmod.derive_seed(
                self.seed, f"sb-trial:{sampler}:{fraction}:{cluster.key}:{trial}"
            )
            # Exploration luck is a property of the trial, not the sampler.
            explore_seed = rngmod.derive_seed(
                self.seed, f"sb-explore:{cluster.key}:{trial}"
            )
            rng = rngmod.make_rng(sampling_seed)
            if sampler == "SB-RND":
                chosen = self._sample_random(cluster, fraction, rng)
            elif sampler == "SB-PIC(S1)":
                chosen = self._sample_pic(cluster, make_strategy("S1"), rng)
            elif sampler == "SB-PIC(S2)":
                chosen = self._sample_pic(cluster, make_strategy("S2"), rng)
            else:
                raise ValueError(f"unknown sampler {sampler!r}")
            executed_counts.append(len(chosen))
            found = False
            for writer, reader in chosen:
                key = (cluster.key, trial, writer.sti.sti_id, reader.sti.sti_id)
                outcome = self._explore_cache.get(key)
                if outcome is None:
                    outcome = self._explore_cti(
                        spec, cluster, writer, reader, explore_seed
                    )
                    self._explore_cache[key] = outcome
                if outcome:
                    found = True
                    break
            if found:
                hits += 1
        mean_executed = float(np.mean(executed_counts)) if executed_counts else 0.0
        label = sampler if sampler != "SB-RND" else f"SB-RND({int(fraction * 100)}%)"
        return SamplerOutcome(
            sampler=label,
            cluster_key=cluster.key,
            bug_finding_probability=hits / max(self.config.trials, 1),
            mean_ctis_executed=mean_executed,
            sampling_rate=mean_executed / max(len(cluster), 1),
        )
