"""Razzer / Razzer-Relax / Razzer-PIC (§5.6.1, Table 4).

Razzer, given a statically identified possible data race (a write/read
instruction pair), searches for CTI candidates whose constituent STIs can
each trigger one racing instruction, then dynamically executes candidates
under many random schedules to confirm the race:

- **Razzer** (strict): an STI qualifies only if its *sequential* run
  actually executed the racing instruction. Races hidden in URBs are never
  attempted — the limitation the paper highlights.
- **Razzer-Relax**: an STI qualifies if the racing instruction's block is
  an SCB *or a URB* of the STI — finds more candidates, at heavy cost.
- **Razzer-PIC**: Razzer-Relax candidates filtered by the PIC model — only
  CTIs predicted to cover both racing blocks under probe schedules are
  kept.

Reproduction cost follows the paper's method: every candidate CTI is
executed with up to ``schedules_per_cti`` random schedules; the average
time to reproduce is computed by shuffling the CTI queue and averaging the
time until the first true positive; the worst case puts every true
positive at the end of the queue.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import rng as rngmod
from repro.analysis.urb import find_urbs
from repro.core.costs import CostModel
from repro.core.scoring import DEFAULT_BATCH_SIZE, CandidateScorer
from repro.execution.concurrent import ScheduleHint, run_concurrent
from repro.execution.pct import propose_hint_pairs
from repro.execution.races import find_potential_races
from repro.fuzz.corpus import CorpusEntry
from repro.graphs.dataset import GraphDatasetBuilder
from repro.kernel.bugs import BugSpec
from repro.ml.baselines import CoveragePredictor

__all__ = ["RazzerVariant", "RazzerConfig", "RazzerOutcome", "RazzerHarness"]


class RazzerVariant(enum.Enum):
    STRICT = "Razzer"
    RELAX = "Razzer-Relax"
    PIC = "Razzer-PIC"


@dataclass(frozen=True)
class RazzerConfig:
    """Search and verification budgets."""

    #: Random schedules tried per candidate CTI during verification
    #: (the paper uses 5K; scaled down for the simulated substrate).
    schedules_per_cti: int = 600
    #: Cap on candidate CTIs per variant.
    max_candidates: int = 400
    #: Probe schedules per CTI for the PIC filter: one directed probe
    #: (write yields to read) plus this many random ones.
    pic_probe_schedules: int = 3
    #: Queue shuffles for the average-time estimate.
    shuffles: int = 200
    #: Probe graphs scored per batched inference call (see
    #: :mod:`repro.core.scoring`).
    score_batch_size: int = DEFAULT_BATCH_SIZE
    costs: CostModel = field(default_factory=CostModel)


@dataclass
class RazzerOutcome:
    """One Table 4 cell group: a variant's result on one known race."""

    variant: RazzerVariant
    num_ctis: int
    num_true_positive: int
    avg_hours: Optional[float]
    worst_hours: Optional[float]
    inference_count: int = 0

    @property
    def reproduced(self) -> bool:
        return self.num_true_positive > 0


class RazzerHarness:
    """Runs the three Razzer variants against known races."""

    def __init__(
        self,
        graphs: GraphDatasetBuilder,
        predictor: Optional[CoveragePredictor] = None,
        config: Optional[RazzerConfig] = None,
        seed: int = 0,
    ) -> None:
        self.graphs = graphs
        self.kernel = graphs.kernel
        self.predictor = predictor
        self.config = config or RazzerConfig()
        self.scorer = (
            None
            if predictor is None
            else CandidateScorer(
                predictor, batch_size=self.config.score_batch_size
            )
        )
        self.seed = seed
        self._urb_cache: Dict[int, Set[int]] = {}
        self._minimized_cache: Dict[Tuple[int, int, bool], Optional[CorpusEntry]] = {}

    # -- candidate search ------------------------------------------------------

    def _urbs_of(self, entry: CorpusEntry) -> Set[int]:
        # Key by id + rendered calls: minimized probes share an sti_id with
        # their source entry but have different coverage.
        key = hash((entry.sti.sti_id, entry.sti.render()))
        cached = self._urb_cache.get(key)
        if cached is None:
            cached = find_urbs(self.graphs.cfg, entry.trace.covered_blocks, hops=1)
            self._urb_cache[key] = cached
        return cached

    def _sti_triggers(self, entry: CorpusEntry, iid: int, relaxed: bool) -> bool:
        """Can this STI reach the racing instruction?"""
        if iid in entry.trace.iid_trace:
            return True
        if not relaxed:
            return False
        block = self.kernel.block_of_instruction(iid)
        return block in self._urbs_of(entry)

    def _minimized(
        self, entry: CorpusEntry, iid: int, relaxed: bool
    ) -> Optional[CorpusEntry]:
        """Shrink an STI to the single call that reaches the racing
        instruction, re-executing it to get a fresh trace.

        Razzer synthesizes *minimal* race-targeted programs from its
        fuzzing corpus; working with the single triggering call keeps the
        verification search space (and hence reproduction time) in the
        regime the paper reports.
        """
        key = (entry.sti.sti_id, iid, relaxed)
        if key in self._minimized_cache:
            return self._minimized_cache[key]
        from repro.execution.sequential import run_sequential
        from repro.fuzz.sti import STI

        minimized: Optional[CorpusEntry] = None
        for call_index, call in enumerate(entry.sti.calls):
            # Fresh sti_id: minimized probes must not collide with their
            # source entry in downstream (graph-template) caches.
            fresh_id = 1_000_000 + entry.sti.sti_id * 16 + call_index
            candidate = STI(sti_id=fresh_id, calls=(call,))
            trace = run_sequential(self.kernel, candidate.as_pairs(), sti_id=fresh_id)
            probe = CorpusEntry(sti=candidate, trace=trace)
            if self._sti_triggers(probe, iid, relaxed):
                minimized = probe
                break
        self._minimized_cache[key] = minimized
        return minimized

    def candidates(
        self, spec: BugSpec, variant: RazzerVariant
    ) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        """CTI candidates for one race under one variant's rule.

        Corpus STIs that can reach a racing instruction are minimized to
        their triggering call and deduplicated by that call, mirroring
        Razzer's generation of minimal racy programs.
        """
        relaxed = variant is not RazzerVariant.STRICT
        writers = self._triggering_entries(spec.write_iid, relaxed)
        readers = self._triggering_entries(spec.read_iid, relaxed)
        pairs: List[Tuple[CorpusEntry, CorpusEntry]] = []
        for writer in writers:
            for reader in readers:
                if writer.sti.sti_id == reader.sti.sti_id:
                    continue
                pairs.append((writer, reader))
                if len(pairs) >= self.config.max_candidates:
                    return pairs
        return pairs

    def _triggering_entries(self, iid: int, relaxed: bool) -> List[CorpusEntry]:
        found: List[CorpusEntry] = []
        seen_calls: Set[str] = set()
        for entry in self.graphs.corpus:
            if not self._sti_triggers(entry, iid, relaxed):
                continue
            minimized = self._minimized(entry, iid, relaxed)
            if minimized is None:
                continue
            rendered = minimized.sti.render()
            if rendered in seen_calls:
                continue
            seen_calls.add(rendered)
            found.append(minimized)
        return found

    def _pic_filter(
        self,
        spec: BugSpec,
        pairs: Sequence[Tuple[CorpusEntry, CorpusEntry]],
    ) -> Tuple[List[Tuple[CorpusEntry, CorpusEntry]], int]:
        """Keep CTIs predicted to cover both racing blocks (Razzer-PIC)."""
        assert self.predictor is not None
        write_block = self.kernel.block_of_instruction(spec.write_iid)
        read_block = self.kernel.block_of_instruction(spec.read_iid)
        rng = rngmod.split(self.seed, f"razzer-pic:{spec.bug_id}")
        # Directed probe: make the writer yield right after the racing
        # write and the reader yield after the racing read — the schedule
        # shape that realises the race if the CTI can trigger it at all.
        directed = [
            ScheduleHint(thread=0, iid=spec.write_iid),
            ScheduleHint(thread=1, iid=spec.read_iid),
        ]
        assert self.scorer is not None
        kept: List[Tuple[CorpusEntry, CorpusEntry]] = []
        inferences = 0
        for writer, reader in pairs:
            probes = [directed] + [
                list(pair)
                for pair in propose_hint_pairs(
                    rng, writer.trace, reader.trace, self.config.pic_probe_schedules
                )
            ]
            probe_graphs = (
                self.graphs.graph_for(writer, reader, list(probe))
                for probe in probes
            )
            selected = False
            # The engine only counts probes the break actually consumed,
            # so ``inference_count`` matches a hand-written lazy loop.
            for graph, predicted in self.scorer.iter_predicted(probe_graphs):
                inferences += 1
                covered = {
                    int(block)
                    for block in graph.node_blocks[np.asarray(predicted, bool)]
                }
                if write_block in covered and read_block in covered:
                    selected = True
                    break
            if selected:
                kept.append((writer, reader))
        return kept, inferences

    # -- verification ----------------------------------------------------------

    def _verify_cti(
        self,
        spec: BugSpec,
        writer: CorpusEntry,
        reader: CorpusEntry,
    ) -> Tuple[bool, int]:
        """Try random schedules; returns (reproduced, schedules used).

        A schedule reproduces the race when the detector reports the
        racing instruction pair, or when the race's assertion (the
        CHECK/DEREF the gadget plants) fires — the latter is direct proof
        the two instructions raced even if the serialized accesses fall
        outside the detector's proximity window.
        """
        rng = rngmod.split(
            self.seed, f"razzer-verify:{spec.bug_id}:{writer.sti.sti_id}:{reader.sti.sti_id}"
        )
        target = tuple(sorted(spec.racing_pair))
        proposals = propose_hint_pairs(
            rng, writer.trace, reader.trace, self.config.schedules_per_cti
        )
        for used, pair in enumerate(proposals, start=1):
            result = run_concurrent(
                self.kernel,
                (writer.sti.as_pairs(), reader.sti.as_pairs()),
                hints=list(pair),
            )
            if any(e.block_id == spec.manifest_block for e in result.bug_events):
                return True, used
            races = find_potential_races(result.accesses)
            if any(race.iid_pair == target for race in races):
                return True, used
        return False, max(len(proposals), 1)

    def _queue_times(
        self, per_cti_schedules: List[int], tp_flags: List[bool]
    ) -> Tuple[Optional[float], Optional[float]]:
        """Average/worst hours to reach the first true positive.

        Average: shuffle the CTI queue, sum execution time until the first
        TP CTI finishes. Worst: every non-TP CTI runs first, then the
        cheapest TP. Mirrors Table 4's method.
        """
        if not any(tp_flags):
            return None, None
        seconds = self.config.costs.execution_seconds
        schedules = np.asarray(per_cti_schedules, dtype=np.float64)
        flags = np.asarray(tp_flags, dtype=bool)
        rng = rngmod.split(self.seed, "razzer-shuffle")
        totals = []
        for _ in range(self.config.shuffles):
            order = rng.permutation(len(schedules))
            elapsed = 0.0
            for index in order:
                elapsed += schedules[index] * seconds
                if flags[index]:
                    break
            totals.append(elapsed)
        average = float(np.mean(totals)) / 3600.0
        # Adversarial ordering: every fruitless CTI first, then the most
        # expensive true positive ends the clock.
        worst_elapsed = float(schedules[~flags].sum() * seconds)
        worst_elapsed += float(schedules[flags].max() * seconds)
        return average, worst_elapsed / 3600.0

    def run_variant(self, spec: BugSpec, variant: RazzerVariant) -> RazzerOutcome:
        """Full Table 4 pipeline for one race under one variant."""
        pairs = self.candidates(spec, variant)
        inferences = 0
        if variant is RazzerVariant.PIC:
            if self.predictor is None:
                raise ValueError("Razzer-PIC requires a predictor")
            pairs, inferences = self._pic_filter(spec, pairs)
        per_cti_schedules: List[int] = []
        tp_flags: List[bool] = []
        for writer, reader in pairs:
            reproduced, used = self._verify_cti(spec, writer, reader)
            tp_flags.append(reproduced)
            per_cti_schedules.append(used)
        avg_hours, worst_hours = self._queue_times(per_cti_schedules, tp_flags)
        return RazzerOutcome(
            variant=variant,
            num_ctis=len(pairs),
            num_true_positive=sum(tp_flags),
            avg_hours=avg_hours,
            worst_hours=worst_hours,
            inference_count=inferences,
        )

    def run_all(self, spec: BugSpec) -> Dict[RazzerVariant, RazzerOutcome]:
        return {variant: self.run_variant(spec, variant) for variant in RazzerVariant}
