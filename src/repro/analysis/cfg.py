"""Whole-kernel control-flow graph.

The CFG contains one node per basic block and three kinds of static edges:

- intra-procedural edges (branch targets and fallthroughs),
- call edges (from the calling block to the callee's entry block),
- return edges (from a function's exit blocks back to the block after the
  call site — here approximated by the calling block itself, which is where
  execution resumes in our ISA).

The paper builds this with Angr over the compiled kernel; our ISA carries
the structure directly, but the resulting object serves the same purpose:
k-hop reachability queries for URB identification.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

import networkx as nx

from repro.kernel.code import Kernel
from repro.kernel.isa import Opcode

__all__ = ["KernelCFG", "build_kernel_cfg"]


class KernelCFG:
    """Static CFG with k-hop neighbourhood queries."""

    def __init__(self, graph: nx.DiGraph, kernel_version: str) -> None:
        self.graph = graph
        self.kernel_version = kernel_version

    @property
    def num_nodes(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def num_edges(self) -> int:
        return self.graph.number_of_edges()

    def successors(self, block_id: int) -> List[int]:
        return list(self.graph.successors(block_id))

    def reachable_within(self, sources: Iterable[int], hops: int) -> Set[int]:
        """Blocks reachable from ``sources`` in at most ``hops`` edges.

        Sources themselves are *not* included unless re-reached.
        """
        frontier = set(sources)
        reached: Set[int] = set()
        for _ in range(hops):
            next_frontier: Set[int] = set()
            for block_id in frontier:
                for successor in self.graph.successors(block_id):
                    if successor not in reached:
                        next_frontier.add(successor)
            reached |= next_frontier
            frontier = next_frontier
            if not frontier:
                break
        return reached

    def edge_kind(self, src: int, dst: int) -> str:
        return self.graph.edges[src, dst].get("kind", "flow")


def build_kernel_cfg(kernel: Kernel) -> KernelCFG:
    """Construct the whole-kernel CFG for ``kernel``."""
    graph = nx.DiGraph()
    for block_id in kernel.blocks:
        graph.add_node(block_id)
    for block_id, block in kernel.blocks.items():
        for successor in block.successors:
            graph.add_edge(block_id, successor, kind="flow")
        for instruction in block.instructions:
            if instruction.opcode is Opcode.CALL:
                callee = kernel.functions[instruction.operand(0).name]
                graph.add_edge(block_id, callee.entry_block, kind="call")
                # Return edge: execution resumes in the calling block.
                for exit_block in _exit_blocks(kernel, callee.name):
                    graph.add_edge(exit_block, block_id, kind="return")
    return KernelCFG(graph, kernel.version)


def _exit_blocks(kernel: Kernel, function_name: str) -> List[int]:
    exits = []
    for block in kernel.blocks_of_function(function_name):
        terminator = block.terminator
        if terminator is not None and terminator.opcode is Opcode.RET:
            exits.append(block.block_id)
    return exits
