"""Static analysis: the Angr stand-in.

Builds the whole-kernel control-flow graph and identifies uncovered
reachable blocks (URBs) — blocks statically reachable within k control-flow
hops from the sequentially covered blocks but not covered by the
single-threaded runs (§3, step 3).
"""

from repro.analysis.cfg import KernelCFG, build_kernel_cfg
from repro.analysis.urb import find_urbs, urb_frontier

__all__ = ["KernelCFG", "build_kernel_cfg", "find_urbs", "urb_frontier"]
