"""Uncovered-reachable-block (URB) identification.

Given the sequential coverage of a test's threads and the whole-kernel CFG,
URBs are the blocks statically reachable within ``hops`` control-flow edges
from the covered set but not in it. The paper fixes ``hops = 1`` "to avoid
path explosion and maintain a reasonable number of nodes per CT graph"
(§3.1); the parameter is exposed for the multi-hop ablation discussed in §6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.cfg import KernelCFG

__all__ = ["find_urbs", "urb_frontier"]


def find_urbs(
    cfg: KernelCFG, covered: Iterable[int], hops: int = 1
) -> Set[int]:
    """URBs of a covered set: reachable within ``hops``, not covered."""
    covered_set = set(covered)
    reachable = cfg.reachable_within(covered_set, hops)
    return reachable - covered_set


def urb_frontier(
    cfg: KernelCFG, covered: Iterable[int], hops: int = 1
) -> List[Tuple[int, int]]:
    """Static control-flow edges from covered blocks into URBs.

    Returns ``(covered block, urb)`` pairs — the "URB control-flow edges"
    of the CT graph (§3.1). With ``hops > 1`` the frontier also contains
    URB→URB edges along reachable chains.
    """
    covered_set = set(covered)
    urbs = find_urbs(cfg, covered_set, hops)
    edges: List[Tuple[int, int]] = []
    for block_id in sorted(covered_set | urbs):
        for successor in cfg.successors(block_id):
            if successor in urbs:
                edges.append((block_id, successor))
    return edges
