"""Metric instruments: counters, gauges, and fixed-bucket histograms.

The instruments are deliberately minimal — a counter is an integer, a
gauge is a float, a histogram is a fixed set of bucket counts plus
count/sum/min/max — so recording on a hot path costs one dict lookup and
one list increment. Percentiles (p50/p90/p99) are *estimates* derived
from the bucket counts by linear interpolation inside the bucket that
contains the requested rank, clamped to the observed min/max.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "default_duration_buckets"]


def default_duration_buckets() -> List[float]:
    """1-2-5 series of seconds from 10 µs to 500 s (for wall-clock spans)."""
    boundaries: List[float] = []
    for exponent in range(-5, 3):
        for mantissa in (1.0, 2.0, 5.0):
            boundaries.append(mantissa * 10.0 ** exponent)
    return boundaries


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket summary of a stream of values.

    ``boundaries`` are the inclusive upper bounds of the first
    ``len(boundaries)`` buckets; one overflow bucket catches everything
    beyond the last boundary. Memory is O(#buckets) regardless of how
    many values are observed.
    """

    __slots__ = ("name", "boundaries", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> None:
        self.name = name
        if boundaries is None:
            boundaries = default_duration_buckets()
        self.boundaries = sorted(float(b) for b in boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimate the ``p``-th percentile from the bucket counts."""
        if self.count == 0:
            return 0.0
        if p <= 0:
            return self.min
        if p >= 100:
            return self.max
        rank = (p / 100.0) * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.boundaries[index - 1] if index > 0 else min(self.min, self.boundaries[0])
                upper = (
                    self.boundaries[index]
                    if index < len(self.boundaries)
                    else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return float(min(max(estimate, self.min), self.max))
            cumulative += bucket_count
        return self.max

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }
