"""Run reports: turn a telemetry trace into stage-attributed tables.

Consumes the event stream produced by :class:`repro.obs.MetricsRegistry`
(live, via :class:`~repro.obs.MemorySink`, or reloaded from a JSON-lines
file) and renders:

- a **stage table** — wall-clock attributed to pipeline stages (the
  ``<stage>.`` prefix of each span name: corpus, dataset, pretrain,
  train, campaign, ...) with *exclusive* seconds, so a parent stage is
  not double-charged for time its children already account for;
- a **work table** — the final counter values (graphs labeled,
  predictions made, executions run/saved, ...);
- a **latency table** — histogram summaries (count/mean/p50/p90/p99);
- the **span timeline** (see :func:`repro.reporting.format_span_timeline`).

``repro report TRACE.jsonl`` is the CLI entry point; benches call
:func:`render_trace_report` directly on in-memory events.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.propagation import parse_span_ref
from repro.obs.sink import read_events
from repro.reporting import format_span_timeline, format_table

__all__ = [
    "collect_spans",
    "final_metrics",
    "stage_rows",
    "serve_rows",
    "merge_traces",
    "render_trace_report",
    "render_merged_report",
    "render_metrics_summary",
    "load_trace",
]

#: Canonical pipeline order for the stage table; unknown stages follow,
#: alphabetically, after these.
STAGE_ORDER = (
    "cli",
    "corpus",
    "dataset",
    "pretrain",
    "train",
    "adapt",
    "campaign",
    "execution",
)


def load_trace(path: str) -> List[Dict[str, object]]:
    """Alias of :func:`repro.obs.read_events` with a report-flavored name."""
    return read_events(path)


def collect_spans(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """The ``span`` events of a trace, in ``seq`` order."""
    spans = [dict(event) for event in events if event.get("event") == "span"]
    spans.sort(key=lambda span: int(span.get("seq", 0)))
    return spans


def final_metrics(
    events: Sequence[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """The last ``metrics`` snapshot event of a trace, if any."""
    snapshot = None
    for event in events:
        if event.get("event") == "metrics":
            snapshot = event
    return snapshot


def _stage_of(name: str) -> str:
    return str(name).split(".", 1)[0]


def stage_rows(spans: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Aggregate spans into one row per pipeline stage.

    ``self s`` is exclusive time — each span's duration minus the
    durations of its direct children — so stages sum to (at most) the
    run's wall clock instead of multiply counting nested work.
    """
    child_seconds: Dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_seconds[int(parent)] = (
                child_seconds.get(int(parent), 0.0) + float(span.get("dur", 0.0))
            )
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stage = _stage_of(span.get("name", "?"))
        duration = float(span.get("dur", 0.0))
        exclusive = max(
            duration - child_seconds.get(int(span.get("id", -1)), 0.0), 0.0
        )
        bucket = totals.setdefault(
            stage, {"spans": 0.0, "total": 0.0, "self": 0.0}
        )
        bucket["spans"] += 1
        bucket["total"] += duration
        bucket["self"] += exclusive
    self_sum = sum(bucket["self"] for bucket in totals.values()) or 1.0

    def order(stage: str) -> tuple:
        try:
            return (STAGE_ORDER.index(stage), stage)
        except ValueError:
            return (len(STAGE_ORDER), stage)

    return [
        {
            "stage": stage,
            "spans": int(bucket["spans"]),
            "total s": bucket["total"],
            "self s": bucket["self"],
            "share": f"{bucket['self'] / self_sum:.1%}",
        }
        for stage, bucket in sorted(totals.items(), key=lambda kv: order(kv[0]))
    ]


#: Request-path order for the serve attribution table.
SERVE_ORDER = (
    "serve.call",
    "serve.request",
    "serve.cache",
    "serve.batch",
    "serve.queue_wait",
    "serve.model",
    "serve.compute",
)


def serve_rows(spans: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """One row per serve-path span name: where a served request's time
    goes (client call → server request → cache → queue wait → model)."""
    groups: Dict[str, Dict[str, object]] = {}
    for span in spans:
        name = str(span.get("name", ""))
        if not name.startswith("serve."):
            continue
        group = groups.setdefault(
            name, {"count": 0, "total": 0.0, "batch": [], "queue_wait": []}
        )
        group["count"] += 1
        group["total"] += float(span.get("dur", 0.0))
        attrs = span.get("attrs") or {}
        if "batch" in attrs:
            group["batch"].append(float(attrs["batch"]))
        if "queue_wait" in attrs:
            group["queue_wait"].append(float(attrs["queue_wait"]))

    def order(name: str) -> tuple:
        try:
            return (SERVE_ORDER.index(name), name)
        except ValueError:
            return (len(SERVE_ORDER), name)

    rows = []
    for name, group in sorted(groups.items(), key=lambda kv: order(kv[0])):
        count = int(group["count"])
        total = float(group["total"])
        batches = group["batch"]
        waits = group["queue_wait"]
        rows.append(
            {
                "span": name,
                "count": count,
                "total s": total,
                "mean ms": (total / count) * 1000.0 if count else 0.0,
                "mean batch": (
                    f"{sum(batches) / len(batches):.1f}" if batches else "-"
                ),
                "queue wait s": f"{sum(waits):.4f}" if waits else "-",
            }
        )
    return rows


def merge_traces(
    event_sets: Sequence[Sequence[Dict[str, object]]],
    labels: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Stitch per-process traces into one cross-process span forest.

    Each input is one file's events (client campaign, serve server, ...).
    Spans are re-numbered into a global id space; a root span whose
    ``remote`` field names a span in another file (the trace-context
    link written by :meth:`MetricsRegistry.remote_context`) is re-parented
    under it. Because every registry's clock starts at its own zero, each
    process is shifted onto the timeline of the processes it called into:
    the per-pair offset is the median of ``parent.start - child.start``
    over all resolved links, which cancels the unknown clock epoch while
    staying robust to per-request jitter.

    Returns ``{"spans", "metrics", "procs", "trace_ids", "links"}``:
    merged span dicts (global ``id``/``parent``/``depth``, aligned
    ``start``), the final metrics snapshot per process, the process
    names, the distinct trace ids seen, and how many cross-process links
    resolved.
    """
    per_span: List[Tuple[str, Dict[str, object]]] = []
    metrics: Dict[str, Dict[str, object]] = {}
    procs: List[str] = []
    for index, events in enumerate(event_sets):
        default_proc = (
            str(labels[index])
            if labels is not None and index < len(labels)
            else f"file{index}"
        )
        file_procs: List[str] = []
        for span in collect_spans(events):
            proc = str(span.get("proc") or default_proc)
            if proc not in file_procs:
                file_procs.append(proc)
            per_span.append((proc, span))
        if not file_procs:
            file_procs = [default_proc]
        for proc in file_procs:
            if proc not in procs:
                procs.append(proc)
        snapshot = final_metrics(events)
        if snapshot is not None:
            metrics[file_procs[0]] = snapshot

    id_map: Dict[Tuple[str, int], int] = {}
    new_ids: List[int] = []
    for new_id, (proc, span) in enumerate(per_span, start=1):
        # First occurrence wins for reference resolution; duplicates
        # (same-named processes) still get distinct merged ids.
        id_map.setdefault((proc, int(span.get("id", 0))), new_id)
        new_ids.append(new_id)

    # Parent resolution + cross-process link collection.
    links = 0
    pair_deltas: Dict[Tuple[str, str], List[float]] = {}
    resolved: List[Dict[str, object]] = []
    for (proc, span), new_id in zip(per_span, new_ids):
        parent = span.get("parent")
        if parent is not None:
            new_parent = id_map.get((proc, int(parent)))
        else:
            new_parent = None
            ref = parse_span_ref(span.get("remote") or "")
            if ref is not None:
                new_parent = id_map.get(ref)
                if new_parent is not None:
                    links += 1
                    parent_proc, parent_old = ref
                    parent_span = next(
                        s
                        for p, s in per_span
                        if p == parent_proc and int(s.get("id", 0)) == parent_old
                    )
                    pair_deltas.setdefault((proc, parent_proc), []).append(
                        float(parent_span.get("start", 0.0))
                        - float(span.get("start", 0.0))
                    )
        resolved.append(
            {
                "event": "span",
                "name": span.get("name", "?"),
                "id": new_id,
                "parent": new_parent,
                "depth": 0,  # recomputed below
                "start": float(span.get("start", 0.0)),
                "dur": float(span.get("dur", 0.0)),
                "attrs": span.get("attrs") or {},
                "proc": proc,
                "trace": span.get("trace"),
                "seq": span.get("seq", 0),
            }
        )

    # Per-process time-base alignment: anchor processes nobody links out
    # of at zero, then propagate median offsets along the link graph.
    offsets: Dict[str, Optional[float]] = {proc: None for proc in procs}
    child_procs = {pair[0] for pair in pair_deltas}
    for proc in procs:
        if proc not in child_procs:
            offsets[proc] = 0.0
    if procs and all(offset is None for offset in offsets.values()):
        offsets[procs[0]] = 0.0  # pure cycle: arbitrary anchor
    changed = True
    while changed:
        changed = False
        for (child, parent), deltas in pair_deltas.items():
            if offsets[child] is None and offsets.get(parent) is not None:
                offsets[child] = offsets[parent] + statistics.median(deltas)
                changed = True
    for span in resolved:
        offset = offsets.get(span["proc"]) or 0.0
        span["start"] = round(span["start"] + offset, 6)

    # Depth recomputation over the merged forest.
    by_id = {span["id"]: span for span in resolved}
    children: Dict[Optional[int], List[int]] = {}
    for span in resolved:
        children.setdefault(span["parent"], []).append(span["id"])
    frontier = list(children.get(None, []))
    while frontier:
        span_id = frontier.pop()
        span = by_id[span_id]
        parent = span["parent"]
        span["depth"] = by_id[parent]["depth"] + 1 if parent in by_id else 0
        frontier.extend(children.get(span_id, []))

    resolved.sort(key=lambda span: (span["start"], span["id"]))
    trace_ids = sorted(
        {str(span["trace"]) for span in resolved if span.get("trace")}
    )
    return {
        "spans": resolved,
        "metrics": metrics,
        "procs": procs,
        "trace_ids": trace_ids,
        "links": links,
    }


def render_merged_report(
    merged: Dict[str, object],
    title: str = "merged telemetry report",
    timeline_rows: int = 80,
) -> str:
    """The cross-process report for :func:`merge_traces` output."""
    spans: List[Dict[str, object]] = list(merged.get("spans") or [])
    procs = merged.get("procs") or []
    trace_ids = merged.get("trace_ids") or []
    sections: List[str] = [
        f"{title}\n"
        f"processes: {', '.join(procs) or '(none)'} | "
        f"trace ids: {', '.join(trace_ids) or '(none)'} | "
        f"cross-process links resolved: {merged.get('links', 0)}"
    ]
    if spans:
        sections.append(
            format_table(stage_rows(spans), title="stage breakdown (wall clock)")
        )
        serving = serve_rows(spans)
        if serving:
            sections.append(
                format_table(
                    serving, title="serve attribution", float_digits=4
                )
            )
    else:
        sections.append("stage breakdown: (no spans recorded)")
    for proc, snapshot in sorted((merged.get("metrics") or {}).items()):
        counter_rows = _counter_rows(snapshot)
        if counter_rows:
            sections.append(
                format_table(
                    counter_rows, title=f"work breakdown [{proc}]", float_digits=3
                )
            )
    timeline_spans = [
        dict(span, name=f"{span['proc']}:{span['name']}") for span in spans
    ]
    sections.append(format_span_timeline(timeline_spans, max_rows=timeline_rows))
    return "\n\n".join(sections)


def _counter_rows(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    rows = [
        {"metric": name, "kind": "counter", "value": value}
        for name, value in sorted(counters.items())
    ]
    rows.extend(
        {"metric": name, "kind": "gauge", "value": value}
        for name, value in sorted(gauges.items())
    )
    return rows


def _histogram_rows(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    histograms = snapshot.get("histograms") or {}
    return [
        {
            "histogram": name,
            "count": summary.get("count", 0),
            "mean s": summary.get("mean", 0.0),
            "p50 s": summary.get("p50", 0.0),
            "p90 s": summary.get("p90", 0.0),
            "p99 s": summary.get("p99", 0.0),
        }
        for name, summary in sorted(histograms.items())
    ]


def render_trace_report(
    events: Sequence[Dict[str, object]],
    title: str = "telemetry run report",
    timeline_rows: int = 60,
) -> str:
    """The full plain-text report for one trace's events."""
    spans = collect_spans(events)
    snapshot = final_metrics(events) or {}
    sections: List[str] = [title]
    if spans:
        sections.append(
            format_table(stage_rows(spans), title="stage breakdown (wall clock)")
        )
        serving = serve_rows(spans)
        if serving:
            sections.append(
                format_table(serving, title="serve attribution", float_digits=4)
            )
    else:
        sections.append("stage breakdown: (no spans recorded)")
    counter_rows = _counter_rows(snapshot)
    if counter_rows:
        sections.append(
            format_table(counter_rows, title="work breakdown", float_digits=3)
        )
    histogram_rows = _histogram_rows(snapshot)
    if histogram_rows:
        sections.append(
            format_table(histogram_rows, title="latency summaries", float_digits=4)
        )
    sections.append(format_span_timeline(spans, max_rows=timeline_rows))
    return "\n\n".join(sections)


def render_metrics_summary(
    snapshot: Dict[str, object], title: str = "telemetry metrics summary"
) -> str:
    """Tables for a live registry snapshot (the ``--metrics`` output)."""
    sections: List[str] = [title]
    span_stats = snapshot.get("spans") or {}
    if span_stats:
        rows = [
            {
                "span": name,
                "count": int(stats.get("count", 0)),
                "total s": stats.get("total", 0.0),
                "self s": stats.get("exclusive", 0.0),
            }
            for name, stats in sorted(span_stats.items())
        ]
        sections.append(format_table(rows, title="spans"))
    counter_rows = _counter_rows(snapshot)
    if counter_rows:
        sections.append(format_table(counter_rows, title="work breakdown"))
    histogram_rows = _histogram_rows(snapshot)
    if histogram_rows:
        sections.append(
            format_table(histogram_rows, title="latency summaries", float_digits=4)
        )
    if len(sections) == 1:
        sections.append("(no telemetry recorded)")
    return "\n\n".join(sections)
