"""Run reports: turn a telemetry trace into stage-attributed tables.

Consumes the event stream produced by :class:`repro.obs.MetricsRegistry`
(live, via :class:`~repro.obs.MemorySink`, or reloaded from a JSON-lines
file) and renders:

- a **stage table** — wall-clock attributed to pipeline stages (the
  ``<stage>.`` prefix of each span name: corpus, dataset, pretrain,
  train, campaign, ...) with *exclusive* seconds, so a parent stage is
  not double-charged for time its children already account for;
- a **work table** — the final counter values (graphs labeled,
  predictions made, executions run/saved, ...);
- a **latency table** — histogram summaries (count/mean/p50/p90/p99);
- the **span timeline** (see :func:`repro.reporting.format_span_timeline`).

``repro report TRACE.jsonl`` is the CLI entry point; benches call
:func:`render_trace_report` directly on in-memory events.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.obs.sink import read_events
from repro.reporting import format_span_timeline, format_table

__all__ = [
    "collect_spans",
    "final_metrics",
    "stage_rows",
    "render_trace_report",
    "render_metrics_summary",
    "load_trace",
]

#: Canonical pipeline order for the stage table; unknown stages follow,
#: alphabetically, after these.
STAGE_ORDER = (
    "cli",
    "corpus",
    "dataset",
    "pretrain",
    "train",
    "adapt",
    "campaign",
    "execution",
)


def load_trace(path: str) -> List[Dict[str, object]]:
    """Alias of :func:`repro.obs.read_events` with a report-flavored name."""
    return read_events(path)


def collect_spans(events: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """The ``span`` events of a trace, in ``seq`` order."""
    spans = [dict(event) for event in events if event.get("event") == "span"]
    spans.sort(key=lambda span: int(span.get("seq", 0)))
    return spans


def final_metrics(
    events: Sequence[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """The last ``metrics`` snapshot event of a trace, if any."""
    snapshot = None
    for event in events:
        if event.get("event") == "metrics":
            snapshot = event
    return snapshot


def _stage_of(name: str) -> str:
    return str(name).split(".", 1)[0]


def stage_rows(spans: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Aggregate spans into one row per pipeline stage.

    ``self s`` is exclusive time — each span's duration minus the
    durations of its direct children — so stages sum to (at most) the
    run's wall clock instead of multiply counting nested work.
    """
    child_seconds: Dict[int, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            child_seconds[int(parent)] = (
                child_seconds.get(int(parent), 0.0) + float(span.get("dur", 0.0))
            )
    totals: Dict[str, Dict[str, float]] = {}
    for span in spans:
        stage = _stage_of(span.get("name", "?"))
        duration = float(span.get("dur", 0.0))
        exclusive = max(
            duration - child_seconds.get(int(span.get("id", -1)), 0.0), 0.0
        )
        bucket = totals.setdefault(
            stage, {"spans": 0.0, "total": 0.0, "self": 0.0}
        )
        bucket["spans"] += 1
        bucket["total"] += duration
        bucket["self"] += exclusive
    self_sum = sum(bucket["self"] for bucket in totals.values()) or 1.0

    def order(stage: str) -> tuple:
        try:
            return (STAGE_ORDER.index(stage), stage)
        except ValueError:
            return (len(STAGE_ORDER), stage)

    return [
        {
            "stage": stage,
            "spans": int(bucket["spans"]),
            "total s": bucket["total"],
            "self s": bucket["self"],
            "share": f"{bucket['self'] / self_sum:.1%}",
        }
        for stage, bucket in sorted(totals.items(), key=lambda kv: order(kv[0]))
    ]


def _counter_rows(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    rows = [
        {"metric": name, "kind": "counter", "value": value}
        for name, value in sorted(counters.items())
    ]
    rows.extend(
        {"metric": name, "kind": "gauge", "value": value}
        for name, value in sorted(gauges.items())
    )
    return rows


def _histogram_rows(snapshot: Dict[str, object]) -> List[Dict[str, object]]:
    histograms = snapshot.get("histograms") or {}
    return [
        {
            "histogram": name,
            "count": summary.get("count", 0),
            "mean s": summary.get("mean", 0.0),
            "p50 s": summary.get("p50", 0.0),
            "p90 s": summary.get("p90", 0.0),
            "p99 s": summary.get("p99", 0.0),
        }
        for name, summary in sorted(histograms.items())
    ]


def render_trace_report(
    events: Sequence[Dict[str, object]],
    title: str = "telemetry run report",
    timeline_rows: int = 60,
) -> str:
    """The full plain-text report for one trace's events."""
    spans = collect_spans(events)
    snapshot = final_metrics(events) or {}
    sections: List[str] = [title]
    if spans:
        sections.append(
            format_table(stage_rows(spans), title="stage breakdown (wall clock)")
        )
    else:
        sections.append("stage breakdown: (no spans recorded)")
    counter_rows = _counter_rows(snapshot)
    if counter_rows:
        sections.append(
            format_table(counter_rows, title="work breakdown", float_digits=3)
        )
    histogram_rows = _histogram_rows(snapshot)
    if histogram_rows:
        sections.append(
            format_table(histogram_rows, title="latency summaries", float_digits=4)
        )
    sections.append(format_span_timeline(spans, max_rows=timeline_rows))
    return "\n\n".join(sections)


def render_metrics_summary(
    snapshot: Dict[str, object], title: str = "telemetry metrics summary"
) -> str:
    """Tables for a live registry snapshot (the ``--metrics`` output)."""
    sections: List[str] = [title]
    span_stats = snapshot.get("spans") or {}
    if span_stats:
        rows = [
            {
                "span": name,
                "count": int(stats.get("count", 0)),
                "total s": stats.get("total", 0.0),
                "self s": stats.get("exclusive", 0.0),
            }
            for name, stats in sorted(span_stats.items())
        ]
        sections.append(format_table(rows, title="spans"))
    counter_rows = _counter_rows(snapshot)
    if counter_rows:
        sections.append(format_table(counter_rows, title="work breakdown"))
    histogram_rows = _histogram_rows(snapshot)
    if histogram_rows:
        sections.append(
            format_table(histogram_rows, title="latency summaries", float_digits=4)
        )
    if len(sections) == 1:
        sections.append("(no telemetry recorded)")
    return "\n\n".join(sections)
