"""Operational exports: Prometheus exposition, heartbeats, live views.

Three consumers of the same :class:`~repro.obs.MetricsRegistry` data:

- :func:`render_prometheus` turns a registry snapshot into
  Prometheus text exposition (counters → ``*_total``, gauges plain,
  histograms as summaries with ``quantile`` labels, span aggregates as
  labelled counters). The serve server's ``metrics`` op returns this,
  so ``repro serve metrics --socket PATH`` is the ``/metrics`` endpoint
  of the stack.
- :class:`HeartbeatWriter` + :func:`read_heartbeat` +
  :func:`render_top` are the campaign progress channel: the campaign
  loop writes a small JSON status file atomically (throttled, durable
  via :mod:`repro.resilience.atomic`), and ``repro top`` renders any
  number of them as a live fleet table with rates and ETAs.
- :func:`render_serve_watch` is one refresh line of
  ``repro serve status --watch``: qps and latency percentiles computed
  from successive server snapshots.

Everything here is read-side and pure (given snapshots); nothing
touches an RNG stream or runs unless explicitly invoked.
"""

from __future__ import annotations

import json
import os
import re
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.reporting import format_table

__all__ = [
    "render_prometheus",
    "snapshot_from_stats",
    "HeartbeatWriter",
    "read_heartbeat",
    "render_top",
    "render_fleet_top",
    "render_learn_top",
    "render_serve_watch",
]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, namespace: str = "repro") -> str:
    cleaned = _NAME_SANITIZER.sub("_", str(name))
    if not re.match(r"^[a-zA-Z_:]", cleaned):
        cleaned = "_" + cleaned
    return f"{namespace}_{cleaned}"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def render_prometheus(
    snapshot: Dict[str, object], namespace: str = "repro"
) -> str:
    """Prometheus text exposition (format 0.0.4) of a registry snapshot.

    ``snapshot`` is :meth:`MetricsRegistry.snapshot` output (or the
    :func:`snapshot_from_stats` fallback). Histograms are exported as
    *summaries* — the registry keeps fixed-bucket estimates, and the
    p50/p90/p99 quantiles are what the serving dashboards watch — and
    span aggregates become ``<ns>_span_seconds_total{span="..."}``
    counters so stage attribution survives scraping.
    """
    lines: List[str] = []
    counters = snapshot.get("counters") or {}
    for name in sorted(counters):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(counters[name])}")
    gauges = snapshot.get("gauges") or {}
    for name in sorted(gauges):
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauges[name])}")
    histograms = snapshot.get("histograms") or {}
    for name in sorted(histograms):
        summary = histograms[name] or {}
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} summary")
        for quantile, key in (("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")):
            lines.append(
                f'{metric}{{quantile="{quantile}"}} '
                f"{_format_value(float(summary.get(key, 0.0)))}"
            )
        lines.append(f"{metric}_sum {_format_value(float(summary.get('sum', 0.0)))}")
        lines.append(f"{metric}_count {_format_value(int(summary.get('count', 0)))}")
    span_stats = snapshot.get("spans") or {}
    if span_stats:
        seconds_metric = f"{namespace}_span_seconds_total"
        count_metric = f"{namespace}_span_count_total"
        lines.append(f"# TYPE {seconds_metric} counter")
        for name in sorted(span_stats):
            stats = span_stats[name] or {}
            lines.append(
                f'{seconds_metric}{{span="{_escape_label(name)}"}} '
                f"{_format_value(float(stats.get('total', 0.0)))}"
            )
        lines.append(f"# TYPE {count_metric} counter")
        for name in sorted(span_stats):
            stats = span_stats[name] or {}
            lines.append(
                f'{count_metric}{{span="{_escape_label(name)}"}} '
                f"{_format_value(int(stats.get('count', 0)))}"
            )
    return "\n".join(lines) + "\n"


def snapshot_from_stats(stats: Dict[str, object]) -> Dict[str, object]:
    """A registry-shaped snapshot synthesised from backend ``stats()``.

    The serve server's ``metrics`` op falls back to this when the
    server process runs without a telemetry registry, so the exposition
    endpoint always has the cache/batcher core series.
    """
    cache = stats.get("cache") or {}
    batcher = stats.get("batcher") or {}
    counters = {
        "serve.requests": int(stats.get("requests", 0)),
        "serve.cache.hits": int(cache.get("hits", 0)),
        "serve.cache.misses": int(cache.get("misses", 0)),
        "serve.cache.evictions": int(cache.get("evictions", 0)),
        "serve.batch.flush_full": int(batcher.get("flush_full", 0)),
        "serve.batch.flush_deadline": int(batcher.get("flush_deadline", 0)),
        "serve.queue.rejected": int(batcher.get("rejected", 0)),
        "serve.queue.backpressure": int(batcher.get("backpressure", 0)),
    }
    gauges = {
        "serve.cache.bytes": float(cache.get("bytes", 0)),
        "serve.cache.hit_rate": float(cache.get("hit_rate", 0.0)),
        "serve.queue.depth": float(batcher.get("queue_depth", 0)),
    }
    return {"counters": counters, "gauges": gauges, "histograms": {}, "spans": {}}


# -- campaign heartbeats ------------------------------------------------------


class HeartbeatWriter:
    """Throttled atomic campaign-progress snapshots for ``repro top``.

    One writer follows one campaign process through any number of
    campaigns (``begin`` resets the rate clock per campaign). ``update``
    is cheap enough for the per-CTI loop: it returns without touching
    the filesystem unless ``interval`` seconds have passed since the
    last write (or ``force=True``), and each write is a whole-file
    atomic replace so ``repro top`` never reads a torn snapshot.
    """

    def __init__(
        self,
        path: str,
        interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.path = path
        self.interval = float(interval)
        self._clock = clock
        self._origin = clock()
        self._last_write: Optional[float] = None
        self._label = "?"
        self._total = 0

    def begin(self, label: str, total: int, done: int = 0) -> None:
        """Start following a campaign of ``total`` units (resume-aware:
        pass the already-completed count as ``done``)."""
        self._label = str(label)
        self._total = int(total)
        self._origin = self._clock()
        self._last_write = None
        self.update(done=done, force=True)

    def update(
        self,
        done: int,
        races: int = 0,
        executions: int = 0,
        force: bool = False,
        **extra: object,
    ) -> bool:
        """Write a snapshot if due; returns whether a write happened."""
        now = self._clock()
        finished = self._total and done >= self._total
        if (
            not force
            and not finished
            and self._last_write is not None
            and now - self._last_write < self.interval
        ):
            return False
        elapsed = max(now - self._origin, 0.0)
        rate = done / elapsed if elapsed > 0 else 0.0
        remaining = max(self._total - done, 0)
        eta = remaining / rate if rate > 0 else None
        payload: Dict[str, object] = {
            "label": self._label,
            "pid": os.getpid(),
            "done": int(done),
            "total": self._total,
            "races": int(races),
            "executions": int(executions),
            "elapsed_seconds": round(elapsed, 3),
            "rate_per_second": round(rate, 4),
            "eta_seconds": round(eta, 1) if eta is not None else None,
            "updated_unix": time.time(),
        }
        payload.update(extra)
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
        self._last_write = now
        return True

    def close(self) -> None:
        """Nothing held open — snapshots are whole-file replaces."""


def read_heartbeat(path: str) -> Optional[Dict[str, object]]:
    """Load one heartbeat snapshot; ``None`` if absent or unreadable."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def _format_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    seconds = max(float(seconds), 0.0)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_top(
    paths: Sequence[str],
    now: Optional[float] = None,
    title: str = "campaign fleet",
) -> str:
    """Render heartbeat files as the ``repro top`` table."""
    now = time.time() if now is None else now
    rows: List[Dict[str, object]] = []
    for path in paths:
        beat = read_heartbeat(path)
        if beat is None:
            rows.append(
                {
                    "campaign": os.path.basename(path),
                    "progress": "(no heartbeat)",
                    "races": "-",
                    "executions": "-",
                    "rate/s": "-",
                    "eta": "-",
                    "age": "-",
                }
            )
            continue
        done = int(beat.get("done", 0))
        total = int(beat.get("total", 0))
        fraction = f" ({done / total:.0%})" if total else ""
        age = max(now - float(beat.get("updated_unix", now)), 0.0)
        rows.append(
            {
                "campaign": str(beat.get("label", os.path.basename(path))),
                "progress": f"{done}/{total}{fraction}",
                "races": beat.get("races", 0),
                "executions": beat.get("executions", 0),
                "rate/s": f"{float(beat.get('rate_per_second', 0.0)):.2f}",
                "eta": _format_eta(beat.get("eta_seconds")),
                "age": f"{age:.0f}s",
            }
        )
    return format_table(rows, title=title)


def render_fleet_top(
    directory: str,
    now: Optional[float] = None,
    title: str = "fleet",
) -> str:
    """Render a fleet heartbeat directory: one coordinator row plus one
    row per worker (current job, lease age, attempt), for ``repro top
    --fleet DIR`` and ``repro fleet status``.

    The coordinator's heartbeat carries the lease table (job id, attempt,
    lease age per worker); each worker's own heartbeat proves liveness
    (the ``age`` column) and names the job it believes it is running.
    """
    now = time.time() if now is None else now
    coordinator = read_heartbeat(os.path.join(directory, "coordinator.json"))
    rows: List[Dict[str, object]] = []
    leases: Dict[str, Dict[str, object]] = {}
    if coordinator is None:
        rows.append(
            {
                "role": "coordinator",
                "campaign": "(no heartbeat)",
                "progress": "-",
                "job": "-",
                "attempt": "-",
                "lease age": "-",
                "age": "-",
            }
        )
    else:
        leases = coordinator.get("leases") or {}
        done = int(coordinator.get("done", 0))
        total = int(coordinator.get("total", 0))
        fraction = f" ({done / total:.0%})" if total else ""
        age = max(now - float(coordinator.get("updated_unix", now)), 0.0)
        rows.append(
            {
                "role": "coordinator",
                "campaign": str(coordinator.get("label", "?")),
                "progress": f"{done}/{total}{fraction}",
                "job": f"pending {coordinator.get('pending', 0)}",
                "attempt": f"reassigned {coordinator.get('reassignments', 0)}",
                "lease age": "-",
                "age": f"{age:.0f}s",
            }
        )
    worker_files = sorted(
        name
        for name in (os.listdir(directory) if os.path.isdir(directory) else [])
        if name.startswith("worker-") and name.endswith(".json")
    )
    for name in worker_files:
        beat = read_heartbeat(os.path.join(directory, name))
        if beat is None:
            continue
        worker = beat.get("worker")
        lease = leases.get(f"w{worker}") or {}
        job = beat.get("job")
        kind = beat.get("kind")
        cti = beat.get("cti")
        job_text = f"{kind}:{job} (cti {cti})" if job is not None else "idle"
        age = max(now - float(beat.get("updated_unix", now)), 0.0)
        rows.append(
            {
                "role": f"worker {worker}",
                "campaign": str(beat.get("label", name)),
                "progress": f"{int(beat.get('done', 0))} jobs",
                "job": job_text,
                "attempt": beat.get("attempt", lease.get("attempt", "-")),
                "lease age": (
                    f"{float(lease.get('age_seconds', 0.0)):.1f}s"
                    if lease
                    else "-"
                ),
                "age": f"{age:.0f}s",
            }
        )
    return format_table(rows, title=title)


def render_learn_top(
    directory: str,
    now: Optional[float] = None,
    title: str = "continuous learning",
) -> str:
    """Render the learn worker's status heartbeat (``learn run --dir``)
    for ``repro top --learn DIR`` and ``repro learn status``."""
    now = time.time() if now is None else now
    beat = read_heartbeat(os.path.join(directory, "learn.json"))
    if beat is None:
        rows = [
            {
                "stage": "(no status)",
                "cycle": "-",
                "candidate": "-",
                "labels": "-",
                "active": "-",
                "age": "-",
            }
        ]
        return format_table(rows, title=title)
    age = max(now - float(beat.get("updated_unix", now)), 0.0)
    rows = [
        {
            "stage": str(beat.get("stage", "?")),
            "cycle": beat.get("cycle") if beat.get("cycle") is not None else "-",
            "candidate": str(beat.get("candidate", "-")),
            "labels": beat.get("total_labels", 0),
            "active": str(beat.get("active_version", "-")),
            "age": f"{age:.0f}s",
        }
    ]
    return format_table(rows, title=title)


# -- serve status --watch -----------------------------------------------------


def render_serve_watch(
    current: Tuple[Dict[str, object], Dict[str, object]],
    previous: Optional[Tuple[Dict[str, object], Dict[str, object]]] = None,
    elapsed: Optional[float] = None,
) -> str:
    """One refresh line of the live serve view.

    ``current``/``previous`` are ``(status, snapshot)`` pairs from the
    server's ``status`` and ``metrics`` ops. qps comes from the request
    delta over ``elapsed`` (falling back to lifetime average over
    uptime); latency percentiles from the cumulative
    ``serve.request.seconds`` histogram.
    """
    status, snapshot = current
    requests = int(status.get("requests", 0))
    uptime = float(status.get("uptime_seconds", 0.0) or 0.0)
    if previous is not None and elapsed:
        qps = max(requests - int(previous[0].get("requests", 0)), 0) / elapsed
    elif uptime > 0:
        qps = requests / uptime
    else:
        qps = 0.0
    histograms = snapshot.get("histograms") or {}
    latency = histograms.get("serve.request.seconds") or {}
    cache = status.get("cache") or {}
    batcher = status.get("batcher") or {}
    return (
        f"qps {qps:6.1f} | "
        f"p50 {float(latency.get('p50', 0.0)) * 1000:7.2f} ms | "
        f"p99 {float(latency.get('p99', 0.0)) * 1000:7.2f} ms | "
        f"cache hit {float(cache.get('hit_rate', 0.0)):6.1%} | "
        f"queue {int(batcher.get('queue_depth', 0)):3d} | "
        f"model {status.get('model_name', '?')} {status.get('version', '?')} | "
        f"requests {requests}"
    )
