"""Hierarchical wall-clock spans.

A :class:`Span` is a context manager handed out by a registry; entering
pushes it on the registry's span stack (establishing parent/child links
and depth), exiting records the duration, folds it into the per-name
span statistics, and emits one ``span`` event to the sink. Spans carry
free-form attributes (set at creation or via :meth:`Span.set` while the
span is open) that land in the event's ``attrs`` field.

When telemetry is disabled the instrumented code receives the module
singleton :data:`NOOP_SPAN` instead — a stateless context manager whose
``set`` is a no-op — so the disabled cost of ``with obs.span(...)`` is a
single ``None`` check plus an empty context manager.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["Span", "NoopSpan", "NOOP_SPAN"]


class Span:
    """One timed region of a run; created via ``registry.span(name)``."""

    __slots__ = (
        "registry",
        "name",
        "attrs",
        "span_id",
        "parent_id",
        "depth",
        "start",
        "duration",
        "child_seconds",
    )

    def __init__(self, registry, name: str, attrs: Dict[str, object]) -> None:
        self.registry = registry
        self.name = name
        self.attrs = attrs
        self.span_id: int = 0
        self.parent_id: Optional[int] = None
        self.depth: int = 0
        self.start: float = 0.0
        self.duration: float = 0.0
        #: Total duration of direct children (for exclusive-time stats).
        self.child_seconds: float = 0.0

    def set(self, **attrs: object) -> "Span":
        """Attach attributes; chainable, allowed any time before exit."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self.registry._enter_span(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.registry._exit_span(self, failed=exc_type is not None)
        return False


class NoopSpan:
    """Disabled-path stand-in: accepts the same calls, records nothing."""

    __slots__ = ()

    def set(self, **attrs: object) -> "NoopSpan":
        return self

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Shared singleton; stateless, so one instance serves every call site.
NOOP_SPAN = NoopSpan()
