"""The metrics registry: one telemetry domain for one process.

Owns every instrument (counters, gauges, histograms), the per-thread
open-span stacks, and the optional event sink. All timestamps are
seconds relative to the registry's creation (``perf_counter`` based),
so traces from different runs line up at zero.

Each registry carries a **process name** and a **trace id** (see
:mod:`repro.obs.propagation`): every emitted event is stamped with
``proc``, spans additionally with ``trace``, which is what lets
``repro report --merge`` stitch the JSON-lines files of a campaign
client and a serve server into one tree. Span stacks are *thread-local*
— the socket server handles concurrent requests on handler threads, and
each thread's spans nest independently instead of corrupting a shared
stack — while seq numbers, span ids, and sink writes are serialised
under one lock so file ordering stays well-defined.

Event schema (JSON-lines, one object per line, ``seq``-ordered):

- ``{"event": "span", "seq": n, "name": ..., "id": i, "parent": j|null,
  "depth": d, "start": s, "dur": s, "attrs": {...}, "proc": ...,
  "trace": ...}`` — emitted when a span exits (children therefore appear
  before their parents; the tree is reconstructed from ``id``/``parent``).
  A span opened while a remote caller's context is active (see
  :meth:`MetricsRegistry.remote_context`) carries the caller's trace id
  and, at the root, ``"remote": "process:span_id"`` naming its
  cross-process parent.
- ``{"event": "point", "seq": n, "name": ..., "t": s, "fields": {...}}``
  — a one-off observation (e.g. per-epoch training stats).
- ``{"event": "metrics", "seq": n, "counters": ..., "gauges": ...,
  "histograms": ..., "spans": ...}`` — the final snapshot, emitted once
  by :meth:`MetricsRegistry.close`.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.propagation import (
    TraceContext,
    default_process_name,
    new_trace_id,
    sanitize_process_name,
)
from repro.obs.tracing import Span

__all__ = ["MetricsRegistry"]


class _ThreadState(threading.local):
    """Per-thread span stack and remote caller context."""

    def __init__(self) -> None:
        self.stack: List[Span] = []
        self.remote: Optional[TraceContext] = None


class MetricsRegistry:
    """Counters, gauges, histograms, spans, and an optional sink."""

    def __init__(
        self,
        sink=None,
        clock: Callable[[], float] = time.perf_counter,
        process: Optional[str] = None,
        trace_id: Optional[str] = None,
    ) -> None:
        self.sink = sink
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self._next_span_id = 1
        self._lock = threading.Lock()
        self._state = _ThreadState()
        self.process = sanitize_process_name(process or default_process_name())
        self.trace_id = trace_id or new_trace_id()
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Per-span-name aggregates: count, total and exclusive seconds.
        self.span_stats: Dict[str, Dict[str, float]] = {}
        self.closed = False

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the registry was created."""
        return self._clock() - self._t0

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, boundaries)
        return instrument

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, /, **attrs: object) -> Span:
        return Span(self, name, dict(attrs))

    def current_span(self) -> Optional[Span]:
        stack = self._state.stack
        return stack[-1] if stack else None

    def current_trace_id(self) -> str:
        """This thread's effective trace id (a remote caller's wins)."""
        remote = self._state.remote
        if remote is not None and remote.trace_id:
            return remote.trace_id
        return self.trace_id

    @contextlib.contextmanager
    def remote_context(self, context: Optional[TraceContext]) -> Iterator[None]:
        """Adopt a remote caller's trace for this thread's scope.

        While active, spans ending on this thread carry the caller's
        trace id, and a root span (no local parent) records
        ``"remote": context.span_ref`` — the cross-process parent link
        the trace merge resolves. Nests and restores on exit; a ``None``
        context is a no-op so call sites need no branching.
        """
        state = self._state
        previous, state.remote = state.remote, context
        try:
            yield
        finally:
            state.remote = previous

    def _allocate_span_id(self) -> int:
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
            return span_id

    def _enter_span(self, span: Span) -> None:
        stack = self._state.stack
        span.span_id = self._allocate_span_id()
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        span.child_seconds = 0.0
        stack.append(span)
        span.start = self.now()

    def _exit_span(self, span: Span, failed: bool = False) -> None:
        span.duration = self.now() - span.start
        stack = self._state.stack
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # mis-nested exit: unwind to the span
            while stack and stack[-1] is not span:
                stack.pop()
            stack.pop()
        if stack:
            stack[-1].child_seconds += span.duration
        self._fold_span_stats(span.name, span.duration, span.child_seconds)
        event: Dict[str, object] = {
            "event": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "start": round(span.start, 6),
            "dur": round(span.duration, 6),
            "attrs": span.attrs,
            "trace": self.current_trace_id(),
        }
        remote = self._state.remote
        if span.parent_id is None and remote is not None:
            event["remote"] = remote.span_ref
        if failed:
            event["failed"] = True
        self.emit(event)

    def _fold_span_stats(
        self, name: str, duration: float, child_seconds: float
    ) -> None:
        with self._lock:
            stats = self.span_stats.setdefault(
                name, {"count": 0, "total": 0.0, "exclusive": 0.0}
            )
            stats["count"] += 1
            stats["total"] += duration
            stats["exclusive"] += max(duration - child_seconds, 0.0)

    def record_span(
        self,
        name: str,
        start: float,
        duration: float,
        attrs: Optional[Dict[str, object]] = None,
        parent: Optional[int] = None,
        depth: Optional[int] = None,
        child_seconds: float = 0.0,
    ) -> int:
        """Emit a span with explicit timing; returns its span id.

        The escape hatch for work measured *outside* a ``with`` block —
        e.g. queue wait and batched model time observed from timestamps
        the micro-batcher recorded on another thread. With ``parent``
        unset the span parents under the calling thread's open span
        (charging its ``child_seconds`` like a real child would); pass
        an explicit ``parent`` id (+ ``depth``) to build synthetic
        sub-trees under a span returned by a previous call.
        """
        if parent is None:
            stack = self._state.stack
            open_span = stack[-1] if stack else None
            parent_id = open_span.span_id if open_span is not None else None
            span_depth = open_span.depth + 1 if open_span is not None else 0
            if open_span is not None:
                open_span.child_seconds += duration
        else:
            parent_id = parent
            span_depth = depth if depth is not None else 1
        span_id = self._allocate_span_id()
        self._fold_span_stats(name, duration, child_seconds)
        event: Dict[str, object] = {
            "event": "span",
            "name": name,
            "id": span_id,
            "parent": parent_id,
            "depth": span_depth,
            "start": round(start, 6),
            "dur": round(duration, 6),
            "attrs": dict(attrs or {}),
            "trace": self.current_trace_id(),
        }
        remote = self._state.remote
        if parent_id is None and remote is not None:
            event["remote"] = remote.span_ref
        self.emit(event)
        return span_id

    # -- events --------------------------------------------------------------

    def emit(self, event: Dict[str, object]) -> None:
        """Stamp ``proc``/``seq`` and forward to the sink (dropped when
        sink-less)."""
        event = dict(event)
        event.setdefault("proc", self.process)
        with self._lock:
            event["seq"] = self._seq
            self._seq += 1
            if self.sink is not None:
                self.sink.write(event)

    def point(self, name: str, /, **fields: object) -> None:
        """A one-off named observation (per-epoch stats and the like)."""
        self.emit(
            {"event": "point", "name": name, "t": round(self.now(), 6),
             "fields": fields}
        )

    # -- snapshot / shutdown ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything the registry knows, as plain JSON-able data."""
        return {
            "counters": {
                name: counter.snapshot() for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.snapshot() for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": {
                name: dict(stats) for name, stats in sorted(self.span_stats.items())
            },
        }

    def close(self) -> Dict[str, object]:
        """Emit the final metrics snapshot, close the sink; idempotent."""
        summary = self.snapshot()
        if not self.closed:
            self.closed = True
            self.emit({"event": "metrics", **summary})
            if self.sink is not None:
                self.sink.close()
        return summary
