"""The metrics registry: one telemetry domain for one run.

Owns every instrument (counters, gauges, histograms), the open-span
stack, and the optional event sink. All timestamps are seconds relative
to the registry's creation (``perf_counter`` based), so traces from
different runs line up at zero.

Event schema (JSON-lines, one object per line, ``seq``-ordered):

- ``{"event": "span", "seq": n, "name": ..., "id": i, "parent": j|null,
  "depth": d, "start": s, "dur": s, "attrs": {...}}`` — emitted when a
  span exits (children therefore appear before their parents; the tree
  is reconstructed from ``id``/``parent``).
- ``{"event": "point", "seq": n, "name": ..., "t": s, "fields": {...}}``
  — a one-off observation (e.g. per-epoch training stats).
- ``{"event": "metrics", "seq": n, "counters": ..., "gauges": ...,
  "histograms": ..., "spans": ...}`` — the final snapshot, emitted once
  by :meth:`MetricsRegistry.close`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.tracing import Span

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Counters, gauges, histograms, spans, and an optional sink."""

    def __init__(
        self,
        sink=None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sink = sink
        self._clock = clock
        self._t0 = clock()
        self._seq = 0
        self._next_span_id = 1
        self._stack: List[Span] = []
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Per-span-name aggregates: count, total and exclusive seconds.
        self.span_stats: Dict[str, Dict[str, float]] = {}
        self.closed = False

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the registry was created."""
        return self._clock() - self._t0

    # -- instruments ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self, name: str, boundaries: Optional[Sequence[float]] = None
    ) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, boundaries)
        return instrument

    # -- spans ---------------------------------------------------------------

    def span(self, name: str, /, **attrs: object) -> Span:
        return Span(self, name, dict(attrs))

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def _enter_span(self, span: Span) -> None:
        span.span_id = self._next_span_id
        self._next_span_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.depth = len(self._stack)
        span.child_seconds = 0.0
        self._stack.append(span)
        span.start = self.now()

    def _exit_span(self, span: Span, failed: bool = False) -> None:
        span.duration = self.now() - span.start
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # mis-nested exit: unwind to the span
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            self._stack.pop()
        if self._stack:
            self._stack[-1].child_seconds += span.duration
        stats = self.span_stats.setdefault(
            span.name, {"count": 0, "total": 0.0, "exclusive": 0.0}
        )
        stats["count"] += 1
        stats["total"] += span.duration
        stats["exclusive"] += max(span.duration - span.child_seconds, 0.0)
        event: Dict[str, object] = {
            "event": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "start": round(span.start, 6),
            "dur": round(span.duration, 6),
            "attrs": span.attrs,
        }
        if failed:
            event["failed"] = True
        self.emit(event)

    # -- events --------------------------------------------------------------

    def emit(self, event: Dict[str, object]) -> None:
        """Stamp ``seq`` and forward to the sink (dropped when sink-less)."""
        event = dict(event)
        event["seq"] = self._seq
        self._seq += 1
        if self.sink is not None:
            self.sink.write(event)

    def point(self, name: str, /, **fields: object) -> None:
        """A one-off named observation (per-epoch stats and the like)."""
        self.emit(
            {"event": "point", "name": name, "t": round(self.now(), 6),
             "fields": fields}
        )

    # -- snapshot / shutdown ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Everything the registry knows, as plain JSON-able data."""
        return {
            "counters": {
                name: counter.snapshot() for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.snapshot() for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self.histograms.items())
            },
            "spans": {
                name: dict(stats) for name, stats in sorted(self.span_stats.items())
            },
        }

    def close(self) -> Dict[str, object]:
        """Emit the final metrics snapshot, close the sink; idempotent."""
        summary = self.snapshot()
        if not self.closed:
            self.closed = True
            self.emit({"event": "metrics", **summary})
            if self.sink is not None:
                self.sink.close()
        return summary
