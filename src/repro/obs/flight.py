"""Flight recorder: the last N telemetry events, dumped on trouble.

A :class:`FlightRecorder` is a tee :class:`~repro.obs.TelemetrySink`
that keeps a bounded in-memory ring of recent events (wrapping another
sink, or standing alone when no trace file was requested). Nothing is
written in steady state; on a *trigger* — unhandled crash, ``SIGUSR1``,
an :class:`~repro.serve.batching.AdmissionError` shedding load, or an
explicit :meth:`dump_now` — the ring, a registry snapshot, and the
slow-request log are dumped to disk in one atomic write (via
:mod:`repro.resilience.atomic`), so the file at the dump path is always
a complete, parseable post-mortem even if the process dies mid-dump.

The slow-request log is a second, smaller ring fed by
:meth:`note_slow`: serve calls over a configurable threshold land there
with their op, latency, and batch size, giving the dump a "what was
slow recently" section without logging every request.

Install via :func:`install` (used by the CLI's ``--flight PATH``):
wraps the active registry's sink, registers the ``SIGUSR1`` handler
and a ``sys.excepthook`` chain, and returns the recorder. All of this
is opt-in — no ring, no handlers, zero overhead unless requested.
"""

from __future__ import annotations

import collections
import json
import signal
import sys
import threading
import time
import traceback
from typing import Dict, List, Optional

from repro.obs.sink import TelemetrySink

__all__ = ["FlightRecorder", "install", "active_recorder"]

#: The process-wide installed recorder (mirrors ``obs._ACTIVE``).
_RECORDER: Optional["FlightRecorder"] = None


class FlightRecorder(TelemetrySink):
    """Bounded ring of recent events with atomic dump-on-trigger."""

    def __init__(
        self,
        path: str,
        capacity: int = 512,
        slow_capacity: int = 64,
        inner: Optional[TelemetrySink] = None,
    ) -> None:
        self.path = path
        self.inner = inner
        self._ring: collections.deque = collections.deque(maxlen=int(capacity))
        self._slow: collections.deque = collections.deque(maxlen=int(slow_capacity))
        self._lock = threading.Lock()
        self._dumps = 0

    # -- sink interface ------------------------------------------------------

    def write(self, event: Dict[str, object]) -> None:
        with self._lock:
            self._ring.append(event)
        if self.inner is not None:
            self.inner.write(event)

    def close(self) -> None:
        if self.inner is not None:
            self.inner.close()

    # -- slow-request log ----------------------------------------------------

    def note_slow(self, op: str, seconds: float, **detail: object) -> None:
        """Record one over-threshold serve call for the dump's slow log."""
        entry: Dict[str, object] = {
            "op": str(op),
            "seconds": round(float(seconds), 6),
            "unix": time.time(),
        }
        entry.update(detail)
        with self._lock:
            self._slow.append(entry)

    # -- dumping -------------------------------------------------------------

    def dump_now(self, reason: str, detail: Optional[str] = None) -> str:
        """Atomically write the post-mortem JSON; returns the path."""
        from repro import obs
        from repro.resilience.atomic import atomic_write_text

        registry = obs.active()
        with self._lock:
            events: List[Dict[str, object]] = list(self._ring)
            slow: List[Dict[str, object]] = list(self._slow)
            self._dumps += 1
            dumps = self._dumps
        payload: Dict[str, object] = {
            "reason": str(reason),
            "detail": detail,
            "unix": time.time(),
            "dump_number": dumps,
            "events": events,
            "slow_requests": slow,
            "metrics": registry.snapshot() if registry is not None else None,
        }
        atomic_write_text(
            self.path, json.dumps(payload, sort_keys=True, default=str)
        )
        return self.path

    # -- trigger wiring ------------------------------------------------------

    def install_handlers(self) -> None:
        """Hook ``SIGUSR1`` and chain ``sys.excepthook`` (main thread only
        for signals; a non-main-thread install skips the signal hook)."""
        try:
            signal.signal(signal.SIGUSR1, self._on_sigusr1)
        except (ValueError, AttributeError, OSError):
            pass  # not the main thread, or platform without SIGUSR1
        previous_hook = sys.excepthook

        def hook(exc_type, exc, tb):
            try:
                self.dump_now(
                    "crash",
                    detail="".join(
                        traceback.format_exception(exc_type, exc, tb)
                    )[-4000:],
                )
            except Exception:
                pass  # never mask the original crash
            previous_hook(exc_type, exc, tb)

        sys.excepthook = hook

    def _on_sigusr1(self, signum, frame) -> None:
        self.dump_now("sigusr1")


def install(
    path: str,
    capacity: int = 512,
    slow_capacity: int = 64,
    handlers: bool = True,
) -> FlightRecorder:
    """Create a recorder, splice it ahead of the active registry's sink,
    and (optionally) register the signal/crash triggers.

    When no registry is active one is *not* created — the recorder still
    installs (for ``note_slow`` + triggers) but sees no span events; the
    CLI installs ``--flight`` after ``--trace``/``--metrics`` so the
    common path tees everything.
    """
    global _RECORDER
    from repro import obs

    registry = obs.active()
    recorder = FlightRecorder(
        path,
        capacity=capacity,
        slow_capacity=slow_capacity,
        inner=registry.sink if registry is not None else None,
    )
    if registry is not None:
        registry.sink = recorder
    if handlers:
        recorder.install_handlers()
    _RECORDER = recorder
    return recorder


def active_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, or ``None`` (the common, zero-cost case)."""
    return _RECORDER
