"""Trace-context propagation across process boundaries.

Since the serve stack split campaigns across processes (campaign client
→ Unix-socket server), a span tree recorded in one process stops at the
socket: the client sees one opaque ``serve.call``, the server sees
disconnected ``serve.request`` roots. A :class:`TraceContext` is the
bridge — a ``traceparent``-style token carried on every serve request
naming the caller's trace id and its currently-open span, so the server
can parent its own spans under the caller's and
:func:`repro.obs.report.merge_traces` can stitch the two JSON-lines
files back into one tree.

Wire format (one string field, ``trace``, on each request frame)::

    00-<trace_id>-<process>:<span_id>-01

mirroring W3C ``traceparent`` (version - trace-id - parent-id - flags).
The parent-id half is ``process:span_id`` because span ids are only
unique per process: each :class:`~repro.obs.MetricsRegistry` numbers
its spans from 1, and the merge resolves the pair back to the right
file. Parsing is deliberately forgiving — a malformed token degrades to
"no context" rather than failing the request, so an old client can talk
to a new server and vice versa.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Optional

__all__ = [
    "TraceContext",
    "new_trace_id",
    "default_process_name",
    "sanitize_process_name",
    "current_context",
    "parse_span_ref",
]

#: Wire-format shape; process names are sanitised to ``[A-Za-z0-9_.]``
#: so the ``-`` separators stay unambiguous.
_WIRE_PATTERN = re.compile(
    r"^00-(?P<trace>[0-9a-f]{8,32})-(?P<ref>[A-Za-z0-9_.]+:\d+)-01$"
)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id.

    Drawn from ``os.urandom`` — never from the seeded experiment RNG
    streams — so generating one cannot perturb any result (the
    telemetry determinism contract of PR 1).
    """
    return os.urandom(8).hex()


def sanitize_process_name(name: str) -> str:
    """Restrict a process name to wire-safe characters."""
    cleaned = re.sub(r"[^A-Za-z0-9_.]", "_", str(name))
    return cleaned or "proc"


def default_process_name() -> str:
    """The per-process default registry name (``p<pid>``)."""
    return f"p{os.getpid()}"


def parse_span_ref(ref: str) -> Optional[tuple]:
    """Split ``"process:span_id"`` into ``(process, span_id)`` or None."""
    process, _, span = str(ref).rpartition(":")
    if not process or not span.isdigit():
        return None
    return process, int(span)


@dataclass(frozen=True)
class TraceContext:
    """One caller's identity: its trace and the span making the call."""

    trace_id: str
    #: ``"process:span_id"`` of the caller's open span (``:0`` = root).
    span_ref: str

    def to_wire(self) -> str:
        return f"00-{self.trace_id}-{self.span_ref}-01"

    @classmethod
    def from_wire(cls, value: object) -> Optional["TraceContext"]:
        """Parse a wire token; ``None`` for anything malformed or absent."""
        if not isinstance(value, str):
            return None
        match = _WIRE_PATTERN.match(value)
        if match is None:
            return None
        return cls(trace_id=match.group("trace"), span_ref=match.group("ref"))


def current_context(registry=None) -> Optional[TraceContext]:
    """The calling thread's context on ``registry`` (default: the active
    registry), or ``None`` when telemetry is off.

    Inside a :meth:`~repro.obs.MetricsRegistry.remote_context` block the
    *remote* trace id is propagated onward, so a server making its own
    downstream calls extends the original caller's trace rather than
    starting a new one.
    """
    if registry is None:
        from repro import obs

        registry = obs.active()
    if registry is None:
        return None
    span = registry.current_span()
    span_id = span.span_id if span is not None else 0
    return TraceContext(
        trace_id=registry.current_trace_id(),
        span_ref=f"{registry.process}:{span_id}",
    )
