"""Telemetry sinks: where emitted events go.

Events are plain dicts with at least an ``event`` kind and a ``seq``
number (assigned by the registry, so file ordering is reproducible even
when nested spans finish out of start order). The JSON-lines format is
one ``json.dumps(..., sort_keys=True)`` object per line — greppable,
streamable, and round-trippable via :func:`read_events`.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterator, List, Optional, Union

__all__ = ["TelemetrySink", "JsonLinesSink", "MemorySink", "read_events"]


class TelemetrySink:
    """Interface: receives event dicts from a registry."""

    def write(self, event: Dict[str, object]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(TelemetrySink):
    """Keeps events in a list — the test / in-process analysis sink."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.closed = False

    def write(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


class JsonLinesSink(TelemetrySink):
    """Appends one JSON object per event to a file (or file-like)."""

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            self.path: Optional[str] = destination
            self._handle: IO[str] = open(destination, "w")
            self._owns_handle = True
        else:
            self.path = None
            self._handle = destination
            self._owns_handle = False

    def write(self, event: Dict[str, object]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def read_events(path: str) -> List[Dict[str, object]]:
    """Load a JSON-lines trace back into event dicts (blank lines skipped)."""
    return list(iter_events(path))


def iter_events(path: str) -> Iterator[Dict[str, object]]:
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)
