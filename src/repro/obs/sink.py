"""Telemetry sinks: where emitted events go.

Events are plain dicts with at least an ``event`` kind and a ``seq``
number (assigned by the registry, so file ordering is reproducible even
when nested spans finish out of start order). The JSON-lines format is
one ``json.dumps(..., sort_keys=True)`` object per line — greppable,
streamable, and round-trippable via :func:`read_events`.
"""

from __future__ import annotations

import errno
import json
import os
import tempfile
from typing import IO, Dict, Iterator, List, Optional, Union

__all__ = [
    "TelemetrySink",
    "JsonLinesSink",
    "MemorySink",
    "read_events",
    "read_events_tolerant",
]


class TelemetrySink:
    """Interface: receives event dicts from a registry."""

    def write(self, event: Dict[str, object]) -> None:  # pragma: no cover
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemorySink(TelemetrySink):
    """Keeps events in a list — the test / in-process analysis sink."""

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []
        self.closed = False

    def write(self, event: Dict[str, object]) -> None:
        self.events.append(event)

    def close(self) -> None:
        self.closed = True


class JsonLinesSink(TelemetrySink):
    """Appends one JSON object per event to a file (or file-like).

    Path mode is durable: events stream into a temp file in the
    destination's directory, and :meth:`close` fsyncs and atomically
    renames it into place — a reader never observes a half-written
    trace, and a crash mid-run leaves any previous trace at the path
    intact. Unwritable destinations still fail here in the constructor
    (with the underlying :class:`OSError`), before any work runs.
    """

    def __init__(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            if os.path.isdir(destination):
                raise IsADirectoryError(
                    errno.EISDIR, "destination is a directory", destination
                )
            self.path: Optional[str] = destination
            fd, self._temp_path = tempfile.mkstemp(
                dir=os.path.dirname(destination) or ".",
                prefix=os.path.basename(destination) + ".",
                suffix=".tmp",
            )
            self._handle: IO[str] = os.fdopen(fd, "w")
            self._owns_handle = True
        else:
            self.path = None
            self._temp_path = None
            self._handle = destination
            self._owns_handle = False

    def write(self, event: Dict[str, object]) -> None:
        self._handle.write(json.dumps(event, sort_keys=True, default=str))
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        if self._owns_handle:
            os.fsync(self._handle.fileno())
            self._handle.close()
            assert self.path is not None and self._temp_path is not None
            os.replace(self._temp_path, self.path)


def read_events(path: str) -> List[Dict[str, object]]:
    """Load a JSON-lines trace back into event dicts (blank lines skipped).

    A truncated *final* line — the signature a crash mid-write leaves on
    an append-mode trace — is silently dropped rather than raised, so a
    post-mortem ``repro report`` can always read what did land. Garbage
    anywhere else (including a file whose only line is unparseable — a
    non-trace, not a casualty) still raises ``json.JSONDecodeError``.
    Use :func:`read_events_tolerant` to learn how many records were
    dropped.
    """
    events, _ = read_events_tolerant(path)
    return events


def read_events_tolerant(path: str):
    """Like :func:`read_events`, returning ``(events, truncated_count)``.

    ``truncated_count`` is how many trailing partial records were
    skipped (0 or 1 — only the final line can be a mid-write casualty).
    """
    events: List[Dict[str, object]] = []
    truncated = 0
    with open(path) as handle:
        lines = handle.readlines()
    last_content = -1
    for index in range(len(lines) - 1, -1, -1):
        if lines[index].strip():
            last_content = index
            break
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            # Tail tolerance needs evidence the file IS a trace: at
            # least one well-formed record before the broken tail.
            if index == last_content and events:
                truncated += 1
            else:
                raise
    return events, truncated


def iter_events(path: str) -> Iterator[Dict[str, object]]:
    """Iterate a trace's events (same tail tolerance as
    :func:`read_events`)."""
    return iter(read_events(path))
