"""Pipeline-wide telemetry: metrics, tracing, and run reports.

The subsystem is **zero-overhead by default**: no registry is installed
at import time, and every module-level helper (:func:`span`,
:func:`add`, :func:`observe`, :func:`gauge`, :func:`tick`/:func:`tock`,
:func:`point`) degrades to a single ``None`` check when telemetry is
off. Instrumented code therefore never branches on configuration and
never perturbs results — telemetry reads the clock, it does not touch
any RNG stream.

Enabling telemetry is one call::

    from repro import obs
    from repro.obs import JsonLinesSink, MetricsRegistry

    registry = obs.set_registry(MetricsRegistry(sink=JsonLinesSink("run.jsonl")))
    ...  # run the pipeline: spans/counters/histograms now record
    registry.close()          # emits the final metrics snapshot
    obs.clear_registry()

or, scoped (tests, benches)::

    with obs.use_registry(MetricsRegistry(sink=MemorySink())) as registry:
        ...

The CLI exposes the same switchery via the global ``--trace FILE`` /
``--metrics`` flags and renders traces with ``repro report`` (see
``docs/OBSERVABILITY.md`` for the event schema and span naming
conventions: ``<stage>.<step>`` where stage is one of ``cli``,
``corpus``, ``dataset``, ``pretrain``, ``train``, ``adapt``,
``campaign``, ``execution``).
"""

from __future__ import annotations

import contextlib
import functools
import time
from typing import Iterator, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, default_duration_buckets
from repro.obs.propagation import TraceContext, current_context, new_trace_id
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import (
    JsonLinesSink,
    MemorySink,
    TelemetrySink,
    read_events,
    read_events_tolerant,
)
from repro.obs.tracing import NOOP_SPAN, NoopSpan, Span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetrySink",
    "JsonLinesSink",
    "MemorySink",
    "Span",
    "NoopSpan",
    "TraceContext",
    "current_context",
    "new_trace_id",
    "read_events",
    "read_events_tolerant",
    "default_duration_buckets",
    "active",
    "is_enabled",
    "set_registry",
    "clear_registry",
    "use_registry",
    "span",
    "timed",
    "add",
    "gauge",
    "observe",
    "point",
    "tick",
    "tock",
]

#: The process-wide active registry; ``None`` means telemetry is off.
_ACTIVE: Optional[MetricsRegistry] = None


def active() -> Optional[MetricsRegistry]:
    """The installed registry, or ``None`` when telemetry is disabled."""
    return _ACTIVE


def is_enabled() -> bool:
    return _ACTIVE is not None


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide telemetry domain."""
    global _ACTIVE
    _ACTIVE = registry
    return registry


def clear_registry() -> Optional[MetricsRegistry]:
    """Disable telemetry; returns the registry that was active (if any)."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, None
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scoped installation: restores the previous registry on exit."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = previous


# -- hot-path helpers ----------------------------------------------------------


def span(name: str, /, **attrs: object) -> Union[Span, NoopSpan]:
    """A span on the active registry, or the shared no-op when disabled."""
    registry = _ACTIVE
    if registry is None:
        return NOOP_SPAN
    return registry.span(name, **attrs)


def timed(name: str):
    """Decorator form of :func:`span` (attrs are fixed at decoration)."""

    def decorate(function):
        @functools.wraps(function)
        def wrapper(*args, **kwargs):
            registry = _ACTIVE
            if registry is None:
                return function(*args, **kwargs)
            with registry.span(name):
                return function(*args, **kwargs)

        return wrapper

    return decorate


def add(name: str, amount: int = 1) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.counter(name).add(amount)


def gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.histogram(name).observe(value)


def point(name: str, /, **fields: object) -> None:
    """Emit a one-off observation event (no-op when disabled)."""
    registry = _ACTIVE
    if registry is not None:
        registry.point(name, **fields)


def tick() -> Optional[float]:
    """Start a cheap manual timer; pairs with :func:`tock`.

    Returns ``None`` when telemetry is disabled so the paired
    :func:`tock` is a no-op — the hot-path pattern for code too
    frequently called for a full span per invocation.
    """
    if _ACTIVE is None:
        return None
    return time.perf_counter()


def tock(name: str, started: Optional[float]) -> None:
    """Record elapsed seconds since :func:`tick` into histogram ``name``."""
    registry = _ACTIVE
    if started is None or registry is None:
        return
    registry.histogram(name).observe(time.perf_counter() - started)
