"""Command-line interface: ``python -m repro <command>``.

Runs the pipeline stages a downstream user needs without writing code:

- ``info``      — build a kernel and print its inventory
- ``fuzz``      — grow an STI corpus and report coverage
- ``train``     — full pipeline to a trained PIC model (checkpoint saved)
- ``campaign``  — PCT vs MLPCT race-coverage campaign; ``--batch-size N``
  sets how many candidate graphs the PIC scores per batched inference
  call and ``--workers N`` executes selected CTs in N worker processes
  (results identical to serial; see ``docs/PERFORMANCE.md``)
- ``razzer``    — Razzer / Razzer-Relax / Razzer-PIC on injected races
- ``snowboard`` — INS-PAIR clustering + sampler comparison
- ``filter-model`` — the §A.6 analytic rejection-filter calculator
- ``report``    — render a telemetry trace (stage table + span timeline)
- ``quality``   — model-quality regression gate: rebuild the golden
  pipeline, measure predictor metrics, compare against the stored
  baseline with tolerance bands (non-zero exit on regression; see
  ``docs/TESTING.md``)
- ``serve``     — shared PIC prediction service on a Unix socket
  (``start``/``stop``/``status``); campaigns attach to it with
  ``campaign --serve-socket PATH``, or use ``campaign --serve`` for an
  in-process service (shared cache + micro-batching; see
  ``docs/SERVING.md``)
- ``fleet``     — fault-tolerant distributed campaign
  (``run``/``status``): a coordinator leases score/execute jobs to N
  worker processes, survives worker crashes/hangs and its own SIGKILL
  (``--resume``), and aggregates byte-identically to the
  single-process campaign (see ``docs/FLEET.md``)
- ``learn``     — continuous-learning lifecycle
  (``run``/``status``/``publish``): tail ``--capture-labels`` campaign
  journals into a durable label store, fine-tune the registry's active
  model on fresh labels, gate the candidate on a fresh-label holdout,
  and promote (or quarantine) it; a live ``serve`` server hot-swaps to
  the promoted version with ``serve swap`` (see ``docs/LIFECYCLE.md``)

Every command accepts ``--seed`` and prints deterministic results. The
global ``--trace FILE`` flag records a JSON-lines telemetry trace of the
run (readable with ``repro report FILE``) and ``--metrics`` prints the
metrics summary after the command finishes; both are off by default and
cost nothing when unused (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro import __version__, obs
from repro.core import ExplorationConfig, Snowcat, SnowcatConfig, run_campaign
from repro.core.filtermodel import FilterModel
from repro.kernel import KernelConfig, build_kernel
from repro.reporting import format_series, format_table

__all__ = ["main", "build_parser"]


def _add_axis_flags(parser: argparse.ArgumentParser) -> None:
    """Scenario-axis flags shared by ``campaign`` and ``fleet run``.

    Defaults reproduce the historical two-thread SC campaign
    byte-for-byte (see docs/TESTING.md, "Scenario axes").
    """
    parser.add_argument(
        "--threads",
        type=int,
        default=2,
        help="threads per CT (corpus entries per CTI); 2 is the paper's "
        "configuration and the byte-identical default",
    )
    parser.add_argument(
        "--irq",
        action="store_true",
        help="inject one interrupt per executed CT at a seed-derived "
        "arrival step, drawn from the kernel's IRQ handler pool",
    )
    parser.add_argument(
        "--memory-model",
        choices=("sc", "tso"),
        default="sc",
        help="memory model for dynamic executions: sequential "
        "consistency (default) or TSO per-thread store buffers",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Snowcat reproduction: learned coverage prediction for "
        "kernel concurrency testing",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("--seed", type=int, default=0, help="global seed")
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record a JSON-lines telemetry trace of this run to FILE",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the telemetry metrics summary after the command",
    )
    parser.add_argument(
        "--proc",
        metavar="NAME",
        default=None,
        help="process name stamped on telemetry events (default: p<pid>); "
        "name client and server distinctly for 'repro report --merge'",
    )
    parser.add_argument(
        "--flight",
        metavar="FILE",
        default=None,
        help="arm the flight recorder: keep a ring of recent telemetry "
        "events and dump them atomically to FILE on crash, SIGUSR1, or "
        "admission-control rejection",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("info", help="build a kernel and print its inventory")

    fuzz = commands.add_parser("fuzz", help="grow an STI corpus")
    fuzz.add_argument("--rounds", type=int, default=200)

    train = commands.add_parser("train", help="train a PIC model")
    train.add_argument("--ctis", type=int, default=30)
    train.add_argument("--epochs", type=int, default=3)
    train.add_argument("--out", type=str, default=None, help="checkpoint path (.npz)")

    campaign = commands.add_parser("campaign", help="PCT vs MLPCT campaign")
    campaign.add_argument("--ctis", type=int, default=8)
    campaign.add_argument("--strategy", choices=("S1", "S2", "S3"), default="S1")
    campaign.add_argument(
        "--batch-size",
        type=int,
        default=ExplorationConfig.score_batch_size,
        help="candidate graphs scored per batched inference call "
        "(1 disables batching)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for dynamic executions "
        "(0 runs serially; results are identical either way)",
    )
    campaign.add_argument(
        "--model",
        metavar="CKPT",
        default=None,
        help="use a saved PIC checkpoint instead of training; an unusable "
        "checkpoint degrades to the PCT baseline with a warning",
    )
    campaign.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="journal campaign progress durably to FILE (any previous "
        "journal state at FILE is reset first)",
    )
    campaign.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume an interrupted journaled campaign from FILE "
        "(mutually exclusive with --journal)",
    )
    campaign.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="deterministic fault injection, e.g. 'crash:0.05,hang@3' "
        "(see docs/ROBUSTNESS.md; implies supervised execution)",
    )
    campaign.add_argument(
        "--supervise",
        action="store_true",
        help="supervised execution: per-CT timeouts, bounded retries, "
        "quarantine, pool-to-serial fallback",
    )
    campaign.add_argument(
        "--ct-timeout",
        type=float,
        default=None,
        help="per-CT wall-clock timeout in seconds (implies --supervise)",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=None,
        help="retries before a failing CT is quarantined (implies --supervise)",
    )
    campaign.add_argument(
        "--serve",
        action="store_true",
        help="route candidate scoring through an in-process prediction "
        "service (content-addressed cache + micro-batching; results are "
        "identical to direct scoring)",
    )
    campaign.add_argument(
        "--serve-socket",
        metavar="PATH",
        default=None,
        help="route candidate scoring through a running 'repro serve' "
        "server on this Unix socket (no local model is trained)",
    )
    campaign.add_argument(
        "--heartbeat",
        metavar="FILE",
        default=None,
        help="publish throttled campaign progress snapshots (CTIs done, "
        "races, rate, ETA) to FILE for 'repro top'",
    )
    campaign.add_argument(
        "--cascade",
        action="store_true",
        help="two-stage scoring cascade: a cheap trained filter rejects "
        "unpromising candidates before the full PIC runs "
        "(see docs/PERFORMANCE.md)",
    )
    campaign.add_argument(
        "--filter-recall",
        type=float,
        default=0.95,
        metavar="FLOOR",
        help="cascade recall floor, calibrated on a campaign-style "
        "candidate pool; 1.0 accepts everything (behaviour-preserving)",
    )
    campaign.add_argument(
        "--infer-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="GNN precision for batched scoring; float32 is ~1.7x faster "
        "and covered by the quality gate (single-graph scoring stays "
        "float64 either way)",
    )
    campaign.add_argument(
        "--capture-labels",
        action="store_true",
        help="record executed-CT coverage labels inside the campaign "
        "journal for the continuous-learning tailer (requires "
        "--journal/--resume; see docs/LIFECYCLE.md)",
    )
    _add_axis_flags(campaign)

    razzer = commands.add_parser("razzer", help="directed race reproduction")
    razzer.add_argument("--schedules", type=int, default=400)
    razzer.add_argument("--races", type=int, default=2, help="races to attempt")

    snowboard = commands.add_parser(
        "snowboard", help="INS-PAIR clustering + sampler comparison"
    )
    snowboard.add_argument("--trials", type=int, default=20)
    snowboard.add_argument("--schedules", type=int, default=40)

    filter_model = commands.add_parser(
        "filter-model", help="analytic rejection-filter economics (§A.6)"
    )
    filter_model.add_argument("--fruitful", type=float, default=0.011)
    filter_model.add_argument("--tpr", type=float, default=0.69)
    filter_model.add_argument("--fpr", type=float, default=0.008)

    quality = commands.add_parser(
        "quality",
        help="model-quality regression gate against the golden baseline",
    )
    quality.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline JSON to gate against (default: the packaged baseline)",
    )
    quality.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="measure the golden pipeline and write a fresh baseline to "
        "FILE instead of gating (use after an intentional quality change)",
    )
    quality.add_argument(
        "--model",
        metavar="VERSION",
        default=None,
        help="score a registry candidate version through the golden gate "
        "instead of the golden pipeline's own model (requires --registry)",
    )
    quality.add_argument(
        "--registry",
        metavar="DIR",
        default=None,
        help="model registry holding the --model candidate",
    )

    serve = commands.add_parser(
        "serve",
        help="shared PIC prediction service over a Unix socket "
        "(see docs/SERVING.md)",
    )
    serve_actions = serve.add_subparsers(dest="action", required=True)
    serve_start = serve_actions.add_parser(
        "start", help="host a PIC model on a Unix socket (foreground)"
    )
    serve_start.add_argument(
        "--socket", required=True, metavar="PATH", help="Unix socket path"
    )
    serve_start.add_argument(
        "--model",
        metavar="CKPT",
        default=None,
        help="PIC checkpoint (.npz) to serve; trains a fresh model when "
        "neither --model nor --registry is given",
    )
    serve_start.add_argument(
        "--registry",
        metavar="DIR",
        default=None,
        help="serve a model registry's active version instead of --model",
    )
    serve_start.add_argument(
        "--model-version",
        default=None,
        help="version label for --model, or the registry version to serve",
    )
    serve_start.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="largest coalesced inference batch",
    )
    serve_start.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="micro-batching window after the first queued request",
    )
    serve_start.add_argument(
        "--cache-mb",
        type=int,
        default=64,
        help="prediction-cache budget in MiB",
    )
    serve_start.add_argument(
        "--slow-request-ms",
        type=float,
        default=None,
        help="log serve calls slower than this to the flight recorder's "
        "slow-request log (requires --flight)",
    )
    serve_start.add_argument(
        "--infer-dtype",
        choices=("float64", "float32"),
        default="float64",
        help="GNN precision for batched scoring on the server",
    )
    serve_start.add_argument(
        "--score-threads",
        type=int,
        default=0,
        metavar="N",
        help="worker threads sharding large scoring batches "
        "(0 = single-threaded)",
    )
    serve_stop = serve_actions.add_parser(
        "stop", help="shut down the server on a socket"
    )
    serve_stop.add_argument("--socket", required=True, metavar="PATH")
    serve_swap = serve_actions.add_parser(
        "swap",
        help="hot-swap a running server (started with --registry) to a "
        "registry version without dropping clients",
    )
    serve_swap.add_argument("--socket", required=True, metavar="PATH")
    serve_swap.add_argument(
        "--model-version",
        default=None,
        help="registry version to swap to (default: the registry's "
        "current active version, re-read from disk)",
    )
    serve_status = serve_actions.add_parser(
        "status", help="print a running server's model identity and stats"
    )
    serve_status.add_argument("--socket", required=True, metavar="PATH")
    serve_status.add_argument(
        "--watch",
        action="store_true",
        help="live view: one line per refresh with qps, p50/p99 latency, "
        "cache hit rate, queue depth, and model version",
    )
    serve_status.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between --watch refreshes",
    )
    serve_status.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop --watch after this many refreshes (0 = until Ctrl-C)",
    )
    serve_metrics = serve_actions.add_parser(
        "metrics",
        help="print the server's metrics in Prometheus text exposition",
    )
    serve_metrics.add_argument("--socket", required=True, metavar="PATH")

    fleet = commands.add_parser(
        "fleet",
        help="fault-tolerant distributed campaign fleet: coordinator + "
        "leased workers with crash-exact aggregation (see docs/FLEET.md)",
    )
    fleet_actions = fleet.add_subparsers(dest="action", required=True)
    fleet_run = fleet_actions.add_parser(
        "run", help="run a campaign sharded across N leased worker processes"
    )
    fleet_run.add_argument("--ctis", type=int, default=6)
    fleet_run.add_argument(
        "--strategy", choices=("S1", "S2", "S3"), default="S1"
    )
    fleet_run.add_argument(
        "--pct-only",
        action="store_true",
        help="run only the PCT baseline (no model is trained or served)",
    )
    fleet_run.add_argument(
        "--workers", type=int, default=3, help="fleet worker processes"
    )
    fleet_run.add_argument(
        "--batch-size",
        type=int,
        default=ExplorationConfig.score_batch_size,
        help="candidate graphs scored per batched inference call",
    )
    fleet_run.add_argument(
        "--model",
        metavar="CKPT",
        default=None,
        help="use a saved PIC checkpoint instead of training",
    )
    fleet_run.add_argument(
        "--serve-socket",
        metavar="PATH",
        default=None,
        help="score through a running 'repro serve' server; every worker "
        "opens its own resilient connection (reconnect + backoff)",
    )
    fleet_run.add_argument(
        "--journal",
        metavar="FILE",
        default=None,
        help="journal fleet progress durably to FILE (any previous "
        "journal state at FILE is reset first)",
    )
    fleet_run.add_argument(
        "--resume",
        metavar="FILE",
        default=None,
        help="resume an interrupted journaled fleet campaign from FILE",
    )
    fleet_run.add_argument(
        "--inject-faults",
        metavar="SPEC",
        default=None,
        help="fleet fault plan keyed by job id, e.g. 'crash@2,hang:0.1'; "
        "'die@j' kills the coordinator at dispatch of job j "
        "(see docs/FLEET.md)",
    )
    fleet_run.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="silence (no pipe traffic, no heartbeat) after which a "
        "worker's lease is revoked and its job reassigned",
    )
    fleet_run.add_argument(
        "--max-job-attempts",
        type=int,
        default=4,
        help="total attempts one job may consume before the fleet fails",
    )
    fleet_run.add_argument(
        "--heartbeat-dir",
        metavar="DIR",
        default=None,
        help="directory for coordinator + worker heartbeat files "
        "(watch with 'repro fleet status --dir DIR' or "
        "'repro top --fleet DIR')",
    )
    fleet_run.add_argument(
        "--receipts",
        metavar="DIR",
        default=None,
        help="write a checksummed provenance receipt per job to DIR and "
        "verify coverage at the end",
    )
    fleet_run.add_argument(
        "--capture-labels",
        action="store_true",
        help="record executed-CT coverage labels inside the fleet "
        "journal for the continuous-learning tailer (requires "
        "--journal/--resume; see docs/LIFECYCLE.md)",
    )
    _add_axis_flags(fleet_run)
    fleet_status = fleet_actions.add_parser(
        "status",
        help="render coordinator + worker heartbeats from a fleet "
        "heartbeat directory",
    )
    fleet_status.add_argument(
        "--dir", required=True, metavar="DIR", help="fleet heartbeat dir"
    )
    fleet_status.add_argument(
        "--watch", action="store_true", help="refresh until Ctrl-C"
    )
    fleet_status.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    fleet_status.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop --watch after this many refreshes (0 = until Ctrl-C)",
    )

    learn = commands.add_parser(
        "learn",
        help="continuous-learning lifecycle: tail labels, fine-tune, "
        "gate, promote (see docs/LIFECYCLE.md)",
    )
    learn_actions = learn.add_subparsers(dest="action", required=True)
    learn_run = learn_actions.add_parser(
        "run",
        help="one lifecycle pass: tail journals into the label store, "
        "then fine-tune/gate/promote when enough fresh labels arrived",
    )
    learn_run.add_argument(
        "--dir",
        required=True,
        metavar="DIR",
        help="learn state directory (label store, worker journal, "
        "candidates, quarantine, status heartbeat)",
    )
    learn_run.add_argument(
        "--registry",
        required=True,
        metavar="DIR",
        help="model registry: base models come from (and promoted "
        "candidates go to) its active lineage",
    )
    learn_run.add_argument(
        "--journals",
        nargs="*",
        metavar="FILE",
        default=[],
        help="campaign/fleet journal file(s) to tail for captured labels "
        "(written by campaign --journal --capture-labels)",
    )
    learn_run.add_argument(
        "--min-labels",
        type=int,
        default=8,
        help="fresh labels since the last cycle that trigger fine-tuning",
    )
    learn_run.add_argument(
        "--window",
        type=int,
        default=256,
        help="sliding training window: the most recent N labels",
    )
    learn_run.add_argument("--epochs", type=int, default=2)
    learn_run.add_argument("--learning-rate", type=float, default=1e-3)
    learn_run.add_argument(
        "--holdout-every",
        type=int,
        default=4,
        help="every k-th window example is held out for the gate",
    )
    learn_run.add_argument(
        "--min-gain",
        type=float,
        default=-0.05,
        help="gate rule: candidate holdout AP must be >= active AP + "
        "MIN_GAIN (negative tolerates noise; large positive forces a "
        "quarantine)",
    )
    learn_run.add_argument(
        "--replay-ctis",
        type=int,
        default=2,
        help="replay CTIs mixed into training against forgetting",
    )
    learn_run.add_argument(
        "--golden-gate",
        action="store_true",
        help="also require the pinned golden quality gate "
        "(vocabulary-compatible candidates only)",
    )
    learn_run.add_argument(
        "--cycles",
        type=int,
        default=1,
        help="maximum fine-tune cycles this invocation runs",
    )
    learn_status = learn_actions.add_parser(
        "status", help="print the worker's status heartbeat"
    )
    learn_status.add_argument("--dir", required=True, metavar="DIR")
    learn_publish = learn_actions.add_parser(
        "publish",
        help="publish a checkpoint into a registry as the active base "
        "model (bootstraps the lifecycle)",
    )
    learn_publish.add_argument("--registry", required=True, metavar="DIR")
    learn_publish.add_argument("--model", required=True, metavar="CKPT")
    learn_publish.add_argument(
        "--model-version",
        default=None,
        help="version label (default: auto-numbered v<N>)",
    )

    report = commands.add_parser(
        "report", help="render a recorded telemetry trace (--trace output)"
    )
    report.add_argument(
        "trace_file",
        nargs="+",
        help="JSON-lines trace(s) to render; multiple files (e.g. campaign "
        "client + serve server) are merged into one cross-process tree",
    )
    report.add_argument(
        "--merge",
        action="store_true",
        help="merge the given traces into one cross-process report "
        "(implied when more than one file is given)",
    )
    report.add_argument(
        "--timeline-rows",
        type=int,
        default=60,
        help="maximum spans shown in the timeline",
    )

    top = commands.add_parser(
        "top",
        help="campaign fleet progress from heartbeat files "
        "(campaign --heartbeat FILE)",
    )
    top.add_argument(
        "heartbeat_file", nargs="*", help="heartbeat JSON file(s) to watch"
    )
    top.add_argument(
        "--fleet",
        metavar="DIR",
        default=None,
        help="also render coordinator + worker rows from a fleet "
        "heartbeat directory (fleet run --heartbeat-dir DIR)",
    )
    top.add_argument(
        "--learn",
        metavar="DIR",
        default=None,
        help="also render the continuous-learning worker's status from "
        "its state directory (learn run --dir DIR)",
    )
    top.add_argument(
        "--watch", action="store_true", help="refresh until Ctrl-C"
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop --watch after this many refreshes (0 = until Ctrl-C)",
    )

    return parser


def _trained_snowcat(
    seed: int,
    ctis: int = 30,
    epochs: int = 3,
    exploration: Optional[ExplorationConfig] = None,
) -> Snowcat:
    kernel = build_kernel(KernelConfig(), seed=seed)
    snowcat = Snowcat(
        kernel,
        SnowcatConfig(
            seed=seed,
            corpus_rounds=200,
            dataset_ctis=ctis,
            epochs=epochs,
            exploration=exploration or ExplorationConfig(),
        ),
    )
    snowcat.train()
    return snowcat


def _cmd_info(args) -> int:
    kernel = build_kernel(KernelConfig(), seed=args.seed)
    print(kernel.describe())
    rows = [
        {
            "bug": spec.bug_id,
            "kind": spec.kind.value,
            "subsystem": spec.subsystem,
            "harmful": spec.harmful,
            "trigger": " + ".join(spec.trigger_syscalls),
        }
        for spec in kernel.bugs
    ]
    print(format_table(rows, title="injected concurrency bugs"))
    return 0


def _cmd_fuzz(args) -> int:
    kernel = build_kernel(KernelConfig(), seed=args.seed)
    snowcat = Snowcat(kernel, SnowcatConfig(seed=args.seed, corpus_rounds=args.rounds))
    size = snowcat.prepare_corpus()
    coverage = snowcat.graphs.corpus.coverage_fraction()
    print(f"corpus: {size} STIs after {args.rounds} rounds "
          f"({coverage:.1%} sequential block coverage)")
    return 0


def _cmd_train(args) -> int:
    if args.out:
        # Fail fast on an unwritable destination: before hours of
        # training, not after.
        from repro.resilience.atomic import probe_writable

        try:
            probe_writable(args.out)
        except OSError as error:
            print(
                f"error: cannot write checkpoint to {args.out}: {error}",
                file=sys.stderr,
            )
            return 2
    snowcat = _trained_snowcat(args.seed, args.ctis, args.epochs)
    result = snowcat.training_result
    assert result is not None and snowcat.model is not None
    print(
        f"trained {snowcat.model.config.name}: "
        f"validation URB AP {result.best_validation_ap:.3f}, "
        f"threshold {result.threshold:.2f}, "
        f"simulated startup {snowcat.startup_hours:.1f} h"
    )
    if args.out:
        try:
            snowcat.model.save(args.out)
        except OSError as error:
            print(
                f"error: cannot write checkpoint to {args.out}: {error}",
                file=sys.stderr,
            )
            return 2
        print(f"checkpoint written to {args.out}")
    return 0


def _campaign_snowcat(args, exploration: ExplorationConfig):
    """Build the deployment for ``campaign``: trained, or from ``--model``.

    Returns ``(snowcat, degraded)``; ``degraded`` is True when the
    supplied checkpoint was unusable and the campaign must fall back to
    the PCT baseline.
    """
    from repro.errors import CheckpointError

    if not args.model:
        return _trained_snowcat(args.seed, exploration=exploration), False
    from repro.ml.pic import PICModel

    snowcat = Snowcat.standard(args.seed, exploration=exploration)
    try:
        model = PICModel.load(args.model, seed=args.seed)
        if len(snowcat.graphs.vocabulary) > model.config.vocab_size:
            raise CheckpointError(
                f"checkpoint vocabulary ({model.config.vocab_size} tokens) "
                f"is smaller than this kernel's "
                f"({len(snowcat.graphs.vocabulary)} tokens)"
            )
    except CheckpointError as error:
        # Graceful degradation: an unusable model must not kill the
        # campaign — fall back to the learned-filter-free baseline,
        # loudly.
        print(
            f"warning: model checkpoint {args.model} is unusable ({error}); "
            "continuing with the PCT baseline",
            file=sys.stderr,
        )
        obs.point("resilience.degraded", checkpoint=args.model)
        return snowcat, True
    snowcat.model = model
    return snowcat, False


def _campaign_backend(args, exploration: ExplorationConfig):
    """Resolve the serving seam for ``campaign``.

    Returns ``(snowcat, degraded, backend)``. With ``--serve-socket`` no
    local model is trained — the corpus is still grown locally (graphs
    are built client-side) and predictions come from the remote server,
    whose vocabulary must cover this kernel's. With ``--serve`` the
    locally trained model is wrapped in an in-process service.
    """
    if args.serve_socket:
        from repro.errors import ServeError
        from repro.serve import SocketBackend

        snowcat = Snowcat.standard(args.seed, exploration=exploration)
        backend = SocketBackend(args.serve_socket)
        try:
            status = backend.status()
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return None, False, None
        vocab = len(snowcat.graphs.vocabulary)
        if int(status.get("vocab_size", 0)) < vocab:
            print(
                f"error: served model vocabulary "
                f"({status.get('vocab_size')} tokens) is smaller than this "
                f"kernel's ({vocab} tokens); serve a compatible checkpoint",
                file=sys.stderr,
            )
            backend.close()
            return None, False, None
        print(
            f"scoring via {args.serve_socket} "
            f"(model {status.get('model_name')} {status.get('version')})"
        )
        return snowcat, False, backend
    snowcat, degraded = _campaign_snowcat(args, exploration)
    backend = None
    if args.serve and not degraded:
        from repro.serve import BatcherConfig, InProcessServer

        backend = InProcessServer(
            snowcat.require_model(),
            version="local",
            batcher_config=BatcherConfig(max_batch=args.batch_size),
        )
    return snowcat, degraded, backend


def _cmd_campaign(args) -> int:
    from repro.errors import CheckpointError, FaultSpecError, JournalError

    supervised = (
        args.supervise
        or args.inject_faults is not None
        or args.ct_timeout is not None
        or args.retries is not None
    )
    supervision = None
    if supervised:
        from repro.resilience.supervisor import SupervisionPolicy

        overrides = {}
        if args.ct_timeout is not None:
            overrides["timeout_seconds"] = args.ct_timeout
        if args.retries is not None:
            overrides["max_retries"] = args.retries
        supervision = SupervisionPolicy(**overrides)
    if args.inject_faults is not None:
        from repro.resilience.faults import FaultPlan

        try:  # validate the spec before any expensive work
            FaultPlan.parse(args.inject_faults, seed=args.seed)
        except FaultSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.threads < 2:
        print("error: --threads must be at least 2", file=sys.stderr)
        return 2
    exploration = ExplorationConfig(
        score_batch_size=args.batch_size,
        parallel_workers=args.workers,
        supervision=supervision,
        fault_spec=args.inject_faults,
        num_threads=args.threads,
        irq=args.irq,
        memory_model=args.memory_model,
    )

    journal = None
    if args.journal and args.resume:
        print(
            "error: --journal and --resume are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.serve and args.serve_socket:
        print(
            "error: --serve and --serve-socket are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    journal_path = args.journal or args.resume
    if args.resume and not os.path.exists(args.resume):
        print(
            f"error: cannot resume: journal {args.resume} does not exist",
            file=sys.stderr,
        )
        return 2
    if args.capture_labels and not journal_path:
        print(
            "error: --capture-labels needs a journal to write labels into "
            "(add --journal FILE or --resume FILE)",
            file=sys.stderr,
        )
        return 2

    snowcat, degraded, backend = _campaign_backend(args, exploration)
    if snowcat is None:
        return 2
    if args.infer_dtype != "float64" and snowcat.model is not None:
        snowcat.model.set_inference_mode(args.infer_dtype)
    cascade_filter = None
    if args.cascade and not degraded:
        cascade_filter = snowcat.trained_filter(recall_floor=args.filter_recall)
        op = cascade_filter.operating_point(snowcat.config.costs)
        print(
            f"cascade filter: threshold {cascade_filter.threshold:.3f} "
            f"(recall floor {args.filter_recall:.2f}, calibrated "
            f"tpr {cascade_filter.measured_tpr:.2f} / "
            f"fpr {cascade_filter.measured_fpr:.2f}, "
            f"projected speedup {op.speedup:.2f}x)"
        )

    if journal_path:
        from repro.resilience.journal import CampaignJournal, reset_journal

        if args.journal:
            reset_journal(args.journal)
        try:
            journal = CampaignJournal(journal_path)
        except (JournalError, CheckpointError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    heartbeat = None
    if args.heartbeat:
        from repro.obs.export import HeartbeatWriter

        heartbeat = HeartbeatWriter(args.heartbeat)

    explorers = [snowcat.pct_explorer()]
    if not degraded:
        explorers.append(
            snowcat.mlpct_explorer(
                args.strategy, backend=backend, cascade_filter=cascade_filter
            )
        )
    if args.capture_labels:
        for explorer in explorers:
            explorer.capture_labels = True
    ctis = snowcat.cti_stream(args.ctis, threads=args.threads)
    curves = {}
    try:
        for explorer in explorers:
            try:
                result = run_campaign(
                    explorer, ctis, journal=journal, heartbeat=heartbeat
                )
            except (JournalError, CheckpointError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            curves[explorer.label] = result.history
            print(
                f"{explorer.label}: {result.total_races} races, "
                f"{result.ledger.executions} executions, "
                f"{result.ledger.total_hours:.2f} simulated hours"
            )
            for delta in result.swap_deltas():
                print(
                    f"  learn.swap {delta['previous']} -> "
                    f"{delta['version']}: races/execution "
                    f"{delta['before_rate']:.4f} before "
                    f"({delta['before_executions']} exec), "
                    f"{delta['after_rate']:.4f} after "
                    f"({delta['after_executions']} exec)"
                )
            if result.resilience is not None:
                counters = result.resilience
                print(
                    f"  resilience: {counters['retries']:.0f} retries, "
                    f"{counters['timeouts']:.0f} timeouts, "
                    f"{counters['quarantined']:.0f} quarantined, "
                    f"{counters['worker_deaths']:.0f} worker deaths, "
                    f"{counters['fallbacks']:.0f} fallbacks"
                )
    finally:
        if journal is not None:
            journal.close()
        if backend is not None:
            try:
                info = (
                    backend.status()
                    if hasattr(backend, "status")
                    else backend.stats()
                )
                cache = info.get("cache", {})
                print(
                    f"serving cache: {cache.get('hits', 0):.0f} hits / "
                    f"{cache.get('misses', 0):.0f} misses "
                    f"(hit rate {cache.get('hit_rate', 0.0):.1%}, "
                    f"{cache.get('entries', 0):.0f} entries)"
                )
                # Mirror the printed line as real counters in this
                # process's metrics snapshot. Socket backends only: an
                # in-process server already counted its hits/misses live
                # on this registry, and double-counting would lie.
                if backend.stats().get("backend") == "socket":
                    obs.add("serve.cache.hits", int(cache.get("hits", 0)))
                    obs.add("serve.cache.misses", int(cache.get("misses", 0)))
            except Exception:
                pass
            backend.close()
    print(format_series(curves, metric_name="races", points=8))
    return 0


def _cmd_razzer(args) -> int:
    from repro.integrations.razzer import RazzerConfig, RazzerHarness, RazzerVariant

    snowcat = _trained_snowcat(args.seed)
    harness = RazzerHarness(
        snowcat.graphs,
        predictor=snowcat.model,
        config=RazzerConfig(schedules_per_cti=args.schedules, max_candidates=40),
        seed=args.seed,
    )
    races = [spec for spec in snowcat.kernel.bugs if spec.harmful][: args.races]
    rows = []
    for spec in races:
        for variant in RazzerVariant:
            outcome = harness.run_variant(spec, variant)
            rows.append(
                {
                    "race": f"#{spec.bug_id} ({spec.kind.value})",
                    "variant": outcome.variant.value,
                    "CTIs": outcome.num_ctis,
                    "TP": outcome.num_true_positive,
                    "avg h": outcome.avg_hours,
                    "worst h": outcome.worst_hours,
                }
            )
    print(format_table(rows, title="race reproduction", float_digits=2))
    return 0


def _cmd_snowboard(args) -> int:
    from repro.integrations.snowboard import SnowboardConfig, SnowboardHarness

    snowcat = _trained_snowcat(args.seed)
    harness = SnowboardHarness(
        snowcat.graphs,
        predictor=snowcat.model,
        config=SnowboardConfig(
            schedules_per_cti=args.schedules, trials=args.trials
        ),
        seed=args.seed,
    )
    clusters = harness.build_clusters()
    buggy = harness.buggy_clusters(clusters)
    print(f"{len(clusters)} INS-PAIR clusters, {len(buggy)} buggy")
    rows = []
    for cluster in buggy:
        for sampler, fraction in (
            ("SB-RND", 0.5),
            ("SB-PIC(S1)", 0.0),
            ("SB-PIC(S2)", 0.0),
        ):
            outcome = harness.evaluate_sampler(cluster, sampler, fraction)
            rows.append(
                {
                    "cluster": str(cluster.key),
                    "sampler": outcome.sampler,
                    "P(bug)": outcome.bug_finding_probability,
                    "rate": outcome.sampling_rate,
                }
            )
    print(format_table(rows, title="sampler comparison on buggy clusters"))
    return 0


def _cmd_filter_model(args) -> int:
    model = FilterModel(
        fruitful_probability=args.fruitful,
        true_positive_rate=args.tpr,
        false_positive_rate=args.fpr,
    )
    rows = [
        {"quantity": "cost/fruitful without filter (s)",
         "value": model.unfiltered_cost_per_fruitful},
        {"quantity": "cost/fruitful with filter (s)",
         "value": model.filtered_cost_per_fruitful},
        {"quantity": "speedup", "value": model.speedup},
        {"quantity": "execution rate", "value": model.execution_rate},
        {"quantity": "break-even FPR",
         "value": model.breakeven_false_positive_rate()},
    ]
    print(format_table(rows, title="rejection-filter economics (§A.6)"))
    return 0


def _cmd_quality(args) -> int:
    """The model-quality regression gate (exit 1 on regression).

    The golden pipeline is fully pinned, so ``--seed`` intentionally has
    no effect here: the command always measures the same artefacts the
    baseline was recorded from.
    """
    from repro.errors import QualityGateError
    from repro.oracle.quality import (
        GOLDEN_CONFIG,
        build_golden,
        check_against_baseline,
        load_baseline,
        measure_quality,
        write_baseline,
    )

    if bool(args.model) != bool(args.registry):
        print(
            "error: --model and --registry must be given together",
            file=sys.stderr,
        )
        return 2
    if args.model and args.write_baseline:
        print(
            "error: --write-baseline records the golden pipeline's own "
            "model; it cannot be combined with --model",
            file=sys.stderr,
        )
        return 2
    model, examples = build_golden(GOLDEN_CONFIG)
    if args.model:
        # Gate a registry candidate through the pinned golden pipeline:
        # same golden examples and baseline, the candidate's predictions.
        from repro.errors import CheckpointError, ServeError
        from repro.serve import ModelRegistry

        try:
            registry = ModelRegistry(args.registry)
            candidate = registry.load(args.model, seed=args.seed)
        except (CheckpointError, ServeError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        if candidate.config.vocab_size < model.config.vocab_size:
            print(
                f"error: candidate {args.model} vocabulary "
                f"({candidate.config.vocab_size} tokens) is smaller than "
                f"the golden kernel's ({model.config.vocab_size} tokens); "
                "the golden gate only scores vocabulary-compatible models",
                file=sys.stderr,
            )
            return 2
        model = candidate
        print(f"gating registry candidate {args.model} from {args.registry}")
    measured = measure_quality(model, examples, GOLDEN_CONFIG)
    if args.write_baseline:
        try:
            write_baseline(args.write_baseline, measured, GOLDEN_CONFIG)
        except OSError as error:
            print(
                f"error: cannot write baseline to {args.write_baseline}: "
                f"{error}",
                file=sys.stderr,
            )
            return 2
        print(f"baseline written to {args.write_baseline}")
        for name in sorted(measured):
            print(f"  {name}: {measured[name]:.4f}")
        return 0
    try:
        baseline = load_baseline(args.baseline)
        report = check_against_baseline(measured, baseline, GOLDEN_CONFIG)
    except QualityGateError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(report.summary())
    return 0 if report.passed else 1


def _cmd_serve(args) -> int:
    from repro.errors import CheckpointError, ServeError
    from repro.serve import ServerConfig, SocketBackend, serve_forever

    if args.action == "status" and args.watch:
        import time as _time

        from repro.obs.export import render_serve_watch

        backend = SocketBackend(args.socket)
        previous = None
        refreshes = 0
        try:
            while True:
                try:
                    current = (
                        backend.status(),
                        backend.metrics()["snapshot"],
                    )
                except ServeError as error:
                    print(f"error: {error}", file=sys.stderr)
                    return 2
                print(
                    render_serve_watch(
                        current,
                        previous,
                        elapsed=args.interval if previous else None,
                    ),
                    flush=True,
                )
                previous = current
                refreshes += 1
                if args.count and refreshes >= args.count:
                    return 0
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0
        finally:
            backend.close()

    if args.action == "metrics":
        backend = SocketBackend(args.socket)
        try:
            exposition = backend.metrics()["exposition"]
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            backend.close()
        print(exposition, end="")
        return 0

    if args.action == "status":
        backend = SocketBackend(args.socket)
        try:
            status = backend.status()
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            backend.close()
        cache = status.get("cache", {})
        batcher = status.get("batcher", {})
        print(
            f"serving {status.get('model_name')} "
            f"version {status.get('version')} on {args.socket}\n"
            f"  threshold {status.get('threshold'):.2f}, "
            f"vocab {status.get('vocab_size')}, "
            f"{status.get('requests', 0)} requests\n"
            f"  cache: {cache.get('hits', 0):.0f} hits / "
            f"{cache.get('misses', 0):.0f} misses "
            f"(hit rate {cache.get('hit_rate', 0.0):.1%}), "
            f"{cache.get('entries', 0):.0f} entries, "
            f"{cache.get('bytes', 0):.0f}/{cache.get('max_bytes', 0):.0f} B, "
            f"{cache.get('evictions', 0):.0f} evictions\n"
            f"  batcher: {batcher.get('batches', 0)} batches "
            f"({batcher.get('flush_full', 0)} full / "
            f"{batcher.get('flush_deadline', 0)} deadline flushes), "
            f"{batcher.get('rejected', 0)} rejected, "
            f"{batcher.get('backpressure', 0)} backpressured"
        )
        return 0

    if args.action == "swap":
        backend = SocketBackend(args.socket)
        try:
            outcome = backend.swap(args.model_version)
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            backend.close()
        if outcome.get("swapped"):
            print(
                f"swapped {outcome.get('previous')} -> "
                f"{outcome.get('version')} on {args.socket}"
            )
        else:
            print(
                f"already serving {outcome.get('version')} on {args.socket}"
            )
        return 0

    if args.action == "stop":
        # Idempotent: stopping a server that is already gone (clean
        # shutdown, SIGKILL leaving a stale socket, never started) is a
        # success, not an error — operators script this in cleanup paths.
        from repro.serve import probe_socket

        state = probe_socket(args.socket)
        if state == "absent":
            print(f"no server on {args.socket}; nothing to stop")
            return 0
        if state == "dead":
            try:
                os.unlink(args.socket)
            except OSError:
                pass
            print(
                f"server on {args.socket} already gone; "
                "removed stale socket"
            )
            return 0
        backend = SocketBackend(args.socket)
        try:
            backend.shutdown()
        except ServeError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        finally:
            backend.close()
        print(f"server on {args.socket} stopped")
        return 0

    # -- start ---------------------------------------------------------------
    if args.model and args.registry:
        print(
            "error: --model and --registry are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    model_registry = None
    try:
        if args.registry:
            from repro.serve import ModelRegistry

            registry = ModelRegistry(args.registry)
            model_registry = registry
            version = args.model_version or registry.active_version
            if version is None:
                print(
                    f"error: registry {args.registry} has no active model",
                    file=sys.stderr,
                )
                return 2
            model = registry.load(version, seed=args.seed)
        elif args.model:
            from repro.ml.pic import PICModel

            model = PICModel.load(args.model, seed=args.seed)
            version = args.model_version or "cli"
        else:
            print("no --model/--registry given; training a fresh model...")
            model = _trained_snowcat(args.seed).require_model()
            version = args.model_version or "trained"
    except (CheckpointError, ServeError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = ServerConfig(
        socket_path=args.socket,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        cache_bytes=args.cache_mb * 1024 * 1024,
        slow_request_ms=args.slow_request_ms,
        infer_dtype=args.infer_dtype,
        score_threads=args.score_threads,
    )
    if obs.active() is None:
        # A sink-less registry so the 'metrics' op and 'status --watch'
        # have live instruments (latency histogram, counters) even when
        # the operator didn't ask for a trace file. No sink, no events
        # on disk — and the wire protocol is unaffected either way.
        obs.set_registry(obs.MetricsRegistry(process="server"))
    print(
        f"serving {model.config.name} version {version} on {args.socket} "
        f"(max batch {config.max_batch}, window {config.max_wait_ms} ms, "
        f"cache {args.cache_mb} MiB) — Ctrl-C or "
        f"'repro serve stop --socket {args.socket}' to stop"
    )
    try:
        serve_forever(
            model,
            config,
            version=version,
            model_registry=model_registry,
            model_seed=args.seed,
        )
    except (ServeError, OSError) as error:
        print(f"error: cannot serve on {args.socket}: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_report(args) -> int:
    import json

    from repro.obs.report import (
        merge_traces,
        render_merged_report,
        render_trace_report,
    )
    from repro.obs.sink import read_events_tolerant

    event_sets = []
    truncated_total = 0
    for path in args.trace_file:
        try:
            events, truncated = read_events_tolerant(path)
        except OSError as error:
            print(f"error: cannot read trace file: {error}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as error:
            print(
                f"error: {path} is not a JSON-lines telemetry trace "
                f"({error})",
                file=sys.stderr,
            )
            return 2
        if truncated:
            print(
                f"warning: {path}: skipped {truncated} truncated trailing "
                "record (crash mid-write?)",
                file=sys.stderr,
            )
            truncated_total += truncated
        event_sets.append(events)

    if args.merge or len(event_sets) > 1:
        merged = merge_traces(
            event_sets,
            labels=[os.path.basename(path) for path in args.trace_file],
        )
        print(
            render_merged_report(
                merged,
                title="merged telemetry report — "
                + ", ".join(args.trace_file),
                timeline_rows=args.timeline_rows,
            )
        )
        return 0
    print(
        render_trace_report(
            event_sets[0],
            title=f"telemetry run report — {args.trace_file[0]}",
            timeline_rows=args.timeline_rows,
        )
    )
    return 0


def _cmd_top(args) -> int:
    import time as _time

    from repro.obs.export import render_fleet_top, render_learn_top, render_top

    if not args.heartbeat_file and not args.fleet and not args.learn:
        print(
            "error: give heartbeat file(s), --fleet DIR, and/or --learn DIR",
            file=sys.stderr,
        )
        return 2
    refreshes = 0
    try:
        while True:
            frames = []
            if args.heartbeat_file:
                frames.append(render_top(args.heartbeat_file))
            if args.fleet:
                frames.append(render_fleet_top(args.fleet))
            if args.learn:
                frames.append(render_learn_top(args.learn))
            print("\n".join(frames), flush=True)
            refreshes += 1
            if not args.watch or (args.count and refreshes >= args.count):
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_fleet(args) -> int:
    if args.action == "status":
        import time as _time

        from repro.obs.export import render_fleet_top

        refreshes = 0
        try:
            while True:
                print(render_fleet_top(args.dir), flush=True)
                refreshes += 1
                if not args.watch or (
                    args.count and refreshes >= args.count
                ):
                    return 0
                _time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0

    # -- run -----------------------------------------------------------------
    from repro.errors import (
        CheckpointError,
        FaultSpecError,
        FleetError,
        JournalError,
    )
    from repro.fleet import FleetConfig, render_fleet_report, run_fleet
    from repro.resilience.faults import FaultPlan

    if args.inject_faults is not None:
        try:  # validate the spec before any expensive work
            FaultPlan.parse(args.inject_faults, seed=args.seed)
        except FaultSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.journal and args.resume:
        print(
            "error: --journal and --resume are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    journal_path = args.journal or args.resume
    if args.resume and not os.path.exists(args.resume):
        print(
            f"error: cannot resume: journal {args.resume} does not exist",
            file=sys.stderr,
        )
        return 2
    if args.capture_labels and not journal_path:
        print(
            "error: --capture-labels needs a journal to write labels into "
            "(add --journal FILE or --resume FILE)",
            file=sys.stderr,
        )
        return 2

    if args.threads < 2:
        print("error: --threads must be at least 2", file=sys.stderr)
        return 2
    exploration = ExplorationConfig(
        score_batch_size=args.batch_size,
        num_threads=args.threads,
        irq=args.irq,
        memory_model=args.memory_model,
    )
    if args.pct_only:
        snowcat = Snowcat.standard(args.seed, exploration=exploration)
        backend = None
    else:
        # Reuse the campaign serving seam; fleets never use the
        # in-process --serve path (each worker process needs its own
        # connection), so pin that flag off before delegating.
        setattr(args, "serve", False)
        snowcat, degraded, backend = _campaign_backend(args, exploration)
        if snowcat is None:
            return 2
        if degraded:
            print(
                "error: model checkpoint unusable; rerun with --pct-only "
                "for the baseline",
                file=sys.stderr,
            )
            return 2

    journal = None
    if journal_path:
        from repro.resilience.journal import CampaignJournal, reset_journal

        if args.journal:
            reset_journal(args.journal)
        try:
            journal = CampaignJournal(journal_path)
        except (JournalError, CheckpointError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    config = FleetConfig(
        workers=args.workers,
        lease_seconds=args.lease_seconds,
        heartbeat_dir=args.heartbeat_dir,
        receipts_dir=args.receipts,
        max_job_attempts=args.max_job_attempts,
        fault_spec=args.inject_faults,
        serve_socket=args.serve_socket,
    )
    explorers = [snowcat.pct_explorer()]
    if not args.pct_only:
        explorers.append(
            snowcat.mlpct_explorer(args.strategy, backend=backend)
        )
    if args.capture_labels:
        for explorer in explorers:
            explorer.capture_labels = True
    ctis = snowcat.cti_stream(args.ctis, threads=args.threads)
    reports = []
    try:
        for explorer in explorers:
            try:
                result, fleet_report = run_fleet(
                    explorer, ctis, config=config, journal=journal
                )
            except (FleetError, JournalError, CheckpointError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            reports.append(fleet_report)
            print(
                f"{explorer.label}: {result.total_races} races, "
                f"{result.ledger.executions} executions, "
                f"{result.ledger.total_hours:.2f} simulated hours"
            )
    finally:
        if journal is not None:
            journal.close()
        if backend is not None:
            backend.close()
    print(render_fleet_report(reports))
    if args.receipts:
        print(f"provenance receipts verified in {args.receipts}")
    return 0


def _cmd_learn(args) -> int:
    from repro.errors import CheckpointError, JournalError, ServeError
    from repro.serve import ModelRegistry

    if args.action == "publish":
        from repro.ml.pic import PICModel

        try:
            registry = ModelRegistry(args.registry)
            model = PICModel.load(args.model, seed=args.seed)
            record = registry.publish(
                model, version=args.model_version, activate=True
            )
        except (CheckpointError, ServeError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(
            f"published {record.model_name} as {record.version} "
            f"(active) in {args.registry}"
        )
        return 0

    if args.action == "status":
        from repro.obs.export import render_learn_top

        print(render_learn_top(args.dir))
        return 0

    # -- run -----------------------------------------------------------------
    from repro.learn import FineTuneWorker, LabelStore, LabelTailer, LearnConfig

    registry = ModelRegistry(args.registry)
    store = LabelStore(args.dir)
    tailer = LabelTailer(store, args.journals)
    try:
        ingested = tailer.poll()
    except JournalError as error:
        print(f"error: {error}", file=sys.stderr)
        store.close()
        return 2
    print(
        f"tailed {len(args.journals)} journal(s): {ingested} new labels "
        f"({store.count} total)"
    )
    snowcat = Snowcat.standard(args.seed)
    worker = FineTuneWorker(
        args.dir,
        store,
        registry,
        snowcat,
        config=LearnConfig(
            min_labels=args.min_labels,
            window=args.window,
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            holdout_every=args.holdout_every,
            seed=args.seed,
            min_gain=args.min_gain,
            replay_ctis=args.replay_ctis,
            golden_gate=args.golden_gate,
        ),
    )
    exit_code = 0
    try:
        for _ in range(max(args.cycles, 1)):
            try:
                summary = worker.run_once()
            except (ServeError, CheckpointError, JournalError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            if summary is None:
                print(
                    f"idle: {store.count} labels ingested; fine-tuning "
                    f"triggers after {args.min_labels} fresh labels"
                )
                break
            print(
                f"cycle {summary['cycle']}: {summary['outcome']} "
                f"{summary['candidate']} (base {summary['base']}, holdout "
                f"AP {summary['candidate_ap']:.3f} vs "
                f"{summary['active_ap']:.3f}, {summary['examples']} fresh + "
                f"{summary['replay']} replay examples)"
            )
            if summary["outcome"] == "quarantined":
                exit_code = 1
                break
    finally:
        worker.close()
        store.close()
    return exit_code


_COMMANDS = {
    "info": _cmd_info,
    "fuzz": _cmd_fuzz,
    "train": _cmd_train,
    "campaign": _cmd_campaign,
    "razzer": _cmd_razzer,
    "snowboard": _cmd_snowboard,
    "filter-model": _cmd_filter_model,
    "quality": _cmd_quality,
    "serve": _cmd_serve,
    "fleet": _cmd_fleet,
    "learn": _cmd_learn,
    "report": _cmd_report,
    "top": _cmd_top,
}


def _install_sigterm_flush() -> None:
    """Turn SIGTERM into ``SystemExit`` so ``finally`` blocks run.

    A supervised kill (``kill <pid>``, container stop) otherwise
    terminates the process without unwinding, losing the final metrics
    snapshot and leaving the trace's temp file unrenamed. Main thread
    only; inability to install (not main thread, exotic platform) is
    non-fatal.
    """
    import signal

    def _on_sigterm(signum, frame):
        raise SystemExit(143)

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except (ValueError, OSError):
        pass


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    registry = None
    if args.trace or args.metrics:
        try:
            sink = obs.JsonLinesSink(args.trace) if args.trace else None
        except OSError as error:
            print(f"error: cannot open trace file: {error}", file=sys.stderr)
            return 2
        registry = obs.set_registry(
            obs.MetricsRegistry(sink=sink, process=args.proc)
        )
        _install_sigterm_flush()
    if args.flight:
        from repro.obs.flight import install as install_flight

        install_flight(args.flight)
        if registry is None:
            _install_sigterm_flush()
    try:
        with obs.span(f"cli.{args.command}", seed=args.seed):
            return _COMMANDS[args.command](args)
    finally:
        if registry is not None:
            summary = registry.close()
            obs.clear_registry()
            if args.metrics:
                from repro.obs.report import render_metrics_summary

                print(render_metrics_summary(summary))
            if args.trace:
                print(
                    f"telemetry trace written to {args.trace} "
                    f"(render with: repro report {args.trace})",
                    file=sys.stderr,
                )


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
