"""Time-series rendering for the Figure 5 reproductions."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["downsample_history", "format_series"]


def downsample_history(
    history: Sequence[Tuple[float, int, int]], points: int = 12
) -> List[Tuple[float, int, int]]:
    """Evenly thin a campaign history to at most ``points`` checkpoints,
    always keeping the final one."""
    if len(history) <= points:
        return list(history)
    step = len(history) / points
    indices = sorted({int(i * step) for i in range(points)} | {len(history) - 1})
    return [history[i] for i in indices]


def format_series(
    curves: Dict[str, Sequence[Tuple[float, int, int]]],
    metric_index: int = 1,
    metric_name: str = "races",
    points: int = 12,
) -> str:
    """Render campaign curves as aligned (hours, metric) columns.

    ``metric_index``: 1 for unique races, 2 for schedule-dependent blocks.
    """
    lines: List[str] = []
    for label, history in curves.items():
        lines.append(f"{label}:")
        for hours, races, blocks in downsample_history(history, points):
            value = (hours, races, blocks)[metric_index]
            lines.append(f"  {hours:10.2f} h  {metric_name}={value}")
    return "\n".join(lines)
