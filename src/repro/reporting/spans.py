"""ASCII span timelines for telemetry traces.

Renders a run's hierarchical spans (from :mod:`repro.obs`) as an
indented tree with proportional duration bars — the at-a-glance view of
where a pipeline run spent its wall-clock time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_span_timeline"]


def format_span_timeline(
    spans: Sequence[Dict[str, object]],
    width: int = 40,
    max_rows: int = 60,
    label_width: int = 36,
) -> str:
    """Render span dicts (``name``/``depth``/``start``/``dur``) as a tree.

    Spans are ordered by start time; each row shows the name indented by
    nesting depth, absolute start and duration in seconds, and a bar
    spanning the run's horizontal extent.
    """
    if not spans:
        return "(no spans recorded)"
    ordered = sorted(
        spans, key=lambda s: (float(s.get("start", 0.0)), int(s.get("id", 0)))
    )
    extent = max(
        float(s.get("start", 0.0)) + float(s.get("dur", 0.0)) for s in ordered
    )
    extent = extent or 1.0
    lines: List[str] = [
        "span timeline"
        + f" (total {extent:.3f} s, {len(ordered)} spans)"
    ]
    for record in ordered[:max_rows]:
        name = str(record.get("name", "?"))
        depth = int(record.get("depth", 0))
        start = float(record.get("start", 0.0))
        duration = float(record.get("dur", 0.0))
        label = ("  " * depth + name)[:label_width]
        offset = min(int(width * start / extent), width - 1)
        length = max(1, int(round(width * duration / extent)))
        length = min(length, width - offset)
        bar = " " * offset + "#" * length
        lines.append(
            f"{label:<{label_width}} {start:>9.3f}s {duration:>9.3f}s "
            f"|{bar:<{width}}|"
        )
    if len(ordered) > max_rows:
        lines.append(f"... ({len(ordered) - max_rows} more spans)")
    return "\n".join(lines)
