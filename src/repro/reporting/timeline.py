"""ASCII interleaving timelines.

Renders a concurrent execution as a two-column timeline — which thread ran
which blocks between context switches, where bugs fired, where interrupts
landed. The debugging view a kernel-concurrency developer reaches for when
a schedule does something surprising.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.execution.trace import ConcurrentResult
from repro.kernel.code import Kernel

__all__ = ["format_timeline"]


def format_timeline(
    kernel: Kernel,
    result: ConcurrentResult,
    max_rows: int = 60,
) -> str:
    """Render one execution's access/bug event stream as a timeline.

    Each row is one epoch (the stretch between context switches), showing
    the running thread, the kernel functions it moved through, how many
    shared-memory accesses it made, and any bug assertions that fired.
    """
    if not result.accesses and not result.bug_events:
        return "(no shared-memory activity recorded)"

    events = sorted(
        [("access", a.epoch, a.thread, a.block_id, a.step) for a in result.accesses]
        + [
            ("bug", _epoch_of(result, e.step), e.thread, e.block_id, e.step)
            for e in result.bug_events
        ],
        key=lambda item: item[4],
    )

    rows: List[str] = []
    current_epoch: Optional[int] = None
    functions: List[str] = []
    access_count = 0
    bug_notes: List[str] = []
    thread: Optional[int] = None

    def flush() -> None:
        nonlocal functions, access_count, bug_notes
        if current_epoch is None:
            return
        indent = "" if thread == 0 else " " * 26
        path = " > ".join(_dedupe(functions)) or "(no accesses)"
        line = (
            f"{indent}T{thread} | epoch {current_epoch:>3} | "
            f"{access_count:>3} accesses | {path}"
        )
        rows.append(line[:120])
        for note in bug_notes:
            rows.append(f"{indent}      *** {note}")
        functions = []
        access_count = 0
        bug_notes = []

    for kind, epoch, event_thread, block_id, _step in events:
        if epoch != current_epoch:
            flush()
            current_epoch = epoch
            thread = event_thread
        function = kernel.blocks[block_id].function if block_id in kernel.blocks else "?"
        if kind == "access":
            access_count += 1
            functions.append(function)
        else:
            bug_notes.append(f"BUG assertion fired in {function} (block {block_id})")
        if len(rows) >= max_rows:
            rows.append("… (truncated)")
            return "\n".join(rows)
    flush()

    footer = (
        f"switches={result.num_switches} hints_enforced={result.hints_enforced} "
        f"irqs={result.irqs_fired} deadlocked={result.deadlocked}"
    )
    rows.append(footer)
    return "\n".join(rows)


def _epoch_of(result: ConcurrentResult, step: int) -> int:
    """Closest epoch for a bug event (from surrounding accesses)."""
    best = 0
    for access in result.accesses:
        if access.step <= step:
            best = access.epoch
        else:
            break
    return best


def _dedupe(names: Sequence[str]) -> List[str]:
    """Collapse consecutive repeats, keeping order."""
    out: List[str] = []
    for name in names:
        if not out or out[-1] != name:
            out.append(name)
    return out
