"""Plain-text rendering of the reproduced tables and figure series."""

from repro.reporting.tables import format_table
from repro.reporting.series import format_series, downsample_history
from repro.reporting.timeline import format_timeline
from repro.reporting.spans import format_span_timeline

__all__ = [
    "format_table",
    "format_series",
    "downsample_history",
    "format_timeline",
    "format_span_timeline",
]
