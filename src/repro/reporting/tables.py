"""ASCII table rendering for benchmark output.

The benches print rows shaped like the paper's tables; this module keeps
the formatting in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["format_table"]


def _format_value(value: object, float_digits: int) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_value(row.get(column), float_digits) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for line in rendered:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)
