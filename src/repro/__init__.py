"""Snowcat reproduction: kernel concurrency testing with a learned
coverage predictor (SOSP 2023).

Public API tour:

- :mod:`repro.kernel` — synthetic kernel substrate (build/evolve kernels)
- :mod:`repro.execution` — sequential/concurrent executors, PCT, races
- :mod:`repro.fuzz` — STI generation and the coverage-guided corpus
- :mod:`repro.analysis` — whole-kernel CFG and URB identification
- :mod:`repro.graphs` — CT graph representation and labeled datasets
- :mod:`repro.ml` — the PIC model, training, baselines, metrics
- :mod:`repro.core` — strategies S1-S3, MLPCT, cost model, orchestrator
- :mod:`repro.integrations` — Razzer and Snowboard case studies
- :mod:`repro.reporting` — table/series rendering for the benches

Quickstart::

    from repro.kernel import build_kernel
    from repro.core import Snowcat, SnowcatConfig

    kernel = build_kernel(seed=42)
    snowcat = Snowcat(kernel, SnowcatConfig(seed=7))
    snowcat.train()                       # corpus -> dataset -> PIC model
    explorer = snowcat.mlpct_explorer("S1")
    campaign = snowcat.run_campaign(explorer, num_ctis=20)
    print(campaign.total_races, "unique potential data races")
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
