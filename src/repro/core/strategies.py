"""CT-candidate selection strategies over predicted coverage (§3.3).

A strategy decides whether a candidate CT is worth a dynamic execution
given the model's predicted-positive blocks, and remembers what it has
already selected so future candidates are judged against it:

- **S1 (new set of positive blocks)**: interesting when the predicted
  coverage *bitmap* (the set of predicted-covered blocks) is one we have
  not selected before — a control-flow change even without new blocks.
- **S2 (new positive blocks)**: interesting when at least one predicted-
  covered block has never been predicted-covered by a selected CT.
- **S3 (positive blocks with limited trials)**: each block may be
  "attempted" at most ``limit`` times; interesting while any predicted-
  covered block still has trials left — retries blocks (e.g. different
  calling stacks) but bounds wasted effort on model false positives.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, FrozenSet, List, Set

import numpy as np

from repro.graphs.ctgraph import CTGraph

__all__ = [
    "SelectionStrategy",
    "NewCoverageSet",
    "NewPositiveBlocks",
    "PositiveBlocksLimitedTrials",
    "make_strategy",
]


def predicted_block_set(graph: CTGraph, predicted: np.ndarray) -> FrozenSet[int]:
    """Kernel block ids predicted covered (collapsed across threads)."""
    return frozenset(int(b) for b in graph.node_blocks[np.asarray(predicted, bool)])


class SelectionStrategy(ABC):
    """Stateful candidate filter."""

    name: str = "base"

    @abstractmethod
    def is_interesting(self, graph: CTGraph, predicted: np.ndarray) -> bool:
        """Would executing this CT be fruitful, per this strategy?"""

    @abstractmethod
    def commit(self, graph: CTGraph, predicted: np.ndarray) -> None:
        """Record that the CT was selected for execution."""

    def reset(self) -> None:
        """Forget all recorded history (new campaign)."""

    # Strategies are part of a campaign's resumable state (the journal
    # checkpoints them after every CTI): state must round-trip through
    # JSON exactly, so collections are stored sorted.

    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of the selection history."""
        return {}

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.reset()


class NewCoverageSet(SelectionStrategy):
    """S1: select CTs whose predicted coverage bitmap is novel."""

    name = "S1"

    def __init__(self) -> None:
        self._seen: Set[FrozenSet[int]] = set()

    def is_interesting(self, graph: CTGraph, predicted: np.ndarray) -> bool:
        return predicted_block_set(graph, predicted) not in self._seen

    def commit(self, graph: CTGraph, predicted: np.ndarray) -> None:
        self._seen.add(predicted_block_set(graph, predicted))

    def reset(self) -> None:
        self._seen.clear()

    def state_dict(self) -> Dict[str, object]:
        return {"seen": sorted(sorted(bitmap) for bitmap in self._seen)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._seen = {frozenset(bitmap) for bitmap in state["seen"]}


class NewPositiveBlocks(SelectionStrategy):
    """S2: select CTs predicted to cover at least one never-seen block."""

    name = "S2"

    def __init__(self) -> None:
        self._seen_blocks: Set[int] = set()

    def is_interesting(self, graph: CTGraph, predicted: np.ndarray) -> bool:
        return bool(predicted_block_set(graph, predicted) - self._seen_blocks)

    def commit(self, graph: CTGraph, predicted: np.ndarray) -> None:
        self._seen_blocks |= predicted_block_set(graph, predicted)

    def reset(self) -> None:
        self._seen_blocks.clear()

    def state_dict(self) -> Dict[str, object]:
        return {"seen_blocks": sorted(self._seen_blocks)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._seen_blocks = set(state["seen_blocks"])


class PositiveBlocksLimitedTrials(SelectionStrategy):
    """S3: every block gets at most ``limit`` execution attempts."""

    name = "S3"

    def __init__(self, limit: int = 3) -> None:
        if limit < 1:
            raise ValueError("trial limit must be >= 1")
        self.limit = limit
        self._trials: Dict[int, int] = {}

    def is_interesting(self, graph: CTGraph, predicted: np.ndarray) -> bool:
        return any(
            self._trials.get(block, 0) < self.limit
            for block in predicted_block_set(graph, predicted)
        )

    def commit(self, graph: CTGraph, predicted: np.ndarray) -> None:
        for block in predicted_block_set(graph, predicted):
            self._trials[block] = self._trials.get(block, 0) + 1

    def reset(self) -> None:
        self._trials.clear()

    def state_dict(self) -> Dict[str, object]:
        return {"trials": sorted(self._trials.items())}

    def load_state(self, state: Dict[str, object]) -> None:
        self._trials = {int(block): int(count) for block, count in state["trials"]}


def make_strategy(name: str, s3_limit: int = 3) -> SelectionStrategy:
    """Factory by paper name: 'S1', 'S2', or 'S3'."""
    table = {
        "S1": NewCoverageSet,
        "S2": NewPositiveBlocks,
    }
    if name in table:
        return table[name]()
    if name == "S3":
        return PositiveBlocksLimitedTrials(limit=s3_limit)
    raise ValueError(f"unknown strategy {name!r}; expected S1, S2 or S3")
