"""PIC-guided directed schedule search (§6: "Guide test input and
schedule generation using PIC").

Given a CTI and a *target block* (e.g. an uncovered error-handling block,
or one half of a suspected race), rank candidate schedules by the model's
predicted probability that the target is covered, and execute only the
top-ranked ones. This is the schedule-side analogue of FuzzGuard's
directed input filtering, built on the same PIC predictor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import rng as rngmod
from repro.core.costs import CostLedger
from repro.core.scoring import DEFAULT_BATCH_SIZE, CandidateScorer
from repro.execution.concurrent import ScheduleHint, run_concurrent
from repro.execution.pct import propose_hint_pairs
from repro.fuzz.corpus import CorpusEntry
from repro.graphs.dataset import GraphDatasetBuilder
from repro.ml.baselines import CoveragePredictor

__all__ = ["DirectedSearchResult", "DirectedScheduleSearch"]


@dataclass
class DirectedSearchResult:
    """Outcome of one directed search."""

    target_block: int
    reached: bool
    executions: int
    inferences: int
    #: Execution order position at which the target was first covered.
    first_hit_index: Optional[int] = None
    ledger: CostLedger = field(default_factory=CostLedger)


class DirectedScheduleSearch:
    """Rank candidate schedules by predicted target-block coverage."""

    def __init__(
        self,
        graphs: GraphDatasetBuilder,
        predictor: CoveragePredictor,
        seed: int = 0,
        score_batch_size: int = DEFAULT_BATCH_SIZE,
        cascade_filter: Optional[object] = None,
    ) -> None:
        self.graphs = graphs
        self.kernel = graphs.kernel
        self.predictor = predictor
        self.seed = seed
        self.scorer = CandidateScorer(
            predictor,
            batch_size=score_batch_size,
            cascade_filter=cascade_filter,
        )

    def rank_schedules(
        self,
        entry_a: CorpusEntry,
        entry_b: CorpusEntry,
        target_block: int,
        pool: int = 200,
    ) -> List[Tuple[float, Tuple[ScheduleHint, ScheduleHint]]]:
        """Score ``pool`` candidate schedules by P(target covered).

        A target block covered by either thread counts; the score is the
        max predicted probability over the target's (thread, block) nodes,
        0 when the block is not in the CT graph at all. Only graphs that
        contain the target go through the (batched) scoring engine.
        """
        rng = rngmod.split(
            self.seed, f"directed:{entry_a.sti.sti_id}:{entry_b.sti.sti_id}"
        )
        proposals = propose_hint_pairs(rng, entry_a.trace, entry_b.trace, pool)
        graphs = [
            self.graphs.graph_for(entry_a, entry_b, list(pair))
            for pair in proposals
        ]
        target_nodes = [graph.nodes_of_block(target_block) for graph in graphs]
        probas = iter(
            self.scorer.score_proba(
                [graph for graph, nodes in zip(graphs, target_nodes) if nodes]
            )
        )
        scored = []
        for pair, nodes in zip(proposals, target_nodes):
            if not nodes:
                scored.append((0.0, pair))
                continue
            proba = next(probas)
            scored.append((float(max(proba[n] for n in nodes)), pair))
        scored.sort(key=lambda item: -item[0])
        return scored

    def search(
        self,
        entry_a: CorpusEntry,
        entry_b: CorpusEntry,
        target_block: int,
        execution_budget: int = 10,
        pool: int = 200,
        guided: bool = True,
    ) -> DirectedSearchResult:
        """Execute up to ``execution_budget`` schedules, guided or not.

        ``guided=False`` executes candidates in proposal order (the
        random baseline the guided variant is compared against).
        """
        ledger = CostLedger()
        scored = self.rank_schedules(entry_a, entry_b, target_block, pool)
        inferences = len(scored) if guided else 0
        ledger.charge_inference(inferences)
        if not guided:
            rng = rngmod.split(
                self.seed, f"directed:{entry_a.sti.sti_id}:{entry_b.sti.sti_id}"
            )
            ordered = [
                (0.0, pair)
                for pair in propose_hint_pairs(
                    rng, entry_a.trace, entry_b.trace, pool
                )
            ]
        else:
            ordered = scored
        first_hit: Optional[int] = None
        executions = 0
        for index, (_, pair) in enumerate(ordered[:execution_budget]):
            result = run_concurrent(
                self.kernel,
                (entry_a.sti.as_pairs(), entry_b.sti.as_pairs()),
                hints=list(pair),
            )
            ledger.charge_execution()
            executions += 1
            if target_block in result.all_covered():
                first_hit = index
                break
        return DirectedSearchResult(
            target_block=target_block,
            reached=first_hit is not None,
            executions=executions,
            inferences=inferences,
            first_hit_index=first_hit,
            ledger=ledger,
        )
