"""Concurrent-test-input generation and prioritisation.

Step 2 of the paper's workflow (§3): "it uses information already
collected during the single-thread execution of STIs (e.g., control flow)
to prime a downstream CT generator". The prevailing heuristic — from
Snowboard, the authors' prior system — is that effective CTIs pair STIs
whose single-thread runs touch the *same memory* with at least one write:
only such pairs can exhibit inter-thread data flow when run together.

This module provides both generators:

- :func:`random_ctis` — uniform random pairs (the naive source);
- :class:`OverlapPrioritizedGenerator` — pairs scored by their potential
  write/read communication (count of addresses one STI writes and the
  other reads), sampled highest-score-first with deterministic
  tie-breaking.

The campaign benches show overlap-primed streams find races at a higher
rate per execution, which is why the paper can assume a meaningful CTI
source upstream of the coverage predictor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import rng as rngmod
from repro.fuzz.corpus import Corpus, CorpusEntry

__all__ = [
    "random_ctis",
    "random_cti_groups",
    "communication_score",
    "group_communication_score",
    "OverlapPrioritizedGenerator",
]


def communication_score(entry_a: CorpusEntry, entry_b: CorpusEntry) -> int:
    """Potential inter-thread communication of a CTI.

    Counts addresses written by one STI and read by the other (both
    directions) — the INS-PAIR idea at variable granularity. Zero means
    the pair cannot interact through memory at all.
    """
    a_writes = entry_a.trace.written_addresses()
    a_reads = entry_a.trace.read_addresses()
    b_writes = entry_b.trace.written_addresses()
    b_reads = entry_b.trace.read_addresses()
    return len(a_writes & b_reads) + len(b_writes & a_reads)


def group_communication_score(entries: Sequence[CorpusEntry]) -> int:
    """Communication potential of an N-thread CTI.

    Sums :func:`communication_score` over every unordered thread pair —
    at N=2 this is exactly the pairwise score.
    """
    total = 0
    for i, entry_a in enumerate(entries):
        for entry_b in entries[i + 1:]:
            total += communication_score(entry_a, entry_b)
    return total


def random_ctis(
    corpus: Corpus, count: int, seed: int = 0
) -> List[Tuple[CorpusEntry, CorpusEntry]]:
    """Uniform random CTIs (the naive baseline source)."""
    return corpus.sample_pairs(rngmod.split(seed, "random-ctis"), count)


def random_cti_groups(
    corpus: Corpus, count: int, size: int, seed: int = 0
) -> List[Tuple[CorpusEntry, ...]]:
    """Uniform random N-thread CTIs (``size`` distinct entries each).

    ``size == 2`` delegates to :func:`random_ctis` so the historical
    two-thread stream is reproduced bit-for-bit.
    """
    if size == 2:
        return random_ctis(corpus, count, seed)
    return corpus.sample_groups(rngmod.split(seed, "random-ctis"), count, size)


class OverlapPrioritizedGenerator:
    """Scores every corpus pair by communication potential and serves
    CTIs in a score-weighted order."""

    def __init__(self, corpus: Corpus, seed: int = 0) -> None:
        self.corpus = corpus
        self.seed = seed
        self._scored: Optional[List[Tuple[int, int, int]]] = None

    def _score_all(self) -> List[Tuple[int, int, int]]:
        """(score, index_a, index_b) for all ordered pairs, scored once."""
        if self._scored is not None:
            return self._scored
        entries = self.corpus.entries
        scored: List[Tuple[int, int, int]] = []
        for i, entry_a in enumerate(entries):
            for j, entry_b in enumerate(entries):
                if i == j:
                    continue
                score = communication_score(entry_a, entry_b)
                if score > 0:
                    scored.append((score, i, j))
        # Deterministic order: score descending, then indices.
        scored.sort(key=lambda item: (-item[0], item[1], item[2]))
        self._scored = scored
        return scored

    def top_ctis(self, count: int) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        """The ``count`` highest-communication CTIs."""
        entries = self.corpus.entries
        return [
            (entries[i], entries[j]) for _, i, j in self._score_all()[:count]
        ]

    def sample_ctis(
        self, count: int, temperature: float = 1.0
    ) -> List[Tuple[CorpusEntry, CorpusEntry]]:
        """Score-proportional sampling without replacement.

        ``temperature`` flattens (>1) or sharpens (<1) the preference;
        useful to keep some exploration in long campaigns.
        """
        scored = self._score_all()
        if not scored:
            return []
        rng = rngmod.split(self.seed, "overlap-ctis")
        weights = np.array([s for s, _, _ in scored], dtype=np.float64)
        weights = weights ** (1.0 / max(temperature, 1e-6))
        entries = self.corpus.entries
        chosen: List[Tuple[CorpusEntry, CorpusEntry]] = []
        available = list(range(len(scored)))
        for _ in range(min(count, len(scored))):
            local = weights[available]
            probabilities = local / local.sum()
            pick = int(rng.choice(len(available), p=probabilities))
            index = available.pop(pick)
            _, i, j = scored[index]
            chosen.append((entries[i], entries[j]))
        return chosen

    @property
    def num_candidates(self) -> int:
        return len(self._score_all())
