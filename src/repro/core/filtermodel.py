"""Analytic model of the rejection filter (§2, Figure 3; §A.6).

Models a testing loop where a fraction ``p`` of candidate tests is
fruitful, dynamic execution costs ``c_exec`` and a prediction costs
``c_inf``. A filter with true-positive rate TPR and false-positive rate FPR
executes only predicted-positive candidates.

Closed forms (per fruitful test found):

- no filter: candidates needed ``1/p``, cost ``c_exec / p``;
- with filter: fruitful-execution yield per candidate is ``p·TPR``, so
  ``1/(p·TPR)`` candidates are inspected, each paying ``c_inf``, of which
  fraction ``p·TPR + (1-p)·FPR`` is executed.

The Monte-Carlo simulator cross-checks the closed forms and also yields
the omniscient/realistic/no-filter scenario of the paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import rng as rngmod
from repro.core.costs import CostModel

__all__ = ["FilterModel", "simulate_filter"]


@dataclass(frozen=True)
class FilterModel:
    """Closed-form expected costs of filtered vs unfiltered testing."""

    fruitful_probability: float
    true_positive_rate: float
    false_positive_rate: float
    costs: CostModel = CostModel()

    def __post_init__(self) -> None:
        for name in ("fruitful_probability", "true_positive_rate", "false_positive_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    # -- per-fruitful-test expectations --------------------------------------

    @property
    def unfiltered_cost_per_fruitful(self) -> float:
        """Expected seconds per fruitful test without any filter."""
        if self.fruitful_probability == 0.0:
            return float("inf")
        return self.costs.execution_seconds / self.fruitful_probability

    @property
    def execution_rate(self) -> float:
        """Fraction of candidates the filter sends to dynamic execution."""
        p = self.fruitful_probability
        return p * self.true_positive_rate + (1.0 - p) * self.false_positive_rate

    @property
    def filtered_cost_per_fruitful(self) -> float:
        """Expected seconds per fruitful test with the filter."""
        fruitful_yield = self.fruitful_probability * self.true_positive_rate
        if fruitful_yield == 0.0:
            return float("inf")
        per_candidate = (
            self.costs.inference_seconds
            + self.execution_rate * self.costs.execution_seconds
        )
        return per_candidate / fruitful_yield

    @property
    def speedup(self) -> float:
        """Unfiltered / filtered cost ratio (>1 means the filter pays)."""
        filtered = self.filtered_cost_per_fruitful
        if filtered == float("inf"):
            return 0.0
        return self.unfiltered_cost_per_fruitful / filtered

    def breakeven_false_positive_rate(self) -> float:
        """FPR at which the filter stops paying off (speedup == 1).

        Solves ``speedup(fpr) = 1`` for fixed p, TPR and costs; values
        above 1 mean the filter pays at any FPR.
        """
        p = self.fruitful_probability
        tpr = self.true_positive_rate
        r = self.costs.inference_seconds / self.costs.execution_seconds
        if p in (0.0, 1.0):
            return 1.0
        # tpr/p·c_exec·... algebra: cost parity when
        #   (r + p·tpr + (1-p)·fpr) / (p·tpr) = 1 / p
        numerator = tpr - r - p * tpr
        return max(0.0, min(1.0, numerator / (1.0 - p)))


def simulate_filter(
    model: FilterModel,
    target_fruitful: int = 10,
    trials: int = 200,
    seed: int = 0,
) -> Dict[str, float]:
    """Monte-Carlo of the Figure 3 scenarios.

    Simulates candidate streams until ``target_fruitful`` fruitful tests
    are *executed*, for three testers: no filter, the modelled (realistic)
    filter, and an omniscient filter; returns mean simulated seconds each.
    """
    rng = rngmod.split(seed, "filter-sim")
    p = model.fruitful_probability
    tpr = model.true_positive_rate
    fpr = model.false_positive_rate
    c_exec = model.costs.execution_seconds
    c_inf = model.costs.inference_seconds

    def run_once() -> Dict[str, float]:
        times = {"no_filter": 0.0, "filter": 0.0, "omniscient": 0.0}
        found = {"no_filter": 0, "filter": 0, "omniscient": 0}
        guard = 0
        while min(found.values()) < target_fruitful and guard < 10_000_000:
            guard += 1
            fruitful = rng.random() < p
            predicted = rng.random() < (tpr if fruitful else fpr)
            if found["no_filter"] < target_fruitful:
                times["no_filter"] += c_exec
                if fruitful:
                    found["no_filter"] += 1
            if found["filter"] < target_fruitful:
                times["filter"] += c_inf
                if predicted:
                    times["filter"] += c_exec
                    if fruitful:
                        found["filter"] += 1
            if found["omniscient"] < target_fruitful:
                if fruitful:
                    times["omniscient"] += c_exec
                    found["omniscient"] += 1
        return times

    totals = {"no_filter": 0.0, "filter": 0.0, "omniscient": 0.0}
    for _ in range(trials):
        result = run_once()
        for key in totals:
            totals[key] += result[key]
    return {key: value / trials for key, value in totals.items()}
