"""Rejection filtering: the analytic cost model and the trained filter.

Analytic model (§2, Figure 3; §A.6): models a testing loop where a
fraction ``p`` of candidate tests is fruitful, dynamic execution costs
``c_exec`` and a prediction costs ``c_inf``. A filter with true-positive
rate TPR and false-positive rate FPR executes only predicted-positive
candidates.

Closed forms (per fruitful test found):

- no filter: candidates needed ``1/p``, cost ``c_exec / p``;
- with filter: fruitful-execution yield per candidate is ``p·TPR``, so
  ``1/(p·TPR)`` candidates are inspected, each paying ``c_inf``, of which
  fraction ``p·TPR + (1-p)·FPR`` is executed.

The Monte-Carlo simulator cross-checks the closed forms and also yields
the omniscient/realistic/no-filter scenario of the paper's Figure 3.

:class:`TrainedFilter` is the *real* cheap filter the scoring cascade
uses (see ``docs/PERFORMANCE.md``): a tiny logistic model over per-
candidate features that cost a handful of NumPy ops — no GNN forward
pass — trained on the same labelled CT examples the PIC trains on. Its
threshold is calibrated on held-out data to guarantee a recall floor,
and :meth:`TrainedFilter.operating_point` plugs the measured TPR/FPR
back into the analytic :class:`FilterModel` so the closed forms decide
whether the operating point actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro import rng as rngmod
from repro.core.costs import CostModel
from repro.graphs.ctgraph import (
    HINT_NONE,
    NUM_EDGE_TYPES,
    CTGraph,
)

__all__ = [
    "FilterModel",
    "TrainedFilter",
    "candidate_features",
    "candidate_feature_matrix",
    "pic_flags",
    "simulate_filter",
]


@dataclass(frozen=True)
class FilterModel:
    """Closed-form expected costs of filtered vs unfiltered testing."""

    fruitful_probability: float
    true_positive_rate: float
    false_positive_rate: float
    costs: CostModel = CostModel()

    def __post_init__(self) -> None:
        for name in ("fruitful_probability", "true_positive_rate", "false_positive_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")

    # -- per-fruitful-test expectations --------------------------------------

    @property
    def unfiltered_cost_per_fruitful(self) -> float:
        """Expected seconds per fruitful test without any filter."""
        if self.fruitful_probability == 0.0:
            return float("inf")
        return self.costs.execution_seconds / self.fruitful_probability

    @property
    def execution_rate(self) -> float:
        """Fraction of candidates the filter sends to dynamic execution."""
        p = self.fruitful_probability
        return p * self.true_positive_rate + (1.0 - p) * self.false_positive_rate

    @property
    def filtered_cost_per_fruitful(self) -> float:
        """Expected seconds per fruitful test with the filter."""
        fruitful_yield = self.fruitful_probability * self.true_positive_rate
        if fruitful_yield == 0.0:
            return float("inf")
        per_candidate = (
            self.costs.inference_seconds
            + self.execution_rate * self.costs.execution_seconds
        )
        return per_candidate / fruitful_yield

    @property
    def speedup(self) -> float:
        """Unfiltered / filtered cost ratio (>1 means the filter pays)."""
        filtered = self.filtered_cost_per_fruitful
        if filtered == float("inf"):
            return 0.0
        return self.unfiltered_cost_per_fruitful / filtered

    def breakeven_false_positive_rate(self) -> float:
        """FPR at which the filter stops paying off (speedup == 1).

        Solves ``speedup(fpr) = 1`` for fixed p, TPR and costs; values
        above 1 mean the filter pays at any FPR.
        """
        p = self.fruitful_probability
        tpr = self.true_positive_rate
        r = self.costs.inference_seconds / self.costs.execution_seconds
        if p in (0.0, 1.0):
            return 1.0
        # tpr/p·c_exec·... algebra: cost parity when
        #   (r + p·tpr + (1-p)·fpr) / (p·tpr) = 1 / p
        numerator = tpr - r - p * tpr
        return max(0.0, min(1.0, numerator / (1.0 - p)))


# -- cheap per-candidate features ---------------------------------------------

#: Dimensionality of :func:`candidate_features`.
NUM_FILTER_FEATURES = 13


def candidate_features(graph: CTGraph) -> np.ndarray:
    """Features available without running the GNN: O(nodes + edges) NumPy.

    Size/topology (log node and edge counts, per-type edge fractions)
    plus hint-vector statistics (how many nodes the candidate schedule
    touches, where in the graph they sit, how many are URBs) — the
    signal a schedule's coverage outcome correlates with most cheaply.
    """
    n = graph.num_nodes
    e = graph.num_edges
    out = np.zeros(NUM_FILTER_FEATURES, dtype=np.float64)
    out[0] = np.log1p(n)
    out[1] = np.log1p(e)
    if e:
        out[2 : 2 + NUM_EDGE_TYPES] = (
            np.bincount(graph.edges[:, 2], minlength=NUM_EDGE_TYPES)[:NUM_EDGE_TYPES]
            / e
        )
    out[8] = np.log1p(len(graph.hints))
    hinted = np.flatnonzero(graph.hint_flags != HINT_NONE)
    if n:
        out[9] = hinted.size / n
        out[12] = float(graph.urb_mask().mean())
    if hinted.size:
        out[10] = float(graph.urb_mask()[hinted].mean())
        out[11] = float(hinted.mean()) / max(n - 1, 1)
    else:
        out[11] = 0.5
    return out


def candidate_feature_matrix(graphs: Sequence[CTGraph]) -> np.ndarray:
    """Stacked :func:`candidate_features`, shape ``(len(graphs), d)``."""
    if not graphs:
        return np.zeros((0, NUM_FILTER_FEATURES), dtype=np.float64)
    return np.stack([candidate_features(g) for g in graphs])


def _filter_sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def pic_flags(predictor, graphs: Sequence[CTGraph]) -> np.ndarray:
    """Would the full PIC flag each candidate? Boolean per graph.

    A candidate is *flagged* when the predictor scores at least one of
    its URB nodes at or above 0.5 — the same nodes the MLPCT strategies
    and the directed search act on. Graphs without URB nodes fall back
    to any-node. This is the distillation target for
    :class:`TrainedFilter`: the cascade's job is to keep candidates the
    PIC would rank highly, so the cheap model learns to predict the
    PIC's verdict, not the ground truth the PIC itself only estimates.
    """
    flags = np.zeros(len(graphs), dtype=bool)
    for i, graph in enumerate(graphs):
        proba = predictor.predict_proba(graph)
        urb = graph.urb_mask()
        hot = proba[urb] if urb.any() else proba
        flags[i] = bool((hot >= 0.5).any())
    return flags


def _graphs_of(examples: Sequence) -> List[CTGraph]:
    """Accept labelled CT examples or raw CT graphs interchangeably."""
    return [getattr(ex, "graph", ex) for ex in examples]


def _example_labels(examples: Sequence, predictor=None) -> np.ndarray:
    if predictor is not None:
        return pic_flags(predictor, _graphs_of(examples))
    return np.array([ex.urb_labels().sum() > 0 for ex in examples])


@dataclass
class TrainedFilter:
    """The cheap stage of the scoring cascade.

    A logistic model over :func:`candidate_features`, trained by
    deterministic full-batch gradient descent (zero init, no RNG) on
    labelled CT examples. With a ``predictor`` the label is the PIC's
    own verdict (:func:`pic_flags`) — distillation, which transfers to
    unseen CTIs far better than the ground-truth *fruitful* label (the
    executed CT covered at least one URB node) because the PIC's output
    is a smooth deterministic function of the graph while fruitfulness
    is noisy at the template level. Without a predictor it falls back
    to the ground-truth label.
    ``threshold`` is calibrated on held-out examples so that validation
    recall stays at or above ``recall_floor``; a floor ``>= 1.0``
    degenerates to accept-everything (threshold ``-inf``), which is the
    behaviour-preserving operating point.
    """

    weights: np.ndarray
    bias: float
    feature_mean: np.ndarray
    feature_scale: np.ndarray
    threshold: float = float("-inf")
    recall_floor: float = 0.95
    #: Measured on the calibration split at ``threshold``.
    measured_tpr: float = 1.0
    measured_fpr: float = 1.0
    prevalence: float = 0.5

    # -- inference -------------------------------------------------------------

    def score_features(self, features: np.ndarray) -> np.ndarray:
        """Sigmoid scores for a pre-built feature matrix."""
        z = (features - self.feature_mean) / self.feature_scale @ self.weights
        return _filter_sigmoid(z + self.bias)

    def score_graphs(self, graphs: Sequence[CTGraph]) -> np.ndarray:
        """Sigmoid score per graph, strictly inside ``(0, 1)``."""
        return self.score_features(candidate_feature_matrix(graphs))

    def accept(self, graphs: Sequence[CTGraph]) -> np.ndarray:
        """Boolean accept mask at the calibrated threshold."""
        return self.score_graphs(graphs) >= self.threshold

    # -- the analytic model as cost model --------------------------------------

    def operating_point(self, costs: Optional[CostModel] = None) -> FilterModel:
        """This filter's measured operating point as a :class:`FilterModel`.

        The closed forms (``speedup``, ``breakeven_false_positive_rate``)
        then answer whether cascading at this threshold pays for the
        given cost regime.
        """
        return FilterModel(
            fruitful_probability=self.prevalence,
            true_positive_rate=self.measured_tpr,
            false_positive_rate=self.measured_fpr,
            costs=costs or CostModel(),
        )

    # -- training --------------------------------------------------------------

    @classmethod
    def train(
        cls,
        examples: Sequence,
        validation: Optional[Sequence] = None,
        recall_floor: float = 0.95,
        epochs: int = 200,
        learning_rate: float = 0.5,
        l2: float = 0.05,
        margin: float = 1.0,
        predictor=None,
    ) -> "TrainedFilter":
        """Fit on labelled :class:`repro.graphs.dataset.CTExample` lists.

        ``validation`` (defaults to ``examples``) calibrates the
        threshold and measures the operating point; keep it disjoint
        from the training examples when you can, exactly as the PIC
        does. ``l2`` regularises the weights — candidate features are
        partly template-level, so an unregularised fit memorises
        training CTIs and its score scale does not transfer to unseen
        ones. ``margin`` is the calibration safety margin (see
        :meth:`calibrate`). With ``predictor`` (the deployment's PIC),
        labels are the PIC's own verdicts (:func:`pic_flags`) instead
        of ground truth — the cascade setting.
        """
        if not examples:
            raise ValueError("TrainedFilter.train needs at least one example")
        x = candidate_feature_matrix(_graphs_of(examples))
        y = _example_labels(examples, predictor).astype(np.float64)
        mean = x.mean(axis=0)
        scale = x.std(axis=0)
        scale[scale < 1e-9] = 1.0
        xn = (x - mean) / scale
        n_pos = float(y.sum())
        n_neg = float(y.size - n_pos)
        # Balanced class weights keep the rare class from being ignored;
        # degenerate single-class datasets fall back to uniform weights.
        if n_pos and n_neg:
            sample_w = np.where(y == 1.0, y.size / (2.0 * n_pos), y.size / (2.0 * n_neg))
        else:
            sample_w = np.ones_like(y)
        w = np.zeros(x.shape[1], dtype=np.float64)
        b = 0.0
        inv_n = 1.0 / y.size
        for _ in range(int(epochs)):
            p = _filter_sigmoid(xn @ w + b)
            g = (p - y) * sample_w
            w -= learning_rate * (inv_n * (xn.T @ g) + l2 * w)
            b -= learning_rate * inv_n * float(g.sum())
        fitted = cls(
            weights=w,
            bias=b,
            feature_mean=mean,
            feature_scale=scale,
            recall_floor=float(recall_floor),
        )
        fitted.calibrate(
            validation if validation is not None else examples,
            recall_floor,
            margin=margin,
            predictor=predictor,
        )
        return fitted

    def calibrate(
        self,
        examples: Sequence,
        recall_floor: float,
        margin: float = 1.0,
        predictor=None,
    ) -> float:
        """Pick the largest threshold keeping recall ``>= recall_floor``.

        The threshold is the score of the k-th best calibration positive
        (``k = ceil(recall_floor × positives)``) relaxed by ``margin``
        logit units. The margin buys robustness: candidate features are
        partly template-level, so score distributions shift between the
        calibration CTIs and unseen ones — with a near-perfect ranking
        (the measured regime; see the operating-point numbers in
        docs/PERFORMANCE.md) the relaxation costs little rejection but
        protects the recall floor off-distribution.

        A floor at or above 1.0 forces threshold ``-inf`` (accept
        everything): that is the only threshold that *guarantees* full
        recall on unseen candidates, and it makes the cascade execute
        exactly the CT set the uncascaded pipeline would.

        ``examples`` may be labelled CT examples or — with ``predictor``
        supplied, since PIC verdicts need no ground truth — raw CT
        graphs, e.g. a campaign-style candidate pool. Calibrating on
        such a pool removes the CTI distribution shift entirely: the
        threshold is picked on exactly the kind of candidates the
        cascade will score.
        """
        self.recall_floor = float(recall_floor)
        scores = self.score_graphs(_graphs_of(examples))
        labels = _example_labels(examples, predictor)
        if recall_floor >= 1.0 or not labels.any():
            self.threshold = float("-inf")
        else:
            pos = np.sort(scores[labels])[::-1]
            keep = int(np.ceil(recall_floor * pos.size))
            keep = min(max(keep, 1), pos.size)
            pivot = min(max(float(pos[keep - 1]), 1e-12), 1.0 - 1e-12)
            logit = np.log(pivot / (1.0 - pivot)) - margin
            self.threshold = float(1.0 / (1.0 + np.exp(-logit)))
        accepted = scores >= self.threshold
        n_pos = int(labels.sum())
        n_neg = int(labels.size - n_pos)
        self.measured_tpr = float(accepted[labels].mean()) if n_pos else 1.0
        self.measured_fpr = float(accepted[~labels].mean()) if n_neg else 0.0
        self.prevalence = n_pos / labels.size if labels.size else 0.5
        return self.threshold


# -- Monte-Carlo simulator -----------------------------------------------------

#: Per-trial candidate cap: a tester that cannot reach its target (e.g.
#: ``p == 0``) stops consuming simulated time here.
_SIM_GUARD = 10_000_000

#: Candidates drawn per RNG block in the vectorised simulator.
_SIM_BLOCK = 4096


def _simulate_filter_reference(
    model: FilterModel,
    target_fruitful: int = 10,
    trials: int = 200,
    seed: int = 0,
) -> Dict[str, float]:
    """Scalar per-candidate reference implementation (the executable
    spec); :func:`simulate_filter` must match it exactly at any seed."""
    rng = rngmod.split(seed, "filter-sim")
    p = model.fruitful_probability
    tpr = model.true_positive_rate
    fpr = model.false_positive_rate
    c_exec = model.costs.execution_seconds
    c_inf = model.costs.inference_seconds

    def run_once() -> Dict[str, float]:
        times = {"no_filter": 0.0, "filter": 0.0, "omniscient": 0.0}
        found = {"no_filter": 0, "filter": 0, "omniscient": 0}
        guard = 0
        while min(found.values()) < target_fruitful and guard < _SIM_GUARD:
            guard += 1
            fruitful = rng.random() < p
            predicted = rng.random() < (tpr if fruitful else fpr)
            if found["no_filter"] < target_fruitful:
                times["no_filter"] += c_exec
                if fruitful:
                    found["no_filter"] += 1
            if found["filter"] < target_fruitful:
                times["filter"] += c_inf
                if predicted:
                    times["filter"] += c_exec
                    if fruitful:
                        found["filter"] += 1
            if found["omniscient"] < target_fruitful:
                if fruitful:
                    times["omniscient"] += c_exec
                    found["omniscient"] += 1
        return times

    totals = {"no_filter": 0.0, "filter": 0.0, "omniscient": 0.0}
    for _ in range(trials):
        result = run_once()
        for key in totals:
            totals[key] += result[key]
    return {key: value / trials for key, value in totals.items()}


def simulate_filter(
    model: FilterModel,
    target_fruitful: int = 10,
    trials: int = 200,
    seed: int = 0,
) -> Dict[str, float]:
    """Monte-Carlo of the Figure 3 scenarios.

    Simulates candidate streams until ``target_fruitful`` fruitful tests
    are *executed*, for three testers: no filter, the modelled (realistic)
    filter, and an omniscient filter; returns mean simulated seconds each.

    Vectorised: candidates are drawn in blocks of ``2 × _SIM_BLOCK``
    uniforms (NumPy generators produce the identical double stream for
    block and scalar draws) and each tester's stop point is found with a
    cumulative-sum search instead of a per-candidate Python loop. When a
    trial ends mid-block the generator state is rewound to the block
    start and exactly the consumed draws are replayed, and each tester's
    time is folded with ``np.add.accumulate`` (a strict sequential
    left-fold) in the reference's per-candidate addition order — so both
    the RNG stream position and every returned mean are bit-identical to
    :func:`_simulate_filter_reference`.
    """
    rng = rngmod.split(seed, "filter-sim")
    p = model.fruitful_probability
    tpr = model.true_positive_rate
    fpr = model.false_positive_rate
    c_exec = model.costs.execution_seconds
    c_inf = model.costs.inference_seconds

    def fold(total: float, terms: np.ndarray) -> float:
        """Sequential ``total += term`` chain, bit-exact vs a Python loop."""
        if terms.size == 0:
            return total
        return float(np.add.accumulate(np.concatenate(([total], terms)))[-1])

    totals = {"no_filter": 0.0, "filter": 0.0, "omniscient": 0.0}
    if target_fruitful <= 0:
        return totals
    for _ in range(trials):
        # Remaining fruitful finds per tester. The filter's finds are a
        # subset of the others' (fruitful AND predicted), so the trial —
        # which runs until *every* tester is done — always stops at the
        # filter's stop point (or the guard).
        need_nf = target_fruitful  # no_filter and omniscient stop together
        need_f = target_fruitful
        t_nf = t_om = t_f = 0.0
        consumed = 0
        while need_f > 0 and consumed < _SIM_GUARD:
            block = min(_SIM_BLOCK, _SIM_GUARD - consumed)
            state = rng.bit_generator.state
            draws = rng.random(2 * block)
            fruitful = draws[0::2] < p
            predicted = draws[1::2] < np.where(fruitful, tpr, fpr)
            hits = fruitful & predicted
            cum_fruitful = np.cumsum(fruitful)
            cum_hits = np.cumsum(hits)
            if need_nf > 0:
                # First index where the cumulative fruitful count reaches
                # the remaining target (counts step by 1, so searchsorted
                # finds the exact candidate).
                stop_nf = int(np.searchsorted(cum_fruitful, need_nf))
                active = min(stop_nf + 1, block)
                t_nf = fold(t_nf, np.full(active, c_exec))
                t_om = fold(
                    t_om,
                    np.full(int(np.count_nonzero(fruitful[:active])), c_exec),
                )
                if stop_nf < block:
                    need_nf = 0
                else:
                    need_nf -= int(cum_fruitful[-1])
            stop_f = int(np.searchsorted(cum_hits, need_f))
            active_f = min(stop_f + 1, block)
            # Per candidate the filter pays c_inf then, if predicted,
            # c_exec; flattening [c_inf, c_exec-or-0] row-major preserves
            # that interleaved addition order (adding 0.0 to a finite
            # non-negative accumulator is bit-exact a no-op).
            terms = np.empty((active_f, 2))
            terms[:, 0] = c_inf
            terms[:, 1] = np.where(predicted[:active_f], c_exec, 0.0)
            t_f = fold(t_f, terms.ravel())
            if stop_f < block:
                need_f = 0
                consumed += active_f
                # Rewind and replay only the consumed draws so the next
                # trial sees the exact stream the scalar loop would.
                rng.bit_generator.state = state
                rng.random(2 * active_f)
            else:
                need_f -= int(cum_hits[-1])
                consumed += block
        totals["no_filter"] += t_nf
        totals["omniscient"] += t_om
        totals["filter"] += t_f
    return {key: value / trials for key, value in totals.items()}
