"""The batched candidate-scoring engine shared by every predictor consumer.

Snowcat's economics rest on inference being ~190× cheaper than a dynamic
execution (§5.2.2), so campaigns score huge candidate pools. One-graph-at-
a-time prediction leaves most of that margin on the table: per-call
Python/NumPy overhead dominates the small graphs. This module is the
single scoring path MLPCT, directed search, Razzer-PIC and SB-PIC all go
through; it chunks candidates into disjoint-union batches when the
predictor supports :meth:`predict_proba_batch` (the PIC model does) and
falls back to the exact per-graph calls otherwise.

Determinism contract: the fallback path calls ``predict``/``predict_proba``
once per candidate *in consumption order*, so predictors whose boolean
prediction consumes randomness (the coin baselines) see the same RNG
stream as a hand-written loop. The batch path is only taken for
predictors that advertise it, which must be RNG-free at inference — it
may score up to ``batch_size - 1`` candidates ahead of the consumer, and
results match the per-graph path to floating-point accuracy.

The opt-in *cascade* (``cascade_filter``) puts a
:class:`repro.core.filtermodel.TrainedFilter` in front of the full
predictor: every candidate is scored by the cheap filter first and only
predicted-positives pay for a GNN forward pass. Rejected candidates
still get a total order — their per-node "probability" is the filter's
sigmoid score scaled *below* the decision threshold, so ranking
consumers sort them beneath every PIC-scored candidate and boolean
consumers see all-``False`` predictions. The cascade requires a
batch-capable RNG-free predictor (it reorders and skips predictor
calls); with ``cascade_filter=None`` every code path is byte-identical
to the uncascaded engine.

Telemetry: the engine counts ``inference.batched`` / ``inference.single``
and records an ``inference.batch_size`` histogram, so a trace shows how
well a campaign amortises its scoring. The cascade adds
``cascade.filter_pass`` / ``cascade.filter_reject`` counters and
``cascade.filter_seconds`` / ``cascade.pic_seconds`` stage timers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import obs
from repro.core.filtermodel import TrainedFilter
from repro.execution.concurrent import ScheduleHint
from repro.fuzz.corpus import CorpusEntry
from repro.graphs.ctgraph import CTGraph
from repro.graphs.dataset import GraphDatasetBuilder
from repro.ml.baselines import CoveragePredictor

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "ScoredCandidate",
    "CandidateScorer",
    "score_candidates",
    "iter_score_candidates",
]

#: Default candidate-pool chunk; large enough to amortise per-call
#: overhead, small enough that the batch stays cache-resident and
#: look-ahead scoring stays cheap when a consumer stops early (budget
#: exhausted). Re-measured with benchmarks/test_scoring_throughput.py's
#: batch-size sweep (committed in results/scoring_throughput.txt): 8 is
#: fastest under both float64 and float32; 16 is a few percent slower
#: and much larger batches collapse once the scratch buffers outgrow
#: cache.
DEFAULT_BATCH_SIZE = 8


@dataclass
class ScoredCandidate:
    """One scored candidate schedule of a CTI."""

    #: Position in the candidate stream.
    index: int
    #: The candidate's scheduling hints.
    hints: Tuple[ScheduleHint, ...]
    graph: CTGraph
    #: Per-node coverage probabilities (``None`` unless requested).
    proba: Optional[np.ndarray] = None
    #: Per-node boolean predictions (``None`` unless requested).
    predicted: Optional[np.ndarray] = None


class CandidateScorer:
    """Batched (or order-preserving per-graph) scoring of CT graphs.

    ``backend`` is the serving seam: when given (a
    :class:`repro.serve.backend.PredictionBackend` — in-process server or
    socket client), every prediction routes through it instead of the
    raw predictor; leaving it ``None`` keeps the historical direct-call
    path, byte for byte. ``predictor`` stays required even with a
    backend so consumers that inspect the model (threshold tuning,
    reporting) keep working, but it may be ``None`` for socket backends
    where no local model exists.

    ``cascade_filter`` (a :class:`repro.core.filtermodel.TrainedFilter`)
    enables the two-stage cascade: candidates the filter rejects never
    reach the predictor. Requires a batch-capable target — the cascade
    reorders and skips predictor calls, which is only sound for RNG-free
    predictors (the same contract the batch path already demands).
    """

    def __init__(
        self,
        predictor: Optional[CoveragePredictor],
        batch_size: int = DEFAULT_BATCH_SIZE,
        backend: Optional[object] = None,
        cascade_filter: Optional[TrainedFilter] = None,
    ) -> None:
        if predictor is None and backend is None:
            raise ValueError("CandidateScorer needs a predictor or a backend")
        self.predictor = predictor
        self.backend = backend
        self.batch_size = max(1, int(batch_size))
        self.cascade_filter = cascade_filter
        if cascade_filter is not None and not hasattr(
            self.target, "predict_proba_batch"
        ):
            raise ValueError(
                "cascade filtering needs a batch-capable (RNG-free) predictor"
            )

    @property
    def target(self) -> object:
        """Where predictions actually run: the backend if set, else the
        predictor directly."""
        return self.backend if self.backend is not None else self.predictor

    @property
    def batched(self) -> bool:
        """Whether the block-diagonal batch path is in use."""
        if self.cascade_filter is not None:
            return True
        return self.batch_size > 1 and hasattr(
            self.target, "predict_proba_batch"
        )

    def _threshold(self) -> float:
        return float(getattr(self.target, "threshold", 0.5))

    # -- the cascade -----------------------------------------------------------

    def _pic_proba(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        """Full-predictor probabilities, chunked to ``batch_size``."""
        probas: List[np.ndarray] = []
        for start in range(0, len(graphs), self.batch_size):
            chunk = graphs[start : start + self.batch_size]
            probas.extend(self.target.predict_proba_batch(chunk))
            obs.add("inference.batched", len(chunk))
            obs.observe("inference.batch_size", len(chunk))
        return probas

    def _cascade_scores(
        self, graphs: Sequence[CTGraph], want: str
    ) -> List[np.ndarray]:
        """Two-stage scoring: cheap filter, then the predictor on survivors.

        Rejected candidates fall back to ``filter_score × threshold`` per
        node (``want="proba"``) — strictly below the decision threshold
        because the sigmoid score is strictly below 1 — or all-``False``
        (``want="predicted"``), so consumers see a total order in which
        every rejected candidate ranks beneath every scored one.
        """
        assert self.cascade_filter is not None
        threshold = self._threshold()
        started = obs.tick()
        filter_scores = self.cascade_filter.score_graphs(graphs)
        accepted = filter_scores >= self.cascade_filter.threshold
        obs.tock("cascade.filter_seconds", started)
        kept = [i for i in range(len(graphs)) if accepted[i]]
        obs.add("cascade.filter_pass", len(kept))
        obs.add("cascade.filter_reject", len(graphs) - len(kept))
        results: List[Optional[np.ndarray]] = [None] * len(graphs)
        if kept:
            started = obs.tick()
            probas = self._pic_proba([graphs[i] for i in kept])
            obs.tock("cascade.pic_seconds", started)
            for index, proba in zip(kept, probas):
                results[index] = (
                    proba if want == "proba" else proba >= threshold
                )
        for index, graph in enumerate(graphs):
            if results[index] is None:
                if want == "proba":
                    results[index] = np.full(
                        graph.num_nodes, filter_scores[index] * threshold
                    )
                else:
                    results[index] = np.zeros(graph.num_nodes, dtype=bool)
        return results  # type: ignore[return-value]

    # -- eager scoring ---------------------------------------------------------

    def score_proba(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        """Coverage probabilities per graph, batched when possible."""
        if self.cascade_filter is not None:
            return self._cascade_scores(graphs, want="proba")
        if not self.batched:
            obs.add("inference.single", len(graphs))
            return [self.target.predict_proba(graph) for graph in graphs]
        return self._pic_proba(graphs)

    def predict_graphs(self, graphs: Sequence[CTGraph]) -> List[np.ndarray]:
        """Boolean predictions per graph, batched when possible."""
        if self.cascade_filter is not None:
            return self._cascade_scores(graphs, want="predicted")
        if not self.batched:
            obs.add("inference.single", len(graphs))
            return [self.target.predict(graph) for graph in graphs]
        threshold = self._threshold()
        return [proba >= threshold for proba in self.score_proba(graphs)]

    # -- lazy scoring ----------------------------------------------------------

    def iter_predicted(
        self, graphs: Iterable[CTGraph]
    ) -> Iterator[Tuple[CTGraph, np.ndarray]]:
        """Lazily yield ``(graph, predicted)`` pairs.

        Batched mode scores up to ``batch_size`` graphs ahead of the
        consumer; fallback mode is strictly lazy (one ``predict`` per
        yielded graph), preserving early-exit semantics exactly.
        """
        if not self.batched:
            for graph in graphs:
                obs.add("inference.single")
                yield graph, self.target.predict(graph)
            return
        if self.cascade_filter is not None:
            iterator = iter(graphs)
            while True:
                chunk = list(itertools.islice(iterator, self.batch_size))
                if not chunk:
                    return
                for pair in zip(chunk, self._cascade_scores(chunk, "predicted")):
                    yield pair
            return
        threshold = self._threshold()
        iterator = iter(graphs)
        while True:
            chunk = list(itertools.islice(iterator, self.batch_size))
            if not chunk:
                return
            probas = self.target.predict_proba_batch(chunk)
            obs.add("inference.batched", len(chunk))
            obs.observe("inference.batch_size", len(chunk))
            for graph, proba in zip(chunk, probas):
                yield graph, proba >= threshold


def _as_scorer(
    predictor: Union[CoveragePredictor, CandidateScorer],
    batch_size: Optional[int],
) -> CandidateScorer:
    if isinstance(predictor, CandidateScorer):
        return predictor
    return CandidateScorer(
        predictor,
        batch_size=DEFAULT_BATCH_SIZE if batch_size is None else batch_size,
    )


def iter_score_candidates(
    predictor: Union[CoveragePredictor, CandidateScorer],
    graphs: GraphDatasetBuilder,
    *args,
    mode: str = "predicted",
    batch_size: Optional[int] = None,
) -> Iterator[ScoredCandidate]:
    """Lazily score a CTI's candidate schedules through the engine.

    Positional arguments after ``graphs`` are one corpus entry per thread
    followed by the schedules iterable (the historical two-entry call is
    the N=2 case). Graphs are stamped from the CTI's cached template, so
    each candidate costs O(#hints) construction; scoring is chunked per
    the scorer's batch size. ``mode`` is ``"predicted"`` (boolean
    per-node predictions, what the selection strategies consume) or
    ``"proba"`` (probabilities, what ranking consumers need).
    """
    *entries, schedules = args
    if not entries:
        raise ValueError("iter_score_candidates needs at least one corpus entry")
    if mode not in ("predicted", "proba"):
        raise ValueError(f"unknown scoring mode {mode!r}")
    scorer = _as_scorer(predictor, batch_size)

    def candidates() -> Iterator[ScoredCandidate]:
        for index, hints in enumerate(schedules):
            hints = tuple(hints)
            yield ScoredCandidate(
                index=index,
                hints=hints,
                graph=graphs.graph_for(*entries, list(hints)),
            )

    if mode == "predicted":
        if scorer.batched:
            iterator = iter(candidates())
            while True:
                chunk = list(itertools.islice(iterator, scorer.batch_size))
                if not chunk:
                    return
                for candidate, predicted in zip(
                    chunk, scorer.predict_graphs([c.graph for c in chunk])
                ):
                    candidate.predicted = predicted
                    yield candidate
        else:
            for candidate in candidates():
                obs.add("inference.single")
                candidate.predicted = scorer.target.predict(candidate.graph)
                yield candidate
    else:
        if scorer.batched:
            iterator = iter(candidates())
            while True:
                chunk = list(itertools.islice(iterator, scorer.batch_size))
                if not chunk:
                    return
                for candidate, proba in zip(
                    chunk, scorer.score_proba([c.graph for c in chunk])
                ):
                    candidate.proba = proba
                    yield candidate
        else:
            for candidate in candidates():
                obs.add("inference.single")
                candidate.proba = scorer.target.predict_proba(candidate.graph)
                yield candidate


def score_candidates(
    predictor: Union[CoveragePredictor, CandidateScorer],
    graphs: GraphDatasetBuilder,
    *args,
    mode: str = "predicted",
    batch_size: Optional[int] = None,
) -> List[ScoredCandidate]:
    """Eagerly score a CTI's candidate schedules (see
    :func:`iter_score_candidates`)."""
    return list(
        iter_score_candidates(
            predictor, graphs, *args, mode=mode, batch_size=batch_size
        )
    )
