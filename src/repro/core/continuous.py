"""Continuous testing across kernel versions (§2's Generalization
challenge, §5.4's amortisation analysis).

"We are considering the steady state of keeping Linux kernels properly
tested as the code evolves from version to version … An ML-based test
evaluator should be able to generalize from version to version, with
limited additional data-gathering and training cost."

This module simulates that steady state: a sequence of kernel versions
arrives; at each version a *policy* decides what to do with the model
(nothing / fine-tune on a small dataset / retrain from scratch) and then a
testing campaign runs. Cost accounting is cumulative across versions —
startup charges for (re)training stack up against the testing-time savings
MLPCT delivers, which is precisely the trade §5.4 quantifies.

Policies:

- ``"pct"``        — no model at all; PCT everywhere (the baseline).
- ``"freeze"``     — train once on the first version, reuse forever.
- ``"fine-tune"``  — train once, then fine-tune on each new version with a
  small incremental dataset (the paper's recommended recipe).
- ``"scratch"``    — retrain a full model on every version.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.mlpct import CampaignResult, run_campaign
from repro.core.snowcat import Snowcat, SnowcatConfig
from repro.kernel.code import Kernel

__all__ = ["ContinuousConfig", "VersionOutcome", "ContinuousRun", "run_continuous"]

POLICIES = ("pct", "freeze", "fine-tune", "scratch")


@dataclass(frozen=True)
class ContinuousConfig:
    """Knobs of one continuous-testing simulation."""

    policy: str = "fine-tune"
    #: CTIs explored per version's campaign.
    campaign_ctis: int = 8
    #: Size of the incremental dataset used by the fine-tune policy.
    fine_tune_ctis: int = 6
    fine_tune_epochs: int = 2
    strategy: str = "S1"
    base: SnowcatConfig = field(default_factory=SnowcatConfig)

    def validated(self) -> "ContinuousConfig":
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; expected one of {POLICIES}"
            )
        return self


@dataclass
class VersionOutcome:
    """What happened at one kernel version."""

    version: str
    model_name: str
    startup_hours: float
    campaign: CampaignResult

    @property
    def testing_hours(self) -> float:
        return self.campaign.ledger.testing_hours

    @property
    def races(self) -> int:
        return self.campaign.total_races


@dataclass
class ContinuousRun:
    """The whole multi-version trajectory of one policy."""

    policy: str
    outcomes: List[VersionOutcome] = field(default_factory=list)

    @property
    def cumulative_hours(self) -> float:
        return sum(o.startup_hours + o.testing_hours for o in self.outcomes)

    @property
    def cumulative_races(self) -> int:
        return sum(o.races for o in self.outcomes)

    @property
    def cumulative_startup_hours(self) -> float:
        return sum(o.startup_hours for o in self.outcomes)

    def races_per_hour(self) -> float:
        hours = self.cumulative_hours
        return self.cumulative_races / hours if hours > 0 else 0.0

    def marginal_races_per_hour(self, skip_versions: int = 1) -> float:
        """Steady-state efficiency: races/hour from version ``skip_versions``
        onward. The initial training is the sunk cost §5.4 amortises; what
        matters as versions keep arriving is the marginal rate."""
        tail = self.outcomes[skip_versions:]
        hours = sum(o.startup_hours + o.testing_hours for o in tail)
        races = sum(o.races for o in tail)
        return races / hours if hours > 0 else 0.0


def run_continuous(
    versions: Sequence[Kernel],
    config: Optional[ContinuousConfig] = None,
    journal: Optional["ContinuousJournal"] = None,
    registry=None,
) -> ContinuousRun:
    """Simulate continuous testing of ``versions`` under one policy.

    With ``journal`` (a :class:`repro.resilience.journal
    .ContinuousJournal`) each completed version is journaled and the
    trained deployment checkpointed — including the model itself — so an
    interrupted run resumes at the next version and finishes identical
    to an uninterrupted one (see ``docs/ROBUSTNESS.md``).

    With ``registry`` (a :class:`repro.serve.registry.ModelRegistry`)
    every version that produces a trained or fine-tuned model publishes
    it as ``continuous-<kernel version>`` — the lineage the serving and
    learn layers consume. Publishing is idempotent across journal
    resumes (an already-published version is left as-is).
    """
    config = (config or ContinuousConfig()).validated()
    versions = list(versions)
    run = ContinuousRun(policy=config.policy)
    current: Optional[Snowcat] = None
    start_position = 0
    if journal is not None:
        outcomes, start_position, current = journal.prepare(versions, config)
        run.outcomes.extend(outcomes)

    for position, kernel in enumerate(versions):
        if position < start_position:
            continue
        startup_hours = 0.0
        if config.policy == "pct":
            deployment = Snowcat(kernel, config.base)
            deployment.prepare_corpus()
            explorer = deployment.pct_explorer(label=f"PCT@{kernel.version}")
            model_name = "-"
        elif config.policy == "scratch" or (
            current is None and config.policy in ("freeze", "fine-tune")
        ):
            seed = replace(
                config.base,
                seed=config.base.seed + position,
            )
            deployment = Snowcat(kernel, seed)
            deployment.train(f"PIC@{kernel.version}")
            startup_hours = deployment.startup_hours
            current = deployment
            explorer = deployment.mlpct_explorer(config.strategy)
            model_name = deployment.model.config.name
        elif config.policy == "freeze":
            assert current is not None
            deployment = Snowcat(kernel, config.base)
            # Reuse the frozen model (and its vocabulary, so token ids
            # stay aligned); only a fresh corpus for the new version.
            from repro.graphs.dataset import GraphDatasetBuilder

            deployment.graphs = GraphDatasetBuilder(
                kernel,
                seed=config.base.seed,
                vocabulary=current.graphs.vocabulary,
            )
            deployment.prepare_corpus()
            deployment.model = current.model
            explorer = deployment.mlpct_explorer(
                config.strategy, label=f"MLPCT-frozen@{kernel.version}"
            )
            model_name = current.model.config.name
        else:  # fine-tune onto the new version
            assert current is not None
            deployment = current.adapt_to(
                kernel,
                dataset_ctis=config.fine_tune_ctis,
                epochs=config.fine_tune_epochs,
            )
            startup_hours = deployment.startup_hours
            current = deployment
            explorer = deployment.mlpct_explorer(config.strategy)
            model_name = deployment.model.config.name

        campaign = run_campaign(
            explorer, deployment.cti_stream(config.campaign_ctis, "continuous")
        )
        outcome = VersionOutcome(
            version=kernel.version,
            model_name=model_name,
            startup_hours=startup_hours,
            campaign=campaign,
        )
        run.outcomes.append(outcome)
        if registry is not None and startup_hours > 0 and current is not None:
            from repro.errors import ServeError

            try:
                registry.publish(
                    current.require_model(),
                    version=f"continuous-{kernel.version}",
                )
            except ServeError:
                # Already published by a run this one resumed; records
                # are immutable, so the existing checkpoint stands.
                pass
        if journal is not None:
            journal.record_version(position, outcome, current)
    return run
