"""The Snowcat orchestrator: the end-to-end workflow of §3.

Ties every stage together behind one object:

1. fuzz STIs and record their sequential traces (Syzkaller stand-in),
2. build the whole-kernel CFG for URB identification (Angr stand-in),
3. collect a labeled CT-graph dataset by dynamic execution (SKI stand-in),
4. pre-train the assembly encoder and train the PIC model,
5. hand out PCT / MLPCT explorers for testing campaigns,
6. adapt to a new kernel version by fine-tuning on a smaller dataset
   (§5.4), carrying the pre-trained knowledge forward.

This is the class the examples use; the benchmark harness reaches into
the pieces directly where an experiment needs finer control.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro import rng as rngmod
from repro.core.costs import CostLedger, CostModel
from repro.core.filtermodel import TrainedFilter
from repro.core.mlpct import (
    CampaignResult,
    ExplorationConfig,
    MLPCTExplorer,
    PCTExplorer,
    run_campaign,
)
from repro.core.strategies import make_strategy
from repro.errors import ModelError
from repro.fuzz.corpus import CorpusEntry
from repro.graphs.dataset import DatasetSplits, GraphDatasetBuilder
from repro.kernel.code import Kernel
from repro.ml.encoder import AsmEncoder, EncoderConfig, pretrain_encoder
from repro.ml.pic import PICConfig, PICModel
from repro.ml.training import TrainingConfig, TrainingResult, fine_tune_pic, train_pic

__all__ = ["SnowcatConfig", "Snowcat"]


@dataclass(frozen=True)
class SnowcatConfig:
    """End-to-end configuration of one Snowcat instance."""

    seed: int = 0
    #: Fuzzing rounds used to populate the STI corpus.
    corpus_rounds: int = 250
    #: CTIs sampled for the training dataset, and schedules per CTI.
    dataset_ctis: int = 40
    train_interleavings: int = 6
    evaluation_interleavings: int = 8
    train_fraction: float = 0.6
    validation_fraction: float = 0.15
    #: Encoder pre-training epochs (masked-token objective).
    pretrain_epochs: int = 2
    #: PIC shape.
    token_dim: int = 32
    hidden_dim: int = 48
    num_layers: int = 4
    dropout: float = 0.1
    positive_weight: float = 4.0
    urb_weight: float = 4.0
    #: PIC training.
    epochs: int = 5
    learning_rate: float = 3e-3
    #: Exploration budgets.
    exploration: ExplorationConfig = field(default_factory=ExplorationConfig)
    costs: CostModel = field(default_factory=CostModel)


class Snowcat:
    """One Snowcat deployment against one kernel version."""

    def __init__(self, kernel: Kernel, config: Optional[SnowcatConfig] = None) -> None:
        self.kernel = kernel
        self.config = config or SnowcatConfig()
        self.graphs = GraphDatasetBuilder(kernel, seed=self.config.seed)
        self.splits: Optional[DatasetSplits] = None
        self.encoder: Optional[AsmEncoder] = None
        self.model: Optional[PICModel] = None
        self.training_result: Optional[TrainingResult] = None
        #: Simulated hours spent on data collection + training (§5.4).
        self.startup_hours: float = 0.0

    @classmethod
    def standard(
        cls,
        seed: int,
        exploration: Optional[ExplorationConfig] = None,
        corpus_rounds: int = 200,
    ) -> "Snowcat":
        """The CLI's canonical deployment: default kernel, 200-round corpus.

        Campaigns, fleets, and the continuous-learning worker all build
        their deployment through this one constructor, which is what
        guarantees the learn worker maps journaled ``sti_id`` values onto
        the *same* corpus entries the campaign executed.
        """
        from repro.kernel import KernelConfig, build_kernel

        kernel = build_kernel(KernelConfig(), seed=seed)
        deployment = cls(
            kernel,
            SnowcatConfig(
                seed=seed,
                corpus_rounds=corpus_rounds,
                exploration=exploration or ExplorationConfig(),
            ),
        )
        deployment.prepare_corpus()
        return deployment

    # -- pipeline stages ------------------------------------------------------

    def prepare_corpus(self) -> int:
        """Stage 1-2: fuzz STIs; returns corpus size."""
        self.graphs.grow_corpus(self.config.corpus_rounds)
        return len(self.graphs.corpus)

    def collect_dataset(self) -> DatasetSplits:
        """Stage 3-4: label CT graphs by dynamic execution."""
        if len(self.graphs.corpus) < 2:
            self.prepare_corpus()
        cfg = self.config
        self.splits = self.graphs.build_splits(
            num_ctis=cfg.dataset_ctis,
            train_fraction=cfg.train_fraction,
            validation_fraction=cfg.validation_fraction,
            train_interleavings=cfg.train_interleavings,
            evaluation_interleavings=cfg.evaluation_interleavings,
        )
        return self.splits

    def pic_config(self, name: str = "PIC") -> PICConfig:
        cfg = self.config
        return PICConfig(
            vocab_size=len(self.graphs.vocabulary),
            pad_id=self.graphs.vocabulary.pad_id,
            token_dim=cfg.token_dim,
            hidden_dim=cfg.hidden_dim,
            num_layers=cfg.num_layers,
            dropout=cfg.dropout,
            positive_weight=cfg.positive_weight,
            urb_weight=cfg.urb_weight,
            name=name,
        )

    def pretrain(self) -> AsmEncoder:
        """Stage 5a: masked-token pre-training of the assembly encoder."""
        cfg = self.config
        with obs.span("pretrain.encoder", epochs=cfg.pretrain_epochs) as span:
            self.encoder = AsmEncoder(
                EncoderConfig(
                    vocab_size=len(self.graphs.vocabulary),
                    token_dim=cfg.token_dim,
                    output_dim=cfg.hidden_dim,
                ),
                seed=rngmod.derive_seed(cfg.seed, "encoder"),
            )
            pretrain_encoder(
                self.encoder,
                self.kernel,
                self.graphs.vocabulary,
                epochs=cfg.pretrain_epochs,
                seed=cfg.seed,
            )
            span.set(vocabulary=len(self.graphs.vocabulary))
        return self.encoder

    def train(self, name: str = "PIC") -> TrainingResult:
        """Stage 5b: train the PIC model; charges startup hours."""
        with obs.span("train.pipeline", model=name, kernel=self.kernel.version) as span:
            if self.splits is None:
                self.collect_dataset()
            if self.encoder is None:
                self.pretrain()
            cfg = self.config
            assert self.splits is not None
            model = PICModel(
                self.pic_config(name),
                seed=rngmod.derive_seed(cfg.seed, "pic"),
                pretrained_encoder=self.encoder,
            )
            self.training_result = train_pic(
                model,
                self.splits.train,
                self.splits.validation,
                TrainingConfig(
                    epochs=cfg.epochs, learning_rate=cfg.learning_rate, seed=cfg.seed
                ),
            )
            self.model = self.training_result.model
            labeled = (
                len(self.splits.train)
                + len(self.splits.validation)
                + len(self.splits.evaluation)
            )
            self.startup_hours = cfg.costs.startup_hours(
                labeled_graphs=labeled,
                training_steps=cfg.epochs * len(self.splits.train),
            )
            span.set(
                labeled_graphs=labeled,
                best_validation_ap=round(
                    self.training_result.best_validation_ap, 4
                ),
                simulated_startup_hours=round(self.startup_hours, 3),
            )
        return self.training_result

    def require_model(self) -> PICModel:
        if self.model is None:
            raise ModelError("no trained PIC model; call train() first")
        return self.model

    def trained_filter(
        self,
        recall_floor: float = 0.95,
        calibration_ctis: int = 8,
        calibration_pool: int = 16,
    ) -> TrainedFilter:
        """Train the cascade's cheap filter from this deployment's dataset.

        Fits on the training split. When this deployment has a trained
        PIC the filter distils it — labels are the PIC's verdicts, the
        quantity the cascade must preserve — and the recall-floor
        threshold is calibrated on a campaign-style candidate pool
        (``calibration_ctis`` CTI pairs × ``calibration_pool`` proposed
        schedules each, PIC-labelled): exactly the candidate
        distribution the cascade will face, so the floor transfers.
        Without a model it falls back to ground-truth fruitfulness
        labels and validation-split calibration. Requires
        :meth:`collect_dataset` (or :meth:`train`) to have run.
        """
        if self.splits is None:
            self.collect_dataset()
        assert self.splits is not None
        fitted = TrainedFilter.train(
            self.splits.train,
            validation=self.splits.validation or self.splits.train,
            recall_floor=recall_floor,
            predictor=self.model,
        )
        if self.model is not None and calibration_ctis > 0:
            from repro.execution.pct import propose_hint_pairs

            rng = rngmod.split(self.config.seed, "filter-calibration")
            pool: List = []
            for a, b in self.cti_stream(calibration_ctis, "filter-calibration"):
                for pair in propose_hint_pairs(
                    rng, a.trace, b.trace, calibration_pool
                ):
                    pool.append(self.graphs.graph_for(a, b, list(pair)))
            fitted.calibrate(pool, recall_floor, predictor=self.model)
        return fitted

    # -- explorers -----------------------------------------------------------

    def _ledger(self, include_startup: bool) -> CostLedger:
        return CostLedger(
            model=self.config.costs,
            startup_hours=self.startup_hours if include_startup else 0.0,
        )

    def mlpct_explorer(
        self,
        strategy: str = "S1",
        include_startup_cost: bool = False,
        s3_limit: int = 3,
        label: Optional[str] = None,
        backend: Optional[object] = None,
        cascade_filter: Optional[TrainedFilter] = None,
    ) -> MLPCTExplorer:
        """``backend`` (a :mod:`repro.serve` prediction backend) routes
        scoring through the shared inference service; campaigns without
        one call this deployment's model directly, as before. With a
        backend, a deployment that never trained locally (socket
        campaigns) is allowed — predictions come from the service.
        ``cascade_filter`` (see :meth:`trained_filter`) enables the
        two-stage scoring cascade."""
        model = self.model if backend is not None else self.require_model()
        return MLPCTExplorer(
            self.graphs,
            predictor=model,
            strategy=make_strategy(strategy, s3_limit=s3_limit),
            backend=backend,
            cascade_filter=cascade_filter,
            config=self.config.exploration,
            seed=self.config.seed,
            ledger=self._ledger(include_startup_cost),
            label=label
            or (
                f"MLPCT-{strategy} ({model.config.name})"
                if model is not None
                else f"MLPCT-{strategy} (served)"
            ),
        )

    def pct_explorer(self, label: str = "PCT") -> PCTExplorer:
        return PCTExplorer(
            self.graphs,
            config=self.config.exploration,
            seed=self.config.seed,
            ledger=self._ledger(False),
            label=label,
        )

    def cti_stream(
        self, count: int, seed_label: str = "campaign", threads: int = 2
    ) -> List[Tuple[CorpusEntry, ...]]:
        """A deterministic stream of CTIs for campaigns.

        ``threads`` entries per CTI; the default keeps the historical
        two-thread stream bit-for-bit (``sample_pairs`` and the same RNG
        label).
        """
        rng = rngmod.split(self.config.seed, f"ctis:{seed_label}")
        if threads == 2:
            return self.graphs.corpus.sample_pairs(rng, count)
        return self.graphs.corpus.sample_groups(rng, count, threads)

    def run_campaign(
        self,
        explorer,
        num_ctis: int,
        seed_label: str = "campaign",
        heartbeat=None,
        threads: int = 2,
    ) -> CampaignResult:
        return run_campaign(
            explorer,
            self.cti_stream(num_ctis, seed_label, threads=threads),
            heartbeat=heartbeat,
        )

    # -- generalisation across versions (§5.4) ---------------------------------

    def adapt_to(
        self,
        new_kernel: Kernel,
        dataset_ctis: Optional[int] = None,
        epochs: int = 2,
        learning_rate: float = 1e-3,
        name: Optional[str] = None,
    ) -> "Snowcat":
        """Fine-tune this deployment's model for ``new_kernel``.

        Collects a (typically much smaller) dataset on the new version and
        continues training from the current parameters — the PIC-x.ft.*
        recipe of Table 2. Returns a new :class:`Snowcat` whose startup
        cost reflects only the incremental data + fine-tuning.
        """
        base_model = self.require_model()
        with obs.span(
            "adapt.pipeline",
            source=self.kernel.version,
            target=new_kernel.version,
        ):
            return self._adapt_to(
                new_kernel, base_model, dataset_ctis, epochs, learning_rate, name
            )

    def _adapt_to(
        self,
        new_kernel: Kernel,
        base_model: PICModel,
        dataset_ctis: Optional[int],
        epochs: int,
        learning_rate: float,
        name: Optional[str],
    ) -> "Snowcat":
        cfg = self.config
        adapted_config = replace(
            cfg,
            dataset_ctis=dataset_ctis if dataset_ctis is not None else max(cfg.dataset_ctis // 4, 2),
            epochs=epochs,
            learning_rate=learning_rate,
            # Small incremental datasets need a proportionally bigger
            # validation share or model selection degenerates.
            train_fraction=0.55,
            validation_fraction=0.3,
            seed=rngmod.derive_seed(cfg.seed, f"adapt:{new_kernel.version}"),
        )
        adapted = Snowcat(new_kernel, adapted_config)
        # The vocabulary transfers across versions (same ISA); reuse it so
        # the fine-tuned encoder's token table stays aligned.
        adapted.graphs = GraphDatasetBuilder(
            new_kernel, seed=adapted_config.seed, vocabulary=self.graphs.vocabulary
        )
        adapted.prepare_corpus()
        splits = adapted.collect_dataset()
        result = fine_tune_pic(
            base_model,
            splits.train,
            splits.validation,
            TrainingConfig(
                epochs=epochs,
                learning_rate=learning_rate,
                seed=adapted_config.seed,
            ),
            name=name or f"{base_model.config.name}.ft.{new_kernel.version}",
        )
        adapted.model = result.model
        adapted.training_result = result
        adapted.encoder = None
        labeled = len(splits.train) + len(splits.validation) + len(splits.evaluation)
        adapted.startup_hours = cfg.costs.startup_hours(
            labeled_graphs=labeled, training_steps=epochs * len(splits.train)
        )
        return adapted
