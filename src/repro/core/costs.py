"""Simulated wall-clock accounting.

The paper's efficiency results (Figure 5, §5.2.2, §5.4) are about the
asymmetry between a dynamic execution (~2.8 s under SKI's instrumentation)
and a model inference (~0.015 s — 190 predictions per execution), plus the
one-off data-collection + training cost (240 hours for PIC-5). Our
substrate runs much faster than SKI, so the benches account time with the
*paper's measured constants*, making the x-axes of the reproduced figures
directly comparable in shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["CostModel", "CostLedger"]

#: Paper constants (§5.2.2, §5.3.2).
PAPER_EXECUTION_SECONDS = 2.8
PAPER_INFERENCE_SECONDS = 0.015
PAPER_PIC5_STARTUP_HOURS = 240.0


@dataclass(frozen=True)
class CostModel:
    """Unit costs; defaults are the paper's measurements."""

    execution_seconds: float = PAPER_EXECUTION_SECONDS
    inference_seconds: float = PAPER_INFERENCE_SECONDS
    #: Simulated cost of one training gradient step. Labelled-data
    #: collection is itself dynamic execution, so charging training steps
    #: at the same order as executions reproduces the paper's startup/
    #: campaign cost ratio (240 h of data collection + training for PIC-5
    #: against a ~300 h campaign, §5.3.2).
    training_step_seconds: float = PAPER_EXECUTION_SECONDS

    @property
    def inferences_per_execution(self) -> float:
        """The §5.2.2 asymmetry: ~190 predictions per dynamic run."""
        return self.execution_seconds / self.inference_seconds

    def startup_hours(self, labeled_graphs: int, training_steps: int) -> float:
        """One-off cost: label collection (dynamic runs) plus training."""
        seconds = (
            labeled_graphs * self.execution_seconds
            + training_steps * self.training_step_seconds
        )
        return seconds / 3600.0


@dataclass
class CostLedger:
    """Accumulates simulated time for one campaign."""

    model: CostModel = field(default_factory=CostModel)
    #: One-off cost charged up front (data collection + training hours).
    startup_hours: float = 0.0
    executions: int = 0
    inferences: int = 0

    def charge_execution(self, count: int = 1) -> None:
        self.executions += count

    def charge_inference(self, count: int = 1) -> None:
        self.inferences += count

    @property
    def testing_hours(self) -> float:
        seconds = (
            self.executions * self.model.execution_seconds
            + self.inferences * self.model.inference_seconds
        )
        return seconds / 3600.0

    @property
    def total_hours(self) -> float:
        return self.startup_hours + self.testing_hours

    def snapshot(self) -> Tuple[float, int, int]:
        return (self.total_hours, self.executions, self.inferences)
