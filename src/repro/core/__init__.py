"""Snowcat proper: predicted-coverage-guided concurrency testing (§3.3).

Selection strategies S1/S2/S3 over predicted coverage, the MLPCT explorer
(PCT proposals filtered by the PIC model), simulated cost accounting that
maps executions/inferences/training to the paper's wall-clock axes, the
analytic rejection-filter model of §A.6, and the end-to-end orchestrator.
"""

from repro.core.costs import CostModel, CostLedger
from repro.core.scoring import (
    CandidateScorer,
    ScoredCandidate,
    iter_score_candidates,
    score_candidates,
)
from repro.core.strategies import (
    NewCoverageSet,
    NewPositiveBlocks,
    PositiveBlocksLimitedTrials,
    SelectionStrategy,
    make_strategy,
)
from repro.core.mlpct import (
    CampaignResult,
    ExplorationConfig,
    MLPCTExplorer,
    PCTExplorer,
    run_campaign,
)
from repro.core.filtermodel import FilterModel, simulate_filter
from repro.core.ctigen import (
    OverlapPrioritizedGenerator,
    communication_score,
    random_ctis,
)
from repro.core.directed import DirectedScheduleSearch, DirectedSearchResult
from repro.core.snowcat import Snowcat, SnowcatConfig

__all__ = [
    "CostModel",
    "CostLedger",
    "CandidateScorer",
    "ScoredCandidate",
    "score_candidates",
    "iter_score_candidates",
    "SelectionStrategy",
    "NewCoverageSet",
    "NewPositiveBlocks",
    "PositiveBlocksLimitedTrials",
    "make_strategy",
    "ExplorationConfig",
    "MLPCTExplorer",
    "PCTExplorer",
    "CampaignResult",
    "run_campaign",
    "FilterModel",
    "simulate_filter",
    "DirectedScheduleSearch",
    "DirectedSearchResult",
    "OverlapPrioritizedGenerator",
    "communication_score",
    "random_ctis",
    "Snowcat",
    "SnowcatConfig",
]
