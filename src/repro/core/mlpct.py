"""PCT and MLPCT interleaving exploration (§5.3).

Both explorers consume the same per-CTI stream of candidate schedules
(scheduling-hint pairs drawn from the threads' sequential instruction
streams, seeded per CTI so PCT and MLPCT are compared on identical
candidates, as the paper runs both "on the same CTI stream"):

- :class:`PCTExplorer` (the SKI baseline) dynamically executes the first
  ``execution_budget`` candidates.
- :class:`MLPCTExplorer` predicts each candidate's coverage with a PIC
  model, asks a selection strategy whether it is interesting, and only
  executes the selected ones — up to the same execution budget, but with an
  ``inference_cap`` on predictions (the paper caps at 1,600).

Both update a campaign-wide race detector, the schedule-dependent block
coverage set, the manifested-bug ledger, and the simulated cost ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro import rng as rngmod
from repro.core.costs import CostLedger
from repro.core.scoring import (
    DEFAULT_BATCH_SIZE,
    CandidateScorer,
    iter_score_candidates,
)
from repro.core.strategies import SelectionStrategy
from repro.execution.concurrent import ScheduleHint
from repro.execution.parallel import CTTask, make_runner
from repro.execution.pct import propose_hint_tuples
from repro.execution.races import RaceDetector
from repro.execution.trace import ConcurrentResult
from repro.fuzz.corpus import CorpusEntry
from repro.graphs.dataset import GraphDatasetBuilder
from repro.kernel.bugs import BugKind, BugSpec
from repro.kernel.code import Kernel
from repro.ml.baselines import CoveragePredictor
from repro.resilience.faults import FaultPlan
from repro.resilience.supervisor import SupervisionPolicy

__all__ = [
    "ExplorationConfig",
    "ExplorationStats",
    "CampaignResult",
    "PCTExplorer",
    "MLPCTExplorer",
    "run_campaign",
]


@dataclass(frozen=True)
class ExplorationConfig:
    """Per-CTI exploration budget (§5.3.1 uses 50 executions, cap 1,600)."""

    execution_budget: int = 50
    inference_cap: int = 1600
    #: Candidate schedules proposed per CTI (candidates beyond the caps are
    #: never considered).
    proposal_pool: int = 1600
    #: Candidates scored per batched inference call (see
    #: :mod:`repro.core.scoring`); 1 forces per-graph scoring. Predictors
    #: without a batch path always score per graph regardless.
    score_batch_size: int = DEFAULT_BATCH_SIZE
    #: Worker processes for dynamic executions; 0 (the default) runs
    #: serially in-process. Results are byte-identical either way (see
    #: :mod:`repro.execution.parallel`).
    parallel_workers: int = 0
    #: Supervised-execution policy (per-CT timeouts, bounded retries,
    #: quarantine, pool→serial fallback; see
    #: :mod:`repro.resilience.supervisor`). ``None`` uses the plain
    #: unsupervised runners.
    supervision: Optional[SupervisionPolicy] = None
    #: Deterministic fault-injection spec (see
    #: :mod:`repro.resilience.faults`); setting one implies supervised
    #: execution.
    fault_spec: Optional[str] = None
    #: Threads per CT. The campaign's CTI stream must supply one corpus
    #: entry per thread; 2 is the paper's configuration.
    num_threads: int = 2
    #: Inject one interrupt per executed CT at a seed-derived step, using
    #: the kernel's IRQ handler pool (no-op for kernels without handlers).
    irq: bool = False
    #: Memory model dynamic executions run under: ``"sc"`` (the default,
    #: byte-identical to the historical path) or ``"tso"`` (per-thread
    #: store buffers).
    memory_model: str = "sc"


@dataclass
class ExplorationStats:
    """What one CTI's exploration achieved."""

    executions: int = 0
    inferences: int = 0
    new_races: int = 0
    new_blocks: int = 0
    manifested_bugs: Set[int] = field(default_factory=set)


@dataclass
class CampaignResult:
    """Cumulative outcome of a testing campaign (one curve of Figure 5)."""

    label: str
    #: Checkpoints after every dynamic execution:
    #: (simulated hours, unique races, schedule-dependent blocks).
    history: List[Tuple[float, int, int]] = field(default_factory=list)
    ledger: CostLedger = field(default_factory=CostLedger)
    manifested_bugs: Set[int] = field(default_factory=set)
    #: (simulated hours, bug id) at first manifestation, in order.
    bug_history: List[Tuple[float, int]] = field(default_factory=list)
    per_cti: List[ExplorationStats] = field(default_factory=list)
    #: Supervised-execution counters (retries, timeouts, quarantined,
    #: worker deaths, fallbacks, accounted backoff seconds); ``None``
    #: when the campaign ran unsupervised.
    resilience: Optional[Dict[str, float]] = None
    #: Served-model swap boundaries observed mid-campaign (continuous
    #: learning, see ``docs/LIFECYCLE.md``): each entry records the
    #: previous and new model version, the execution index at the
    #: boundary, and the simulated hours. Empty for campaigns that never
    #: saw a hot-swap.
    swaps: List[Dict[str, object]] = field(default_factory=list)

    @property
    def total_races(self) -> int:
        return self.history[-1][1] if self.history else 0

    @property
    def total_blocks(self) -> int:
        return self.history[-1][2] if self.history else 0

    def swap_deltas(self) -> List[Dict[str, float]]:
        """Races-per-execution before vs after each recorded swap.

        ``history`` holds one checkpoint per dynamic execution, so the
        rate on either side of a swap boundary is the race delta over
        that side's execution count. Sides with zero executions report a
        rate of 0.0.
        """
        deltas: List[Dict[str, float]] = []
        for swap in self.swaps:
            boundary = int(swap["execution_index"])
            before_n = boundary
            after_n = len(self.history) - boundary
            races_at_boundary = (
                self.history[boundary - 1][1] if boundary >= 1 else 0
            )
            total_races = self.history[-1][1] if self.history else 0
            deltas.append(
                {
                    "version": swap["version"],
                    "previous": swap["previous"],
                    "before_rate": (
                        races_at_boundary / before_n if before_n else 0.0
                    ),
                    "after_rate": (
                        (total_races - races_at_boundary) / after_n
                        if after_n
                        else 0.0
                    ),
                    "before_executions": float(before_n),
                    "after_executions": float(after_n),
                }
            )
        return deltas

    def hours_to_reach_races(self, target: int) -> Optional[float]:
        """First simulated hour at which the race count reached ``target``."""
        for hours, races, _ in self.history:
            if races >= target:
                return hours
        return None

    def bugs_by_hours(self, horizon: float) -> Set[int]:
        """Bugs manifested within the first ``horizon`` simulated hours."""
        return {bug for hours, bug in self.bug_history if hours <= horizon}


class _ExplorerBase:
    """State shared by PCT and MLPCT exploration."""

    def __init__(
        self,
        graphs: GraphDatasetBuilder,
        config: Optional[ExplorationConfig] = None,
        seed: int = 0,
        ledger: Optional[CostLedger] = None,
        label: str = "explorer",
        capture_labels: bool = False,
    ) -> None:
        self.graphs = graphs
        self.kernel: Kernel = graphs.kernel
        self.config = config or ExplorationConfig()
        self.seed = seed
        self.ledger = ledger or CostLedger()
        #: Opt-in executed-CT coverage-label capture for the
        #: continuous-learning tailer (read-only observation of results
        #: already in hand — cannot perturb RNG streams or accounting).
        self.capture_labels = capture_labels
        self._captured_labels: List[Dict[str, object]] = []
        self._swaps: List[Dict[str, object]] = []
        self._served_version: Optional[str] = None
        self.race_detector = RaceDetector()
        self.covered_schedule_blocks: Set[int] = set()
        self.manifested_bugs: Set[int] = set()
        self.history: List[Tuple[float, int, int]] = []
        self.bug_history: List[Tuple[float, int]] = []
        self.label = label
        fault_plan = (
            FaultPlan.parse(self.config.fault_spec, seed=seed)
            if self.config.fault_spec
            else None
        )
        self.runner = make_runner(
            self.config.parallel_workers,
            policy=self.config.supervision,
            fault_plan=fault_plan,
        )
        self._task_index = 0
        self._audit: Optional[Dict[str, object]] = None
        self._visit_counts: Dict[Tuple[int, int], int] = {}
        self._manifest_index: Dict[int, BugSpec] = {
            spec.manifest_block: spec for spec in self.kernel.bugs
        }
        self._race_variable_index: Dict[int, BugSpec] = {
            spec.variable: spec
            for spec in self.kernel.bugs
            if spec.kind is BugKind.DATA_RACE
        }

    # -- shared plumbing -----------------------------------------------------

    def proposals_for(
        self, *entries: CorpusEntry
    ) -> List[Tuple[ScheduleHint, ...]]:
        """Deterministic per-CTI candidate stream (shared across explorers).

        Accepts one corpus entry per thread. Revisiting the same CTI
        yields a *fresh* candidate pool (visit count is folded into the
        seed), matching how SKI keeps sampling new PCT schedules over a
        long campaign.
        """
        key = tuple(entry.sti.sti_id for entry in entries)
        visit = self._visit_counts.get(key, 0)
        self._visit_counts[key] = visit + 1
        label = "proposals:" + ":".join(str(sti_id) for sti_id in key)
        rng = rngmod.split(self.seed, f"{label}:{visit}")
        return propose_hint_tuples(
            rng,
            tuple(entry.trace for entry in entries),
            self.config.proposal_pool,
        )

    def _record_bug(self, bug_id: int, stats: ExplorationStats) -> None:
        if bug_id not in self.manifested_bugs:
            self.manifested_bugs.add(bug_id)
            self.bug_history.append((self.ledger.total_hours, bug_id))
        stats.manifested_bugs.add(bug_id)

    def _attribute_bugs(self, result: ConcurrentResult, stats: ExplorationStats) -> None:
        for event in result.bug_events:
            spec = self._manifest_index.get(event.block_id)
            if spec is not None:
                self._record_bug(spec.bug_id, stats)
        for address, spec in self._race_variable_index.items():
            if (
                spec.bug_id not in self.manifested_bugs
                and self.race_detector.has_address(address)
            ):
                self._record_bug(spec.bug_id, stats)

    def _account(
        self,
        entries: Sequence[CorpusEntry],
        result: ConcurrentResult,
        stats: ExplorationStats,
    ) -> None:
        """Fold one execution's outcome into the campaign state.

        Order-sensitive (race dedup, fresh-block sets, history
        checkpoints): callers replay results in selection order, which is
        what makes parallel execution byte-identical to serial.
        """
        self.ledger.charge_execution()
        stats.executions += 1
        obs.add("campaign.executions")
        new_races = self.race_detector.observe(result)
        stats.new_races += len(new_races)
        scbs = set().union(*(entry.trace.covered_blocks for entry in entries))
        fresh_blocks = (
            result.schedule_dependent_blocks(scbs) - self.covered_schedule_blocks
        )
        self.covered_schedule_blocks |= fresh_blocks
        stats.new_blocks += len(fresh_blocks)
        self._attribute_bugs(result, stats)
        self.history.append(
            (
                self.ledger.total_hours,
                self.race_detector.total,
                len(self.covered_schedule_blocks),
            )
        )

    def _irq_plan_for(
        self, entries: Sequence[CorpusEntry], task_index: int
    ) -> Tuple[Tuple[int, str], ...]:
        """Seed-derived one-interrupt plan for one task (IRQ axis).

        The arrival step is drawn uniformly over the CTI's combined
        sequential step count, the handler uniformly from the kernel's
        IRQ handler pool. Pure function of ``(seed, task_index)``, so a
        task replays identically anywhere. Empty when the axis is off or
        the kernel has no handlers — and the RNG split only happens with
        the axis on, keeping axis-off campaigns byte-identical.
        """
        if not self.config.irq or not self.kernel.irq_handlers:
            return ()
        rng = rngmod.split(self.seed, f"irq:{task_index}")
        horizon = max(
            1, sum(len(entry.trace.iid_trace) for entry in entries)
        )
        step = int(rng.integers(1, horizon + 1))
        handler = self.kernel.irq_handlers[
            int(rng.integers(len(self.kernel.irq_handlers)))
        ]
        return ((step, handler),)

    def build_tasks(self, *args) -> List[CTTask]:
        """Freeze the selected candidates into executable tasks.

        Positional arguments are one corpus entry per thread followed by
        the list of hint sequences. Advances the campaign-global
        task-seed counter, so tasks must be built in selection order;
        each task is then a pure function of its own fields and may
        execute anywhere (worker pool, fleet worker) without affecting
        results.
        """
        *entries, hints_list = args
        programs = tuple(entry.sti.as_pairs() for entry in entries)
        tasks = []
        for hints in hints_list:
            tasks.append(
                CTTask.build(
                    programs,
                    hints,
                    seed=self.seed,
                    index=self._task_index,
                    memory_model=self.config.memory_model,
                    irq_plan=self._irq_plan_for(entries, self._task_index),
                )
            )
            self._task_index += 1
        return tasks

    def account_results(
        self,
        *args,
        inferences_before: Optional[Sequence[int]] = None,
        audit: Optional[Dict[str, object]] = None,
        tasks: Optional[Sequence[CTTask]] = None,
    ) -> None:
        """Fold executed results into campaign state, in selection order.

        Positional arguments are one corpus entry per thread, the results
        sequence, and the per-CTI stats. ``inferences_before[j]`` is how
        many of this CTI's inferences had happened when candidate ``j``
        was selected. Inference charges are replayed against the ledger
        just before each execution's charge — with any tail inferences
        charged after the last — so every history checkpoint carries the
        exact simulated hours an interleaved predict-then-execute loop
        would have recorded.

        ``audit`` overrides the explorer's own audit slot — the fleet
        coordinator interleaves several CTIs' accounting and keeps one
        audit record per CTI.

        ``tasks`` (the executed :class:`CTTask` objects, in the same
        order as ``results``) enables label capture: with
        ``capture_labels`` on, each (schedule, covered-blocks) pair is
        buffered for the journal to drain (see ``repro.learn``).
        """
        *entries, results, stats = args
        if audit is None:
            audit = self._audit
        if audit is not None:
            from repro.resilience.journal import result_digest

            audit["results"].extend(result_digest(r) for r in results)
        if self.capture_labels and tasks is not None:
            sti_ids = [int(entry.sti.sti_id) for entry in entries]
            for task, result in zip(tasks, results):
                self._captured_labels.append(
                    {
                        "sti": sti_ids,
                        "hints": [
                            [hint.thread, hint.iid] for hint in task.hints
                        ],
                        "covered": [
                            sorted(blocks)
                            for blocks in result.covered_blocks
                        ],
                    }
                )
        charged = 0
        for index, result in enumerate(results):
            if inferences_before is not None:
                owed = inferences_before[index] - charged
                if owed:
                    self.ledger.charge_inference(owed)
                    charged = inferences_before[index]
            self._account(entries, result, stats)
        if inferences_before is not None and stats.inferences > charged:
            self.ledger.charge_inference(stats.inferences - charged)

    def _execute_selected(
        self,
        *args,
        inferences_before: Optional[Sequence[int]] = None,
    ) -> List[ConcurrentResult]:
        """Run the selected CTs (serially or in the worker pool) and
        account for them in selection order.

        Positional arguments are one corpus entry per thread, the list of
        hint sequences, and the per-CTI stats.
        """
        *entries, hints_list, stats = args
        tasks = self.build_tasks(*entries, hints_list)
        results = self.runner.run_many(self.kernel, tasks)
        self.account_results(
            *entries,
            results,
            stats,
            inferences_before=inferences_before,
            tasks=tasks,
        )
        return results

    def drain_captured_labels(self) -> List[Dict[str, object]]:
        """Return and clear the buffered coverage labels (label capture)."""
        labels, self._captured_labels = self._captured_labels, []
        return labels

    def close(self) -> None:
        """Release the execution runner (a no-op for the serial one)."""
        self.runner.close()

    def explore_cti(self, *entries: CorpusEntry) -> ExplorationStats:
        raise NotImplementedError

    # -- crash-safe campaigns (see repro.resilience.journal) -----------------

    def begin_audit(self) -> None:
        """Start collecting integrity digests for the next CTI.

        While auditing, :meth:`_execute_selected` folds a digest of every
        execution result (and :class:`MLPCTExplorer` one of every scored
        prediction) into the audit record the journal persists — a resumed
        campaign that diverges (different kernel, model, or seed) fails
        checksum comparison instead of silently producing a franken-run.
        """
        self._audit = {"results": [], "scored": 0, "scored_digest": ""}

    def end_audit(self) -> Dict[str, object]:
        audit, self._audit = self._audit, None
        assert audit is not None, "end_audit without begin_audit"
        return audit

    def state_dict(self) -> Dict[str, object]:
        """Full campaign-progress snapshot, exact under a JSON round-trip.

        Everything order-sensitive accounting depends on is captured —
        ledger charges, the race-dedup set, coverage, bug ledger, history
        curves, the task-seed counter, per-CTI visit counts, and (when
        supervised) the runner's counters — so a resumed campaign is
        byte-identical to an uninterrupted one.
        """
        state: Dict[str, object] = {
            "executions": self.ledger.executions,
            "inferences": self.ledger.inferences,
            "races": self.race_detector.state_dict(),
            "covered_blocks": sorted(self.covered_schedule_blocks),
            "manifested_bugs": sorted(self.manifested_bugs),
            "history": [list(point) for point in self.history],
            "bug_history": [list(point) for point in self.bug_history],
            "task_index": self._task_index,
            "visit_counts": sorted(
                [list(key), visits]
                for key, visits in self._visit_counts.items()
            ),
        }
        runner_state = getattr(self.runner, "state_dict", None)
        if runner_state is not None:
            state["runner"] = runner_state()
        # Swap-boundary bookkeeping is serialized only once a served
        # model version has actually been observed, so campaigns that
        # never hot-swap keep the historical state shape byte-for-byte.
        if self._swaps:
            state["swaps"] = [dict(swap) for swap in self._swaps]
        if self._served_version is not None:
            state["served_version"] = self._served_version
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self.ledger.executions = int(state["executions"])
        self.ledger.inferences = int(state["inferences"])
        self.race_detector.load_state(state["races"])
        self.covered_schedule_blocks = set(state["covered_blocks"])
        self.manifested_bugs = set(state["manifested_bugs"])
        self.history = [tuple(point) for point in state["history"]]
        self.bug_history = [tuple(point) for point in state["bug_history"]]
        self._task_index = int(state["task_index"])
        self._visit_counts = {
            tuple(key): int(visits) for key, visits in state["visit_counts"]
        }
        if "runner" in state:
            loader = getattr(self.runner, "load_state", None)
            if loader is not None:
                loader(state["runner"])
        self._swaps = [dict(swap) for swap in state.get("swaps", [])]
        served = state.get("served_version")
        self._served_version = str(served) if served is not None else None

    def result(self) -> CampaignResult:
        summary = getattr(self.runner, "summary", None)
        return CampaignResult(
            label=self.label,
            history=list(self.history),
            ledger=self.ledger,
            manifested_bugs=set(self.manifested_bugs),
            bug_history=list(self.bug_history),
            resilience=summary() if summary is not None else None,
            swaps=[dict(swap) for swap in self._swaps],
        )


class PCTExplorer(_ExplorerBase):
    """The SKI/PCT baseline: execute candidates in proposal order."""

    def __init__(self, graphs: GraphDatasetBuilder, **kwargs) -> None:
        kwargs.setdefault("label", "PCT")
        super().__init__(graphs, **kwargs)

    def explore_cti(self, *entries: CorpusEntry) -> ExplorationStats:
        stats = ExplorationStats()
        proposals = self.proposals_for(*entries)
        selected = [list(pair) for pair in proposals[: self.config.execution_budget]]
        self._execute_selected(*entries, selected, stats)
        return stats


class MLPCTExplorer(_ExplorerBase):
    """PCT proposals filtered by the PIC model + a selection strategy."""

    def __init__(
        self,
        graphs: GraphDatasetBuilder,
        predictor: Optional[CoveragePredictor],
        strategy: SelectionStrategy,
        backend: Optional[object] = None,
        cascade_filter: Optional[object] = None,
        **kwargs,
    ) -> None:
        """``backend`` routes all predictions through a serving backend
        (:mod:`repro.serve`) instead of calling ``predictor`` directly;
        ``predictor`` may then be ``None`` (socket campaigns have no
        local model). The default (no backend) is byte-identical to the
        historical direct-call path.

        ``cascade_filter`` (a :class:`repro.core.filtermodel.TrainedFilter`)
        enables two-stage scoring: cheap-filter rejects never reach the
        full predictor and are treated as predicted-uncovered."""
        kwargs.setdefault("label", f"MLPCT-{strategy.name}")
        super().__init__(graphs, **kwargs)
        self.predictor = predictor
        self.backend = backend
        self.strategy = strategy
        self.scorer = CandidateScorer(
            predictor,
            batch_size=self.config.score_batch_size,
            backend=backend,
            cascade_filter=cascade_filter,
        )

    def state_dict(self) -> Dict[str, object]:
        state = super().state_dict()
        state["strategy"] = self.strategy.state_dict()
        return state

    def load_state(self, state: Dict[str, object]) -> None:
        super().load_state(state)
        self.strategy.load_state(state["strategy"])

    def _note_swap_boundary(self) -> None:
        """Record a served-model version change as a swap boundary.

        Backends that serve predictions expose ``observed_version`` (the
        version tag the server attached to the most recent batch). The
        check runs at CTI granularity — at the start of each
        ``explore_cti`` and once more in :meth:`result` — so a CTI whose
        scoring straddled a swap is attributed to the *before* side (see
        ``docs/LIFECYCLE.md``). With no backend, or a backend that never
        reports a version, this is a no-op.
        """
        observed = getattr(self.backend, "observed_version", None)
        if observed is None:
            return
        observed = str(observed)
        if self._served_version is None:
            self._served_version = observed
            return
        if observed == self._served_version:
            return
        swap = {
            "previous": self._served_version,
            "version": observed,
            "execution_index": self.ledger.executions,
            "hours": self.ledger.total_hours,
        }
        self._swaps.append(swap)
        self._served_version = observed
        obs.point(
            "learn.swap",
            label=self.label,
            previous=swap["previous"],
            version=swap["version"],
            execution_index=swap["execution_index"],
        )

    def result(self) -> CampaignResult:
        self._note_swap_boundary()
        return super().result()

    def explore_cti(self, *entries: CorpusEntry) -> ExplorationStats:
        self._note_swap_boundary()
        stats = ExplorationStats()
        scored = iter_score_candidates(
            self.scorer,
            self.graphs,
            *entries,
            self.proposals_for(*entries),
        )
        selected: List[Tuple[ScheduleHint, ...]] = []
        inferences_before: List[int] = []
        while True:
            # Budget checks come before pulling the next candidate: the
            # engine's fallback path predicts lazily, so an RNG-consuming
            # predictor draws exactly once per considered candidate.
            if len(selected) >= self.config.execution_budget:
                break
            if stats.inferences >= self.config.inference_cap:
                break
            candidate = next(scored, None)
            if candidate is None:
                break
            stats.inferences += 1
            obs.add("campaign.inferences")
            if self._audit is not None:
                from repro.resilience.journal import fold_prediction_digest

                self._audit["scored"] += 1
                self._audit["scored_digest"] = fold_prediction_digest(
                    self._audit["scored_digest"],
                    candidate.proba,
                    candidate.predicted,
                )
            if not self.strategy.is_interesting(
                candidate.graph, candidate.predicted
            ):
                # A prediction the strategy rejects is a dynamic execution
                # the campaign never has to pay for.
                obs.add("campaign.executions_saved")
                continue
            self.strategy.commit(candidate.graph, candidate.predicted)
            selected.append(candidate.hints)
            inferences_before.append(stats.inferences)
        self._execute_selected(
            *entries, selected, stats, inferences_before=inferences_before
        )
        return stats


def run_campaign(
    explorer: _ExplorerBase,
    ctis: Sequence[Tuple[CorpusEntry, ...]],
    journal: Optional["CampaignJournal"] = None,
    heartbeat=None,
) -> CampaignResult:
    """Explore a stream of CTIs; returns the cumulative campaign curve.

    With ``journal`` (a :class:`repro.resilience.journal.CampaignJournal`)
    every completed CTI is appended to a durable write-ahead journal and
    the explorer's full state is checkpointed atomically; if the journal
    already holds progress for this campaign, completed CTIs are skipped
    and exploration resumes mid-stream, producing a result byte-identical
    to an uninterrupted run (see ``docs/ROBUSTNESS.md``).

    With ``heartbeat`` (a :class:`repro.obs.export.HeartbeatWriter`)
    the loop additionally publishes throttled progress snapshots —
    CTIs done, races found, executions, rate, ETA — for ``repro top``,
    mirroring each written snapshot as a ``campaign.heartbeat`` trace
    point. Progress reporting reads counters only; it cannot perturb
    campaign results.
    """
    ctis = list(ctis)
    result_stats: List[ExplorationStats] = []
    start_index = 0
    if journal is not None:
        result_stats, start_index = journal.prepare(explorer, ctis)
    races_so_far = sum(stats.new_races for stats in result_stats)
    executions_so_far = sum(stats.executions for stats in result_stats)
    if heartbeat is not None:
        heartbeat.begin(explorer.label, len(ctis), done=start_index)
    try:
        with obs.span(
            "campaign.run", label=explorer.label, ctis=len(ctis)
        ) as campaign_span:
            for index, entries in enumerate(ctis):
                if index < start_index:
                    continue
                with obs.span("campaign.cti", index=index) as cti_span:
                    if journal is not None:
                        explorer.begin_audit()
                    stats = explorer.explore_cti(*entries)
                    cti_span.set(
                        executions=stats.executions,
                        inferences=stats.inferences,
                        new_races=stats.new_races,
                        new_blocks=stats.new_blocks,
                    )
                result_stats.append(stats)
                races_so_far += stats.new_races
                executions_so_far += stats.executions
                if journal is not None:
                    journal.record_cti(explorer, index, stats)
                if heartbeat is not None and heartbeat.update(
                    done=index + 1,
                    races=races_so_far,
                    executions=executions_so_far,
                ):
                    obs.point(
                        "campaign.heartbeat",
                        done=index + 1,
                        total=len(ctis),
                        races=races_so_far,
                        executions=executions_so_far,
                    )
            campaign = explorer.result()
            campaign_span.set(
                races=campaign.total_races,
                blocks=campaign.total_blocks,
                executions=campaign.ledger.executions,
                inferences=campaign.ledger.inferences,
                simulated_hours=round(campaign.ledger.total_hours, 4),
            )
    finally:
        # Worker pools (parallel_workers > 0) do not outlive the campaign.
        explorer.close()
    campaign.per_cti = result_stats
    return campaign
