"""Deterministic fault-injection plans.

Real kernel concurrency testing runs on a substrate that fails
constantly: worker VMs crash, executions hang, transient I/O errors
abort runs. The recovery machinery in :mod:`repro.resilience` is tested
against *seeded fault plans* that reproduce exactly those failures at
chosen points — the same seed and spec always injects the same faults,
so recovery tests and ``--inject-faults`` soak runs are reproducible.

Spec grammar (entries are comma-separated)::

    spec     := entry ("," entry)*
    entry    := kind ":" rate          -- inject with probability `rate`
              | kind "@" index         -- inject at exact task `index`
    kind     := crash | hang | transient | poison | die

Kinds:

- ``crash``     — the worker process executing the CT dies (simulated as
  a :class:`~repro.errors.WorkerCrashError` in serial mode, a real
  ``os._exit`` in a supervised worker process);
- ``hang``      — the execution never finishes (a real sleep past the
  supervision timeout in a worker, an immediate timeout in serial mode);
- ``transient`` — the execution raises an :class:`~repro.errors
  .ExecutionError` that does not recur on retry;
- ``poison``    — the CT fails on *every* attempt, so the supervisor
  must quarantine it (index form only);
- ``die``       — the campaign process itself exits abruptly
  (``os._exit(137)``, the SIGKILL exit status) when the given task is
  dispatched; used by crash-recovery tests (index form only).

Rate-based faults fire on the first attempt of a task only (retries
succeed); ``poison`` fires on all attempts. Decisions are a pure
function of ``(seed, kind, task index)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import rng as rngmod
from repro.errors import FaultSpecError

__all__ = ["InjectedFault", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("crash", "hang", "transient", "poison", "die")

#: Denominator for hash-fraction fault decisions.
_FRACTION_BITS = 2**53


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan injects into one execution attempt."""

    kind: str  # crash | hang | transient
    task_index: int


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, seeded fault plan.

    Immutable and cheap to share: supervised runners consult
    :meth:`fault_for` per (task, attempt) and :meth:`should_die` per
    dispatched task.
    """

    seed: int
    spec: str
    rates: Tuple[Tuple[str, float], ...] = ()
    exact: Tuple[Tuple[str, int], ...] = ()

    @staticmethod
    def parse(spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``spec`` (see the module docstring for the grammar)."""
        rates: List[Tuple[str, float]] = []
        exact: List[Tuple[str, int]] = []
        for raw_entry in spec.split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            if ":" in entry:
                kind, _, value = entry.partition(":")
                kind = kind.strip()
                if kind not in ("crash", "hang", "transient"):
                    raise FaultSpecError(
                        f"fault kind {kind!r} does not take a rate "
                        "(rates apply to crash, hang, transient)"
                    )
                try:
                    rate = float(value)
                except ValueError:
                    raise FaultSpecError(
                        f"invalid fault rate {value!r} in {entry!r}"
                    ) from None
                if not 0.0 <= rate <= 1.0:
                    raise FaultSpecError(
                        f"fault rate must be in [0, 1], got {rate} in {entry!r}"
                    )
                rates.append((kind, rate))
            elif "@" in entry:
                kind, _, value = entry.partition("@")
                kind = kind.strip()
                if kind not in FAULT_KINDS:
                    raise FaultSpecError(
                        f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
                    )
                try:
                    index = int(value)
                except ValueError:
                    raise FaultSpecError(
                        f"invalid task index {value!r} in {entry!r}"
                    ) from None
                if index < 0:
                    raise FaultSpecError(f"task index must be >= 0 in {entry!r}")
                exact.append((kind, index))
            else:
                raise FaultSpecError(
                    f"cannot parse fault entry {entry!r}; "
                    "expected 'kind:rate' or 'kind@index'"
                )
        return FaultPlan(seed=seed, spec=spec, rates=tuple(rates), exact=tuple(exact))

    # -- decisions -----------------------------------------------------------

    def _fraction(self, kind: str, task_index: int) -> float:
        derived = rngmod.derive_seed(self.seed, f"fault:{kind}:{task_index}")
        return (derived % _FRACTION_BITS) / _FRACTION_BITS

    def should_die(self, task_index: int) -> bool:
        """Whether the campaign process must die dispatching this task."""
        return any(
            kind == "die" and index == task_index for kind, index in self.exact
        )

    def fault_for(self, task_index: int, attempt: int) -> Optional[InjectedFault]:
        """The fault (if any) to inject into this execution attempt.

        ``attempt`` counts from 0; rate faults and exact crash/hang/
        transient faults fire only on attempt 0, ``poison`` on every
        attempt (forcing quarantine).
        """
        for kind, index in self.exact:
            if index != task_index or kind == "die":
                continue
            if kind == "poison":
                return InjectedFault(kind="transient", task_index=task_index)
            if attempt == 0:
                return InjectedFault(kind=kind, task_index=task_index)
        if attempt == 0:
            for kind, rate in self.rates:
                if rate > 0.0 and self._fraction(kind, task_index) < rate:
                    return InjectedFault(kind=kind, task_index=task_index)
        return None

    def preview(self, num_tasks: int) -> Dict[int, str]:
        """First-attempt fault per task index over ``num_tasks`` tasks.

        Determinism helper for tests and soak-run reports: the same plan
        always previews identically.
        """
        plan: Dict[int, str] = {}
        for task_index in range(num_tasks):
            if self.should_die(task_index):
                plan[task_index] = "die"
                continue
            fault = self.fault_for(task_index, 0)
            if fault is not None:
                plan[task_index] = fault.kind
        return plan

    @property
    def poisoned(self) -> Set[int]:
        return {index for kind, index in self.exact if kind == "poison"}
