"""Atomic, durable file writes.

Every artifact the pipeline persists — kernels, model checkpoints,
telemetry traces, journal checkpoints, benchmark results — goes through
the same recipe: write the complete content to a temporary file in the
*same directory* as the destination, flush, ``fsync`` the file, then
``os.replace`` it over the destination (and ``fsync`` the directory so
the rename itself is durable). A crash at any point leaves either the
old file or the new file, never a truncated hybrid.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Union

__all__ = [
    "sha256_hex",
    "canonical_json",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "probe_writable",
]


def sha256_hex(data: Union[str, bytes]) -> str:
    """Hex SHA-256 of ``data`` (text is hashed as UTF-8)."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()


def canonical_json(payload: object) -> str:
    """Deterministic JSON encoding (sorted keys, minimal separators).

    Used wherever a checksum is computed over structured data, so the
    checksum does not depend on dict insertion order.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fsync_directory(path: str) -> None:
    """Flush directory metadata so a completed rename survives a crash."""
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs may be unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically and durably."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` (UTF-8) to ``path`` atomically and durably."""
    atomic_write_bytes(path, text.encode("utf-8"))


def probe_writable(path: str) -> None:
    """Raise :class:`OSError` unless a file can be created at ``path``.

    Used by the CLI to fail fast — *before* an expensive training run —
    when an output destination is unwritable (missing directory, a
    directory in the file's place, no permission).
    """
    directory = os.path.dirname(os.path.abspath(path))
    if os.path.isdir(path):
        raise IsADirectoryError(21, "destination is a directory", path)
    fd, temp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".probe"
    )
    os.close(fd)
    os.unlink(temp_path)
