"""Crash-safety machinery for long-running testing campaigns.

Snowcat's value proposition is *long-running* campaigns (§5.4's
continuous-testing steady state), on a substrate where individual
executions routinely hang, crash, or wedge a worker. This package makes
the campaign engine survive all of that:

- :mod:`repro.resilience.atomic` — temp-file + fsync + rename writes, so
  a crash never leaves a truncated artifact;
- :mod:`repro.resilience.journal` — a write-ahead JSON-lines campaign
  journal plus atomic state checkpoints; an interrupted-then-resumed
  campaign is byte-identical to an uninterrupted one;
- :mod:`repro.resilience.faults` — deterministic seeded fault plans
  (worker crashes, hangs, transient errors) for recovery tests and
  ``--inject-faults`` soak runs;
- :mod:`repro.resilience.supervisor` — supervised CT execution with
  per-CT timeouts, bounded retries, quarantine of poison CTs, and
  automatic pool→serial fallback after repeated worker deaths.

See ``docs/ROBUSTNESS.md`` for the journal format, resume semantics,
fault-spec grammar, and degradation policy.
"""

from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    probe_writable,
    sha256_hex,
)
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.resilience.journal import (
    CampaignJournal,
    ContinuousJournal,
    campaign_result_from_dict,
    campaign_result_to_dict,
    reset_journal,
)
from repro.resilience.supervisor import SupervisedRunner, SupervisionPolicy

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "probe_writable",
    "sha256_hex",
    "FaultPlan",
    "InjectedFault",
    "CampaignJournal",
    "ContinuousJournal",
    "campaign_result_to_dict",
    "campaign_result_from_dict",
    "reset_journal",
    "SupervisedRunner",
    "SupervisionPolicy",
]
