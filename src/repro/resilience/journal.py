"""Durable campaign journal: crash-safe progress + exact resume.

Long campaigns die — machines reboot, schedulers preempt, operators
Ctrl-C. This module makes campaign progress durable so an interrupted
run resumes exactly where it stopped and finishes **byte-identical** to
an uninterrupted one.

Design (see ``docs/ROBUSTNESS.md`` for the operator view):

- **Write-ahead journal** — one append-only JSON-lines file. Every
  record carries a SHA-256 checksum over its canonical JSON; appends are
  flushed and fsynced before the campaign proceeds. On open, a torn or
  corrupt *final* line (the signature of a crash mid-append) is silently
  truncated; corruption anywhere earlier is refused with a
  :class:`~repro.errors.JournalError` — a journal never lies quietly.
- **Atomic checkpoints** — after each completed unit of work (a CTI for
  campaigns, a kernel version for continuous testing) the full resumable
  state is written to a checksummed sidecar file via temp+fsync+rename.
  The checkpoint is the *commit point*: on resume, a journal record with
  no matching checkpoint (crash between append and checkpoint) is
  dropped and that unit of work is redone deterministically.
- **Audit digests** — each journal record carries digests of the
  execution results (and, for MLPCT, of the scored predictions) that
  produced it, so divergence between a resumed run and its journal is
  detectable evidence rather than a silent franken-run.

One journal file can hold several campaigns (the CLI journals the PCT
baseline and the MLPCT run side by side); records are namespaced by the
campaign label, and each label gets its own checkpoint sidecar.
"""

from __future__ import annotations

import json
import os
import re
from typing import IO, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.errors import CheckpointError, JournalError
from repro.resilience.atomic import (
    atomic_write_text,
    canonical_json,
    fsync_directory,
    sha256_hex,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "CampaignJournal",
    "ContinuousJournal",
    "JournalFile",
    "campaign_result_to_dict",
    "campaign_result_from_dict",
    "stats_to_dict",
    "stats_from_dict",
    "result_digest",
    "fold_prediction_digest",
    "read_journal_tolerant",
    "reset_journal",
]

JOURNAL_SCHEMA = 1


# -- digests ------------------------------------------------------------------


def result_digest(result) -> str:
    """Stable digest of one :class:`~repro.execution.trace
    .ConcurrentResult` (everything campaign accounting consumes)."""
    payload = {
        "covered": [
            sorted(result.covered_blocks[0]),
            sorted(result.covered_blocks[1]),
        ],
        "accesses": len(result.accesses),
        "bugs": [
            [event.step, event.thread, event.iid, event.block_id, event.kind]
            for event in result.bug_events
        ],
        "switches": result.num_switches,
        "hints_enforced": result.hints_enforced,
        "steps": result.steps,
        "completed": result.completed,
        "failure": result.failure,
    }
    return sha256_hex(canonical_json(payload))


def fold_prediction_digest(digest: str, proba, predicted) -> str:
    """Fold one scored prediction into a running digest.

    Either field may be ``None``: the engine materialises only what the
    consumer asked for (strategies consume boolean predictions, rankers
    consume probabilities).
    """
    if predicted is None:
        bits = "-"
    else:
        bits = "".join("1" if bool(flag) else "0" for flag in predicted)
    if proba is None:
        total_text = "-"
    else:
        try:
            total = float(proba)
        except TypeError:
            total = float(sum(float(p) for p in proba))
        total_text = f"{total:.12e}"
    return sha256_hex(f"{digest}|{total_text}|{bits}")


# -- serialization of campaign artefacts --------------------------------------
# Core types are imported lazily: repro.core.mlpct imports this package
# at module load, so a top-level import here would be circular.


def stats_to_dict(stats) -> Dict[str, object]:
    return {
        "executions": stats.executions,
        "inferences": stats.inferences,
        "new_races": stats.new_races,
        "new_blocks": stats.new_blocks,
        "manifested_bugs": sorted(stats.manifested_bugs),
    }


def stats_from_dict(payload: Dict[str, object]):
    from repro.core.mlpct import ExplorationStats

    return ExplorationStats(
        executions=int(payload["executions"]),
        inferences=int(payload["inferences"]),
        new_races=int(payload["new_races"]),
        new_blocks=int(payload["new_blocks"]),
        manifested_bugs=set(payload["manifested_bugs"]),
    )


def campaign_result_to_dict(result) -> Dict[str, object]:
    """Full JSON form of a :class:`~repro.core.mlpct.CampaignResult`.

    Exact: floats survive the JSON round-trip bit-for-bit, so two
    results are byte-identical iff their canonical JSON forms are.
    """
    ledger = result.ledger
    payload = {
        "label": result.label,
        "history": [list(point) for point in result.history],
        "ledger": {
            "startup_hours": ledger.startup_hours,
            "executions": ledger.executions,
            "inferences": ledger.inferences,
            "cost_model": {
                "execution_seconds": ledger.model.execution_seconds,
                "inference_seconds": ledger.model.inference_seconds,
                "training_step_seconds": ledger.model.training_step_seconds,
            },
        },
        "manifested_bugs": sorted(result.manifested_bugs),
        "bug_history": [list(point) for point in result.bug_history],
        "per_cti": [stats_to_dict(stats) for stats in result.per_cti],
        "resilience": result.resilience,
    }
    # Serialized only when present: results from campaigns that never saw
    # a model swap stay byte-identical to the historical form.
    if getattr(result, "swaps", None):
        payload["swaps"] = [dict(swap) for swap in result.swaps]
    return payload


def campaign_result_from_dict(payload: Dict[str, object]):
    from repro.core.costs import CostLedger, CostModel
    from repro.core.mlpct import CampaignResult

    ledger_payload = payload["ledger"]
    ledger = CostLedger(
        model=CostModel(**ledger_payload["cost_model"]),
        startup_hours=float(ledger_payload["startup_hours"]),
        executions=int(ledger_payload["executions"]),
        inferences=int(ledger_payload["inferences"]),
    )
    return CampaignResult(
        label=payload["label"],
        history=[tuple(point) for point in payload["history"]],
        ledger=ledger,
        manifested_bugs=set(payload["manifested_bugs"]),
        bug_history=[tuple(point) for point in payload["bug_history"]],
        per_cti=[stats_from_dict(stats) for stats in payload["per_cti"]],
        resilience=payload.get("resilience"),
        swaps=[dict(swap) for swap in payload.get("swaps", [])],
    )


def outcome_to_dict(outcome) -> Dict[str, object]:
    return {
        "version": outcome.version,
        "model_name": outcome.model_name,
        "startup_hours": outcome.startup_hours,
        "campaign": campaign_result_to_dict(outcome.campaign),
    }


def outcome_from_dict(payload: Dict[str, object]):
    from repro.core.continuous import VersionOutcome

    return VersionOutcome(
        version=payload["version"],
        model_name=payload["model_name"],
        startup_hours=float(payload["startup_hours"]),
        campaign=campaign_result_from_dict(payload["campaign"]),
    )


def _snowcat_config_from_dict(payload: Dict[str, object]):
    from repro.core.costs import CostModel
    from repro.core.mlpct import ExplorationConfig
    from repro.core.snowcat import SnowcatConfig
    from repro.resilience.supervisor import SupervisionPolicy

    data = dict(payload)
    exploration = dict(data["exploration"])
    if exploration.get("supervision") is not None:
        exploration["supervision"] = SupervisionPolicy(
            **exploration["supervision"]
        )
    data["exploration"] = ExplorationConfig(**exploration)
    data["costs"] = CostModel(**data["costs"])
    return SnowcatConfig(**data)


# -- record framing -----------------------------------------------------------


def _sealed(record: Dict[str, object]) -> Dict[str, object]:
    sealed = dict(record)
    sealed["sum"] = sha256_hex(canonical_json(record))
    return sealed


def _verify(record) -> Optional[Dict[str, object]]:
    if not isinstance(record, dict) or "sum" not in record:
        return None
    body = {key: value for key, value in record.items() if key != "sum"}
    if sha256_hex(canonical_json(body)) != record["sum"]:
        return None
    return body


class _JournalFile:
    """One append-only JSON-lines journal with per-record checksums.

    Write-ahead semantics: every append is flushed and fsynced before
    the caller proceeds. On open, a torn or corrupt *final* line is
    discarded and the file truncated back to its valid prefix (that is
    what a crash mid-append leaves behind); corruption anywhere earlier
    means the journal cannot be trusted and is refused.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self.records: List[Dict[str, object]] = self._load()
        self._handle: IO[bytes] = open(self.path, "ab")

    def _load(self) -> List[Dict[str, object]]:
        if not os.path.exists(self.path):
            return []
        with open(self.path, "rb") as handle:
            data = handle.read()
        lines = data.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        records: List[Dict[str, object]] = []
        valid_bytes = 0
        for position, line in enumerate(lines):
            try:
                body = _verify(json.loads(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError):
                body = None
            if body is None:
                if position == len(lines) - 1:
                    break  # torn tail from a crash mid-append: discard
                raise JournalError(
                    f"corrupt journal record at line {position + 1} of "
                    f"{self.path}"
                )
            records.append(body)
            valid_bytes += len(line) + 1
        if valid_bytes != len(data):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        return records

    def append(self, record: Dict[str, object]) -> None:
        line = canonical_json(_sealed(record)) + "\n"
        self._handle.write(line.encode("utf-8"))
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records.append(record)

    def rewrite(self, records: List[Dict[str, object]]) -> None:
        """Atomically replace the whole file (dropping uncommitted tails)."""
        self._handle.close()
        text = "".join(canonical_json(_sealed(r)) + "\n" for r in records)
        atomic_write_text(self.path, text)
        self.records = list(records)
        self._handle = open(self.path, "ab")

    def close(self) -> None:
        self._handle.close()


#: Public alias — consumers outside this package (the learn label store)
#: reuse the checksummed append-only file without reaching for a private
#: name.
JournalFile = _JournalFile


def read_journal_tolerant(path: str) -> Tuple[List[Dict[str, object]], bool]:
    """Read a journal's valid prefix **without mutating the file**.

    Unlike opening a :class:`JournalFile` (which truncates a torn tail in
    place), this is safe against a journal another process is actively
    appending to: a half-written final line is simply not returned yet.
    Returns ``(records, torn)`` where ``torn`` reports whether a torn or
    corrupt final line was skipped. Corruption before the final line
    still raises :class:`~repro.errors.JournalError`.
    """
    if not os.path.exists(path):
        return [], False
    with open(path, "rb") as handle:
        data = handle.read()
    lines = data.split(b"\n")
    if lines and lines[-1] == b"":
        lines.pop()
    records: List[Dict[str, object]] = []
    torn = False
    for position, line in enumerate(lines):
        try:
            body = _verify(json.loads(line.decode("utf-8")))
        except (ValueError, UnicodeDecodeError):
            body = None
        if body is None:
            if position == len(lines) - 1:
                torn = True
                break
            raise JournalError(
                f"corrupt journal record at line {position + 1} of {path}"
            )
        records.append(body)
    return records, torn


# -- checkpoints --------------------------------------------------------------


def _write_checkpoint(path: str, body: Dict[str, object]) -> None:
    payload = dict(body)
    payload["checksum"] = sha256_hex(canonical_json(body))
    atomic_write_text(path, json.dumps(payload, sort_keys=True))


def _read_checkpoint(path: str) -> Dict[str, object]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise CheckpointError(
            f"cannot read checkpoint {path!r}: {error}"
        ) from None
    if not isinstance(payload, dict) or "checksum" not in payload:
        raise CheckpointError(f"checkpoint {path!r} has no checksum")
    checksum = payload.pop("checksum")
    if sha256_hex(canonical_json(payload)) != checksum:
        raise CheckpointError(
            f"checkpoint {path!r} failed checksum verification "
            "(corrupt or truncated)"
        )
    return payload


def _sanitize(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]+", "_", label)


def _cti_stream_digest(ctis) -> str:
    # ":".join over the entries keeps two-thread digests byte-identical
    # to the historical "a:b" format while covering N-entry CTIs.
    return sha256_hex(
        ",".join(
            ":".join(str(entry.sti.sti_id) for entry in cti) for cti in ctis
        )
    )


# -- campaign journal ---------------------------------------------------------


class CampaignJournal:
    """Durable journal + resume for :func:`repro.core.mlpct.run_campaign`.

    Auto-resumes: constructing one over an existing journal file picks
    up whatever progress it holds; :meth:`prepare` validates that the
    resuming campaign matches the journaled one (label, seed, CTI
    stream) and restores the explorer's full state from the checkpoint.
    Use :func:`reset_journal` first to start over.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = _JournalFile(self.path)

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._file.records)

    def checkpoint_path(self, label: str) -> str:
        return f"{self.path}.{_sanitize(label)}.ckpt"

    def _label_records(self, label: str, kind: str) -> List[Dict[str, object]]:
        return [
            record
            for record in self._file.records
            if record.get("c") == label and record.get("kind") == kind
        ]

    def prepare(self, explorer, ctis) -> Tuple[List[object], int]:
        """Validate/initialise the journal for ``explorer`` over ``ctis``.

        Returns ``(restored per-CTI stats, first CTI index to explore)``
        and, when resuming, loads the checkpointed state into the
        explorer. Raises :class:`~repro.errors.JournalError` if the
        journal belongs to a different campaign, and
        :class:`~repro.errors.CheckpointError` if the checkpoint sidecar
        is corrupt.
        """
        label = explorer.label
        digest = _cti_stream_digest(ctis)
        headers = self._label_records(label, "header")
        if not headers:
            if self._label_records(label, "cti"):
                raise JournalError(
                    f"journal {self.path!r} holds CTI records for {label!r} "
                    "but no header"
                )
            self._file.append(
                {
                    "c": label,
                    "kind": "header",
                    "schema": JOURNAL_SCHEMA,
                    "seed": explorer.seed,
                    "num_ctis": len(ctis),
                    "ctis": digest,
                }
            )
            return [], 0
        if len(headers) > 1:
            raise JournalError(
                f"journal {self.path!r} holds duplicate headers for "
                f"campaign {label!r}"
            )
        header = headers[0]
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path!r} has schema {header.get('schema')}, "
                f"this build reads schema {JOURNAL_SCHEMA}"
            )
        if (
            header.get("seed") != explorer.seed
            or header.get("num_ctis") != len(ctis)
            or header.get("ctis") != digest
        ):
            raise JournalError(
                f"journal {self.path!r} was written by a different campaign "
                f"(seed or CTI stream mismatch for {label!r}); refusing to "
                "resume"
            )
        cti_records = self._label_records(label, "cti")
        for expected, record in enumerate(cti_records):
            if record.get("index") != expected:
                raise JournalError(
                    f"journal {self.path!r} has out-of-order CTI records "
                    f"for {label!r}"
                )
        completed = 0
        state = None
        ckpt_path = self.checkpoint_path(label)
        if os.path.exists(ckpt_path):
            ckpt = _read_checkpoint(ckpt_path)
            if ckpt.get("schema") != JOURNAL_SCHEMA or ckpt.get("label") != label:
                raise JournalError(
                    f"checkpoint {ckpt_path!r} does not belong to campaign "
                    f"{label!r}"
                )
            completed = int(ckpt["cti_index"]) + 1
            state = ckpt["state"]
        if len(cti_records) < completed:
            raise JournalError(
                f"journal {self.path!r} is behind its checkpoint for "
                f"{label!r} ({len(cti_records)} records, {completed} "
                "checkpointed CTIs)"
            )
        if len(cti_records) > completed:
            # The crash fell between the journal append and the
            # checkpoint. The checkpoint is the commit point, so the
            # surplus records are uncommitted: drop them and redo those
            # CTIs (deterministic, so the outcome is unchanged).
            self._drop_uncommitted(label, completed)
            cti_records = cti_records[:completed]
        if state is not None:
            explorer.load_state(state)
        obs.point("resilience.resumed", label=label, completed=completed)
        return [stats_from_dict(record["stats"]) for record in cti_records], completed

    def _drop_uncommitted(self, label: str, keep: int) -> None:
        kept: List[Dict[str, object]] = []
        seen = 0
        for record in self._file.records:
            if record.get("c") == label and record.get("kind") == "cti":
                if seen >= keep:
                    continue
                seen += 1
            kept.append(record)
        self._file.rewrite(kept)

    def record_cti(
        self,
        explorer,
        index: int,
        stats,
        audit: Optional[Dict[str, object]] = None,
        state: Optional[Dict[str, object]] = None,
    ) -> None:
        """Commit one completed CTI: journal record, then checkpoint.

        ``audit`` and ``state`` override the explorer's own audit slot
        and live ``state_dict()``. The fleet coordinator needs both: it
        keeps one audit record per in-flight CTI, and its selection
        pipeline may run ahead of the accounting fold, so the
        checkpointed state is composed to be exactly what a sequential
        run would have snapshot after this CTI.
        """
        label = explorer.label
        if audit is None:
            audit = explorer.end_audit()
        results = audit["results"]
        record: Dict[str, object] = {
            "c": label,
            "kind": "cti",
            "index": index,
            "stats": stats_to_dict(stats),
            "audit": {
                "executed": len(results),
                "results_digest": sha256_hex("".join(results)),
                "scored": audit["scored"],
                "scored_digest": audit["scored_digest"],
            },
        }
        # Opt-in label capture for the continuous-learning tailer: when
        # the explorer buffered executed-CT coverage labels, drain them
        # into this record. The field is omitted entirely when capture
        # is off, keeping journal bytes unchanged.
        drain = getattr(explorer, "drain_captured_labels", None)
        if drain is not None:
            labels = drain()
            if labels:
                record["labels"] = labels
        self._file.append(record)
        _write_checkpoint(
            self.checkpoint_path(label),
            {
                "schema": JOURNAL_SCHEMA,
                "label": label,
                "cti_index": index,
                "state": explorer.state_dict() if state is None else state,
            },
        )

    def close(self) -> None:
        self._file.close()


# -- continuous-testing journal -----------------------------------------------


class ContinuousJournal:
    """Durable journal + resume for :func:`repro.core.continuous
    .run_continuous`.

    The unit of work is one kernel version. The checkpoint carries
    everything the next version's policy decision needs: the completed
    outcomes (in the journal), and — when a model exists — the trained
    deployment's config, vocabulary, accumulated startup hours, and the
    model itself (a checksummed sidecar ``.npz``). A version interrupted
    mid-flight is simply redone; every stage is deterministic.
    """

    LABEL = "continuous"

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._file = _JournalFile(self.path)

    @property
    def records(self) -> List[Dict[str, object]]:
        return list(self._file.records)

    def checkpoint_path(self) -> str:
        return f"{self.path}.{self.LABEL}.ckpt"

    def model_path(self, index: int) -> str:
        return f"{self.path}.model.{index}.npz"

    def _records_of(self, kind: str) -> List[Dict[str, object]]:
        return [
            record
            for record in self._file.records
            if record.get("c") == self.LABEL and record.get("kind") == kind
        ]

    def prepare(self, versions, config) -> Tuple[List[object], int, object]:
        """Returns ``(restored outcomes, first version index, restored
        Snowcat deployment or None)``."""
        from dataclasses import asdict

        versions_digest = sha256_hex(
            ",".join(kernel.version for kernel in versions)
        )
        config_digest = sha256_hex(canonical_json(asdict(config)))
        headers = self._records_of("header")
        if not headers:
            if self._records_of("version"):
                raise JournalError(
                    f"journal {self.path!r} holds version records but no "
                    "header"
                )
            self._file.append(
                {
                    "c": self.LABEL,
                    "kind": "header",
                    "schema": JOURNAL_SCHEMA,
                    "policy": config.policy,
                    "num_versions": len(versions),
                    "versions": versions_digest,
                    "config": config_digest,
                }
            )
            return [], 0, None
        if len(headers) > 1:
            raise JournalError(
                f"journal {self.path!r} holds duplicate continuous headers"
            )
        header = headers[0]
        if header.get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path!r} has schema {header.get('schema')}, "
                f"this build reads schema {JOURNAL_SCHEMA}"
            )
        if (
            header.get("policy") != config.policy
            or header.get("num_versions") != len(versions)
            or header.get("versions") != versions_digest
            or header.get("config") != config_digest
        ):
            raise JournalError(
                f"journal {self.path!r} was written by a different "
                "continuous run (policy, version stream, or config "
                "mismatch); refusing to resume"
            )
        version_records = self._records_of("version")
        for expected, record in enumerate(version_records):
            if record.get("index") != expected:
                raise JournalError(
                    f"journal {self.path!r} has out-of-order version records"
                )
        completed = 0
        state = None
        ckpt_path = self.checkpoint_path()
        if os.path.exists(ckpt_path):
            ckpt = _read_checkpoint(ckpt_path)
            if (
                ckpt.get("schema") != JOURNAL_SCHEMA
                or ckpt.get("label") != self.LABEL
            ):
                raise JournalError(
                    f"checkpoint {ckpt_path!r} does not belong to this "
                    "continuous run"
                )
            completed = int(ckpt["version_index"]) + 1
            state = ckpt["state"]
        if len(version_records) < completed:
            raise JournalError(
                f"journal {self.path!r} is behind its checkpoint "
                f"({len(version_records)} records, {completed} checkpointed "
                "versions)"
            )
        if len(version_records) > completed:
            self._drop_uncommitted(completed)
            version_records = version_records[:completed]
        current = (
            self._restore_current(state, versions) if state is not None else None
        )
        obs.point(
            "resilience.resumed", label=self.LABEL, completed=completed
        )
        outcomes = [
            outcome_from_dict(record["outcome"]) for record in version_records
        ]
        return outcomes, completed, current

    def _drop_uncommitted(self, keep: int) -> None:
        kept: List[Dict[str, object]] = []
        seen = 0
        for record in self._file.records:
            if record.get("c") == self.LABEL and record.get("kind") == "version":
                if seen >= keep:
                    continue
                seen += 1
            kept.append(record)
        self._file.rewrite(kept)

    def _restore_current(self, state: Dict[str, object], versions):
        payload = state.get("current")
        if payload is None:
            return None
        from repro.core.snowcat import Snowcat
        from repro.graphs.dataset import GraphDatasetBuilder
        from repro.graphs.tokens import Vocabulary
        from repro.ml.pic import PICModel

        cfg = _snowcat_config_from_dict(payload["snowcat_config"])
        version = payload["trained_version"]
        kernel = next(
            (k for k in versions if k.version == version), None
        )
        if kernel is None:
            raise JournalError(
                f"journal {self.path!r} references kernel version "
                f"{version!r}, absent from the supplied version stream"
            )
        model_path = os.path.join(
            os.path.dirname(self.path) or ".", payload["model_path"]
        )
        try:
            with open(model_path, "rb") as handle:
                model_bytes = handle.read()
        except OSError as error:
            raise CheckpointError(
                f"cannot read model checkpoint {model_path!r}: {error}"
            ) from None
        if sha256_hex(model_bytes) != payload["model_checksum"]:
            raise CheckpointError(
                f"model checkpoint {model_path!r} failed checksum "
                "verification (corrupt or truncated)"
            )
        deployment = Snowcat(kernel, cfg)
        vocabulary = Vocabulary(
            token_to_id={
                token: index
                for index, token in enumerate(payload["vocabulary"])
            }
        )
        deployment.graphs = GraphDatasetBuilder(
            kernel, seed=cfg.seed, vocabulary=vocabulary
        )
        deployment.startup_hours = float(payload["startup_hours"])
        deployment.model = PICModel.load(model_path)
        return deployment

    def record_version(self, position: int, outcome, current) -> None:
        """Commit one completed version: journal record, then checkpoint
        (including the trained model, when one exists)."""
        from dataclasses import asdict

        self._file.append(
            {
                "c": self.LABEL,
                "kind": "version",
                "index": position,
                "outcome": outcome_to_dict(outcome),
            }
        )
        state: Dict[str, object] = {"current": None}
        if current is not None:
            model_path = self.model_path(position)
            current.require_model().save(model_path)
            with open(model_path, "rb") as handle:
                model_checksum = sha256_hex(handle.read())
            vocabulary = current.graphs.vocabulary
            tokens = sorted(
                vocabulary.token_to_id, key=vocabulary.token_to_id.get
            )
            state["current"] = {
                "snowcat_config": asdict(current.config),
                "trained_version": current.kernel.version,
                "startup_hours": current.startup_hours,
                "vocabulary": tokens,
                "model_path": os.path.basename(model_path),
                "model_checksum": model_checksum,
            }
        _write_checkpoint(
            self.checkpoint_path(),
            {
                "schema": JOURNAL_SCHEMA,
                "label": self.LABEL,
                "version_index": position,
                "state": state,
            },
        )

    def close(self) -> None:
        self._file.close()


def reset_journal(path: str) -> None:
    """Remove a journal and all its sidecars (checkpoints, saved models)."""
    path = str(path)
    directory = os.path.dirname(path) or "."
    prefix = os.path.basename(path) + "."
    if os.path.exists(path):
        os.unlink(path)
    try:
        entries = os.listdir(directory)
    except OSError:
        return
    for entry in entries:
        if entry.startswith(prefix) and (
            entry.endswith(".ckpt") or entry.endswith(".npz")
        ):
            try:
                os.unlink(os.path.join(directory, entry))
            except OSError:  # pragma: no cover - racing deletion
                pass
    fsync_directory(path)
