"""Supervised CT execution: timeouts, retries, quarantine, fallback.

The plain runners in :mod:`repro.execution.parallel` assume a healthy
substrate: a hung or dying worker stalls ``Pool.map`` forever. Real
kernel concurrency testers cannot assume that — executions of a buggy
kernel routinely wedge the worker VM — so this module supervises every
dynamic execution:

- **per-CT wall-clock timeouts** — a worker that exceeds the deadline is
  killed and replaced, and the CT is retried;
- **bounded retries with deterministic backoff accounting** — failed
  attempts are retried up to ``max_retries`` times; the exponential
  backoff a production system would sleep is *accounted* (counters and
  the ``resilience.backoff_seconds`` histogram) rather than slept, so
  tests stay fast and results stay deterministic;
- **quarantine** — a CT that keeps failing is recorded as a
  failed-but-counted result (``failure="quarantined"``) instead of
  wedging the campaign;
- **pool→serial fallback** — after more than ``max_worker_deaths``
  worker deaths the supervisor stops trusting process isolation and runs
  the remaining CTs in-process.

Every event is counted in :mod:`repro.obs` metrics (``resilience.retries``,
``resilience.timeouts``, ``resilience.quarantined``,
``resilience.fallbacks``, ``resilience.worker_deaths``) and mirrored on
the runner instance for the campaign's run report.

With ``workers > 0`` the supervisor manages its own pool of pipe-fed
worker processes (the supervised counterpart of
:class:`~repro.execution.parallel.ProcessPoolCTRunner` — ``Pool.map``
offers no per-task deadline or death detection). Results are returned in
task order and, absent injected or real faults, are byte-identical to
the serial runner's: each CT is the same pure function of its task.

Fault injection (:mod:`repro.resilience.faults`) plugs in here: injected
worker crashes and hangs are *real* in pool mode (``os._exit`` in the
worker, a sleep past the deadline) and simulated in serial mode, so one
fault plan drives both unit tests and soak runs.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, replace
from multiprocessing import connection as mp_connection
from typing import Deque, Dict, List, Optional, Sequence

import multiprocessing

from repro import obs
from repro.errors import ExecutionError, ReproError
from repro.execution.parallel import CTTask, _run_task
from repro.execution.trace import ConcurrentResult
from repro.kernel.code import Kernel
from repro.resilience.faults import FaultPlan

__all__ = ["SupervisionPolicy", "SupervisedRunner"]

#: How long an injected hang sleeps inside a worker; the parent's
#: deadline fires long before this, and the worker is killed.
_WORKER_HANG_SLEEP_SECONDS = 600.0

#: Exit status of an abrupt campaign-process death (``die`` faults);
#: matches the shell's status for a SIGKILLed process.
DIE_EXIT_STATUS = 137


@dataclass(frozen=True)
class SupervisionPolicy:
    """Knobs of supervised execution."""

    #: Per-CT wall-clock deadline (pool mode; injected hangs in serial
    #: mode time out immediately, without waiting).
    timeout_seconds: float = 30.0
    #: Failed attempts are retried up to this many times before the CT
    #: is quarantined.
    max_retries: int = 2
    #: Base of the exponential backoff *accounted* per retry
    #: (``backoff_seconds * 2**attempt``); never actually slept.
    backoff_seconds: float = 0.5
    #: Worker deaths tolerated before falling back to serial execution.
    max_worker_deaths: int = 3


@dataclass(frozen=True)
class _Job:
    """One CT execution attempt in flight."""

    pos: int  # position in this run_many batch
    task: CTTask
    index: int  # campaign-global task index (fault-plan key)
    attempt: int = 0


def _quarantined_result(task: CTTask) -> ConcurrentResult:
    """The failed-but-counted result recorded for a poison CT."""
    return ConcurrentResult(
        covered_blocks=tuple(set() for _ in task.programs),
        completed=False,
        failure="quarantined",
    )


def _supervised_worker_main(conn, kernel: Kernel) -> None:
    """Worker loop: receive ``(task, fault_kind)``, reply with the result.

    A registry inherited across fork would interleave telemetry writes
    with the parent, so workers run with telemetry off; the parent
    re-emits execution counters from collected results.
    """
    obs.clear_registry()
    try:
        while True:
            try:
                message = conn.recv()
            except EOFError:
                return
            if message is None:
                return
            task, fault_kind = message
            if fault_kind == "crash":
                os._exit(13)
            if fault_kind == "hang":
                time.sleep(_WORKER_HANG_SLEEP_SECONDS)
                conn.send(("error", "injected hang outlived its sleep"))
                continue
            if fault_kind == "transient":
                conn.send(("error", "injected transient fault"))
                continue
            try:
                result = _run_task(kernel, task)
            except ReproError as error:
                conn.send(("error", f"{type(error).__name__}: {error}"))
            else:
                conn.send(("ok", result))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent died
        return


class _WorkerHandle:
    """One supervised worker process and its command pipe."""

    def __init__(self, context, kernel: Kernel) -> None:
        parent_conn, child_conn = context.Pipe()
        self.process = context.Process(
            target=_supervised_worker_main,
            args=(child_conn, kernel),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.job: Optional[_Job] = None
        self.deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return self.job is None

    def dispatch(self, job: _Job, fault_kind: Optional[str], timeout: float) -> None:
        self.job = job
        self.deadline = time.monotonic() + timeout
        self.conn.send((job.task, fault_kind))

    def take_job(self) -> Optional[_Job]:
        job, self.job, self.deadline = self.job, None, None
        return job

    def kill(self) -> None:
        """Terminate immediately (hung or untrusted worker)."""
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join()

    def stop(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.conn.send(None)
            self.conn.close()
        except (OSError, BrokenPipeError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck worker
            self.process.terminate()
            self.process.join()


class SupervisedRunner:
    """Supervised counterpart of the plain CT runners.

    Satisfies the same ``run_many(kernel, tasks) -> results in task
    order`` contract, adding the timeout/retry/quarantine/fallback
    behaviour described in the module docstring. Carries its own
    counters (:attr:`retries`, :attr:`timeouts`, :attr:`quarantined`,
    :attr:`fallbacks`, :attr:`worker_deaths`, :attr:`backoff_seconds`)
    and supports :meth:`state_dict`/:meth:`load_state` so a resumed
    campaign continues fault-plan positions and accounting exactly.
    """

    def __init__(
        self,
        workers: int,
        policy: Optional[SupervisionPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.workers = max(0, int(workers))
        self.policy = policy or SupervisionPolicy()
        self.plan = fault_plan
        self.retries = 0
        self.timeouts = 0
        self.quarantined = 0
        self.worker_deaths = 0
        self.fallbacks = 0
        self.backoff_seconds = 0.0
        self._next_index = 0
        self._fallback = False
        self._pool: List[_WorkerHandle] = []
        self._pool_kernel: Optional[Kernel] = None

    # -- lifecycle -----------------------------------------------------------

    def _context(self):
        # fork shares the kernel pages copy-on-write; fall back where the
        # platform does not offer it (e.g. Windows spawn-only).
        try:
            return multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - platform-dependent
            return multiprocessing.get_context()

    def _ensure_pool(self, kernel: Kernel) -> None:
        if self._pool and self._pool_kernel is not kernel:
            self._shutdown_pool()
        if not self._pool:
            context = self._context()
            self._pool = [
                _WorkerHandle(context, kernel) for _ in range(self.workers)
            ]
            self._pool_kernel = kernel

    def _shutdown_pool(self, graceful: bool = True) -> None:
        for worker in self._pool:
            if graceful and worker.idle:
                worker.stop()
            else:
                worker.kill()
        self._pool = []
        self._pool_kernel = None

    def close(self) -> None:
        self._shutdown_pool()

    # -- persistence (campaign journal) --------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {
            "next_index": self._next_index,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "worker_deaths": self.worker_deaths,
            "fallbacks": self.fallbacks,
            "backoff_seconds": self.backoff_seconds,
            "fallback_engaged": self._fallback,
        }

    def load_state(self, state: Dict[str, object]) -> None:
        self._next_index = int(state["next_index"])
        self.retries = int(state["retries"])
        self.timeouts = int(state["timeouts"])
        self.quarantined = int(state["quarantined"])
        self.worker_deaths = int(state["worker_deaths"])
        self.fallbacks = int(state["fallbacks"])
        self.backoff_seconds = float(state["backoff_seconds"])
        self._fallback = bool(state["fallback_engaged"])

    def summary(self) -> Dict[str, float]:
        """Counters for the campaign's run report."""
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "quarantined": self.quarantined,
            "worker_deaths": self.worker_deaths,
            "fallbacks": self.fallbacks,
            "backoff_seconds": self.backoff_seconds,
        }

    # -- execution -----------------------------------------------------------

    def run_many(
        self, kernel: Kernel, tasks: Sequence[CTTask]
    ) -> List[ConcurrentResult]:
        if not tasks:
            return []
        jobs = [
            _Job(pos=pos, task=task, index=self._next_index + pos)
            for pos, task in enumerate(tasks)
        ]
        self._next_index += len(tasks)
        results: List[Optional[ConcurrentResult]] = [None] * len(tasks)
        if self.workers <= 0 or self._fallback:
            for job in jobs:
                results[job.pos] = self._run_serial_job(kernel, job)
        else:
            self._run_pool(kernel, deque(jobs), results)
            self._reemit_counters(results)
        return results  # type: ignore[return-value]

    def _maybe_die(self, job: _Job) -> None:
        if (
            job.attempt == 0
            and self.plan is not None
            and self.plan.should_die(job.index)
        ):
            # Abrupt process death (no cleanup, no flushing): what a
            # SIGKILL mid-campaign looks like to the journal.
            os._exit(DIE_EXIT_STATUS)

    def _fault_kind(self, job: _Job) -> Optional[str]:
        if self.plan is None:
            return None
        fault = self.plan.fault_for(job.index, job.attempt)
        return fault.kind if fault is not None else None

    # -- failure bookkeeping (shared by serial and pool paths) ---------------

    def _account_retry(self, job: _Job) -> _Job:
        self.retries += 1
        obs.add("resilience.retries")
        delay = self.policy.backoff_seconds * (2**job.attempt)
        self.backoff_seconds += delay
        obs.observe("resilience.backoff_seconds", delay)
        return replace(job, attempt=job.attempt + 1)

    def _account_quarantine(self, job: _Job) -> ConcurrentResult:
        self.quarantined += 1
        obs.add("resilience.quarantined")
        return _quarantined_result(job.task)

    def _account_timeout(self) -> None:
        self.timeouts += 1
        obs.add("resilience.timeouts")

    def _account_worker_death(self) -> None:
        self.worker_deaths += 1
        obs.add("resilience.worker_deaths")

    def _engage_fallback_if_due(self) -> None:
        if not self._fallback and self.worker_deaths > self.policy.max_worker_deaths:
            self._fallback = True
            self.fallbacks += 1
            obs.add("resilience.fallbacks")

    # -- serial path ---------------------------------------------------------

    def _run_serial_job(self, kernel: Kernel, job: _Job) -> ConcurrentResult:
        while True:
            self._maybe_die(job)
            fault_kind = self._fault_kind(job)
            if fault_kind is None:
                try:
                    result = _run_task(kernel, job.task)
                except ExecutionError:
                    pass  # transient framework failure: retry below
                else:
                    if result.hung:
                        obs.add("execution.hangs")
                    return result
            elif fault_kind == "crash":
                self._account_worker_death()
                self._engage_fallback_if_due()
            elif fault_kind == "hang":
                # No real worker to wait on: the timeout is charged
                # immediately, keeping serial soak runs fast.
                self._account_timeout()
            if job.attempt >= self.policy.max_retries:
                return self._account_quarantine(job)
            job = self._account_retry(job)

    # -- pool path -----------------------------------------------------------

    def _run_pool(
        self,
        kernel: Kernel,
        pending: Deque[_Job],
        results: List[Optional[ConcurrentResult]],
    ) -> None:
        self._ensure_pool(kernel)
        while pending or any(not worker.idle for worker in self._pool):
            if self._fallback:
                # Process isolation is no longer trusted: reclaim the
                # in-flight jobs and finish everything in-process.
                for worker in self._pool:
                    job = worker.take_job()
                    if job is not None:
                        pending.appendleft(job)
                self._shutdown_pool(graceful=False)
                while pending:
                    job = pending.popleft()
                    results[job.pos] = self._run_serial_job(kernel, job)
                return
            for worker in self._pool:
                if worker.idle and pending:
                    job = pending.popleft()
                    self._maybe_die(job)
                    worker.dispatch(
                        job, self._fault_kind(job), self.policy.timeout_seconds
                    )
            busy = [worker for worker in self._pool if not worker.idle]
            if not busy:  # pragma: no cover - loop condition guards this
                continue
            now = time.monotonic()
            next_deadline = min(worker.deadline for worker in busy)
            ready = mp_connection.wait(
                [worker.conn for worker in busy],
                timeout=max(0.0, min(next_deadline - now, 0.25)),
            )
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                job = worker.job
                try:
                    status, payload = worker.conn.recv()
                except (EOFError, OSError):
                    # The worker died mid-task (a real crash).
                    worker.take_job()
                    self._account_worker_death()
                    self._engage_fallback_if_due()
                    self._replace_worker(kernel, worker)
                    self._finish_failed(job, pending, results)
                    continue
                worker.take_job()
                if status == "ok":
                    results[job.pos] = payload
                else:
                    self._finish_failed(job, pending, results)
            # Enforce deadlines on whoever is still busy.
            now = time.monotonic()
            for worker in self._pool:
                if worker.job is not None and now >= worker.deadline:
                    job = worker.take_job()
                    self._account_timeout()
                    self._replace_worker(kernel, worker)
                    self._finish_failed(job, pending, results)

    def _finish_failed(
        self,
        job: _Job,
        pending: Deque[_Job],
        results: List[Optional[ConcurrentResult]],
    ) -> None:
        if job.attempt >= self.policy.max_retries:
            results[job.pos] = self._account_quarantine(job)
        else:
            pending.append(self._account_retry(job))

    def _replace_worker(self, kernel: Kernel, worker: _WorkerHandle) -> None:
        worker.kill()
        if self._fallback:
            return
        position = self._pool.index(worker)
        self._pool[position] = _WorkerHandle(self._context(), kernel)

    def _reemit_counters(self, results: Sequence[Optional[ConcurrentResult]]) -> None:
        """Workers run with telemetry off; replay their per-run counters."""
        executed = [
            r for r in results if r is not None and r.failure != "quarantined"
        ]
        if not executed:
            return
        obs.add("execution.runs", len(executed))
        obs.add("execution.steps", sum(r.steps for r in executed))
        deadlocks = sum(1 for r in executed if r.deadlocked)
        if deadlocks:
            obs.add("execution.deadlocks", deadlocks)
        hangs = sum(1 for r in executed if r.hung)
        if hangs:
            obs.add("execution.hangs", hangs)
