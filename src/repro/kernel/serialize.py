"""Kernel (de)serialization.

A generated kernel — its code, memory image, syscall table and injected
bug ground truth — can be written to a JSON document and reloaded
bit-identically. This makes testbeds shareable and pins evaluation
artefacts: a campaign result can always name the exact kernel it ran on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import KernelBuildError
from repro.kernel.bugs import BugKind, BugSpec
from repro.kernel.code import BasicBlock, Function, Kernel
from repro.kernel.isa import Instruction, Opcode, Operand
from repro.kernel.memory import MemoryImage
from repro.kernel.syscalls import SyscallSpec

__all__ = ["kernel_to_dict", "kernel_from_dict", "save_kernel", "load_kernel"]

FORMAT_VERSION = 1


def _operand_to_dict(operand: Operand) -> Dict[str, Any]:
    return {
        "kind": operand.kind,
        "reg": operand.reg,
        "imm": operand.imm,
        "addr": operand.addr,
        "label": operand.label,
        "name": operand.name,
    }


def _operand_from_dict(data: Dict[str, Any]) -> Operand:
    return Operand(
        kind=data["kind"],
        reg=data["reg"],
        imm=data["imm"],
        addr=data["addr"],
        label=data["label"],
        name=data["name"],
    )


def kernel_to_dict(kernel: Kernel) -> Dict[str, Any]:
    """Serialise a kernel to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "version": kernel.version,
        "blocks": [
            {
                "block_id": block.block_id,
                "function": block.function,
                "successors": block.successors,
                "instructions": [
                    {
                        "opcode": instruction.opcode.value,
                        "operands": [
                            _operand_to_dict(op) for op in instruction.operands
                        ],
                    }
                    for instruction in block.instructions
                ],
            }
            for block in (kernel.blocks[b] for b in sorted(kernel.blocks))
        ],
        "functions": [
            {
                "name": fn.name,
                "subsystem": fn.subsystem,
                "entry_block": fn.entry_block,
                "block_ids": fn.block_ids,
            }
            for fn in (kernel.functions[n] for n in sorted(kernel.functions))
        ],
        "syscalls": [
            {
                "name": spec.name,
                "handler": spec.handler,
                "subsystem": spec.subsystem,
                "arg_ranges": [list(r) for r in spec.arg_ranges],
            }
            for spec in (kernel.syscalls[n] for n in sorted(kernel.syscalls))
        ],
        "memory": {
            "names": dict(kernel.memory.names),
            "initial": {str(k): v for k, v in kernel.memory.initial.items()},
        },
        "locks": list(kernel.locks),
        "irq_handlers": list(kernel.irq_handlers),
        "bugs": [
            {
                "bug_id": spec.bug_id,
                "kind": spec.kind.value,
                "subsystem": spec.subsystem,
                "harmful": spec.harmful,
                "trigger_syscalls": list(spec.trigger_syscalls),
                "trigger_args": list(spec.trigger_args),
                "racing_pair": list(spec.racing_pair),
                "manifest_block": spec.manifest_block,
                "variable": spec.variable,
                "description": spec.description,
            }
            for spec in kernel.bugs
        ],
    }


def kernel_from_dict(data: Dict[str, Any]) -> Kernel:
    """Reconstruct a kernel from :func:`kernel_to_dict` output."""
    if data.get("format_version") != FORMAT_VERSION:
        raise KernelBuildError(
            f"unsupported kernel format version {data.get('format_version')!r}"
        )
    blocks: Dict[int, BasicBlock] = {}
    for raw in data["blocks"]:
        blocks[raw["block_id"]] = BasicBlock(
            block_id=raw["block_id"],
            function=raw["function"],
            successors=list(raw["successors"]),
            instructions=[
                Instruction(
                    opcode=Opcode(instr["opcode"]),
                    operands=tuple(
                        _operand_from_dict(op) for op in instr["operands"]
                    ),
                )
                for instr in raw["instructions"]
            ],
        )
    functions = {
        raw["name"]: Function(
            name=raw["name"],
            subsystem=raw["subsystem"],
            entry_block=raw["entry_block"],
            block_ids=list(raw["block_ids"]),
        )
        for raw in data["functions"]
    }
    syscalls = {
        raw["name"]: SyscallSpec(
            name=raw["name"],
            handler=raw["handler"],
            subsystem=raw["subsystem"],
            arg_ranges=tuple(tuple(r) for r in raw["arg_ranges"]),
        )
        for raw in data["syscalls"]
    }
    memory = MemoryImage(
        names=dict(data["memory"]["names"]),
        initial={int(k): v for k, v in data["memory"]["initial"].items()},
    )
    kernel = Kernel(
        version=data["version"],
        blocks=blocks,
        functions=functions,
        syscalls=syscalls,
        memory=memory,
        locks=list(data["locks"]),
        bugs=[],
        irq_handlers=list(data.get("irq_handlers", [])),
    )
    kernel.bugs = [
        BugSpec(
            bug_id=raw["bug_id"],
            kind=BugKind(raw["kind"]),
            subsystem=raw["subsystem"],
            harmful=raw["harmful"],
            trigger_syscalls=tuple(raw["trigger_syscalls"]),
            trigger_args=tuple(raw["trigger_args"]),
            racing_pair=tuple(raw["racing_pair"]),
            manifest_block=raw["manifest_block"],
            variable=raw["variable"],
            description=raw["description"],
        )
        for raw in data["bugs"]
    ]
    return kernel


def save_kernel(kernel: Kernel, path: str) -> None:
    """Write a kernel to a JSON file (atomically: temp+fsync+rename, so
    a crash mid-save never leaves a torn kernel file)."""
    from repro.resilience.atomic import atomic_write_text

    atomic_write_text(path, json.dumps(kernel_to_dict(kernel)))


def load_kernel(path: str) -> Kernel:
    """Load a kernel previously written by :func:`save_kernel`."""
    with open(path) as handle:
        return kernel_from_dict(json.load(handle))
