"""The synthetic instruction-set architecture.

The ISA is deliberately small but expressive enough to produce the
behaviours the paper's predictor must learn: loads and stores to shared
memory, branches whose outcome depends on loaded values (so a concurrent
writer flips control flow), locks, calls, and explicit bug-check
instructions that model kernel assertions / sanitizer reports.

Each instruction renders to assembly text; :func:`tokenize_instruction`
produces the token stream used by the BERT-like encoder, eliding numeric
tokens exactly as §3.2 describes ("we elide any numerical tokens, such as
register offsets, since they do not provide much useful signal").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Opcode",
    "Operand",
    "Instruction",
    "NUM_REGISTERS",
    "render_instruction",
    "tokenize_instruction",
]

#: Number of general-purpose registers per thread context.
NUM_REGISTERS = 8


class Opcode(enum.Enum):
    """Opcodes of the synthetic ISA."""

    NOP = "nop"
    MOVI = "movi"  # movi rd, imm          : rd <- imm
    MOV = "mov"  # mov rd, rs              : rd <- rs
    ADDI = "addi"  # addi rd, imm          : rd <- rd + imm
    ADD = "add"  # add rd, rs              : rd <- rd + rs
    SUB = "sub"  # sub rd, rs              : rd <- rd - rs
    AND = "and"  # and rd, rs              : rd <- rd & rs
    XOR = "xor"  # xor rd, rs              : rd <- rd ^ rs
    LOAD = "load"  # load rd, [addr]       : rd <- mem[addr]
    STORE = "store"  # store [addr], rs    : mem[addr] <- rs
    STOREI = "storei"  # storei [addr], imm: mem[addr] <- imm
    JZ = "jz"  # jz rs, label              : branch if rs == 0
    JNZ = "jnz"  # jnz rs, label           : branch if rs != 0
    JMP = "jmp"  # jmp label               : unconditional branch
    CALL = "call"  # call fn               : push return, jump to fn entry
    RET = "ret"  # ret                     : pop return
    LOCK = "lock"  # lock m                : acquire mutex m (may block)
    UNLOCK = "unlock"  # unlock m          : release mutex m
    CHECK = "check"  # check rs, imm       : bug event if rs == imm
    DEREF = "deref"  # deref rs            : bug event if rs == 0 (NULL deref)


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.JZ, Opcode.JNZ, Opcode.JMP, Opcode.RET})

#: Opcodes that access shared memory.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE, Opcode.STOREI})


@dataclass(frozen=True)
class Operand:
    """A single instruction operand.

    Exactly one of the fields is populated, selected by ``kind``:

    - ``reg``: a register index (``kind == "reg"``)
    - ``imm``: an immediate integer (``kind == "imm"``)
    - ``addr``: a global memory address (``kind == "addr"``)
    - ``label``: a branch-target block id (``kind == "label"``)
    - ``name``: a function or lock name (``kind == "fn"`` / ``"lock"``)
    """

    kind: str
    reg: int = 0
    imm: int = 0
    addr: int = 0
    label: int = 0
    name: str = ""

    @staticmethod
    def make_reg(index: int) -> "Operand":
        return Operand(kind="reg", reg=index)

    @staticmethod
    def make_imm(value: int) -> "Operand":
        return Operand(kind="imm", imm=value)

    @staticmethod
    def make_addr(address: int) -> "Operand":
        return Operand(kind="addr", addr=address)

    @staticmethod
    def make_label(block_id: int) -> "Operand":
        return Operand(kind="label", label=block_id)

    @staticmethod
    def make_fn(name: str) -> "Operand":
        return Operand(kind="fn", name=name)

    @staticmethod
    def make_lock(name: str) -> "Operand":
        return Operand(kind="lock", name=name)


@dataclass
class Instruction:
    """One decoded instruction.

    ``iid`` is the globally unique instruction id, assigned when the kernel
    is finalised; it is the "instruction address" used by scheduling hints
    and the race detector.
    """

    opcode: Opcode
    operands: Tuple[Operand, ...] = ()
    iid: int = -1

    def operand(self, index: int) -> Operand:
        return self.operands[index]

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_memory_access(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def memory_address(self) -> Optional[int]:
        """The static memory address accessed, or ``None``."""
        if self.opcode is Opcode.LOAD:
            return self.operands[1].addr
        if self.opcode in (Opcode.STORE, Opcode.STOREI):
            return self.operands[0].addr
        return None

    @property
    def is_write(self) -> bool:
        return self.opcode in (Opcode.STORE, Opcode.STOREI)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Instruction({render_instruction(self)!r}, iid={self.iid})"


def _render_operand(op: Operand) -> str:
    if op.kind == "reg":
        return f"r{op.reg}"
    if op.kind == "imm":
        return f"${op.imm}"
    if op.kind == "addr":
        return f"[v{op.addr}]"
    if op.kind == "label":
        return f".B{op.label}"
    if op.kind in ("fn", "lock"):
        return op.name
    raise ValueError(f"unknown operand kind: {op.kind!r}")


def render_instruction(instruction: Instruction) -> str:
    """Render an instruction as assembly text, e.g. ``load r3, [v42]``."""
    mnemonic = instruction.opcode.value
    if not instruction.operands:
        return mnemonic
    rendered = ", ".join(_render_operand(op) for op in instruction.operands)
    return f"{mnemonic} {rendered}"


def _tokenize_operand(op: Operand) -> List[str]:
    """Tokenize one operand, eliding numeric payloads (§3.2)."""
    if op.kind == "reg":
        return [f"r{op.reg}"]
    if op.kind == "imm":
        return ["$imm"]
    if op.kind == "addr":
        return ["[", "var", "]"]
    if op.kind == "label":
        return [".label"]
    if op.kind == "fn":
        return ["@fn"]
    if op.kind == "lock":
        return ["@lock"]
    raise ValueError(f"unknown operand kind: {op.kind!r}")


def tokenize_instruction(instruction: Instruction) -> List[str]:
    """Token stream for the assembly encoder.

    Registers are kept (there are only :data:`NUM_REGISTERS` of them and
    they carry dataflow signal), while immediates, addresses, labels and
    symbol names are replaced by kind tokens, mirroring the paper's elision
    of numeric tokens whose semantics are carried by graph edges instead.
    """
    tokens = [instruction.opcode.value]
    for op in instruction.operands:
        tokens.extend(_tokenize_operand(op))
    return tokens


def asm_text(instructions: List[Instruction]) -> str:
    """Render a block's instructions as newline-separated assembly text."""
    return "\n".join(render_instruction(instr) for instr in instructions)
