"""Syscall table of the synthetic kernel.

A syscall has a name, a handler function, and a small argument
specification. Arguments are integers passed in registers ``r0..``; they
parameterise handler behaviour (branch decisions, values stored to shared
state), which is what gives the fuzzer a meaningful input space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["SyscallSpec"]


@dataclass(frozen=True)
class SyscallSpec:
    """Specification of one syscall.

    ``arg_ranges`` gives, per argument, the inclusive ``(low, high)`` range
    of meaningful values; the fuzzer samples inside (and occasionally
    outside) these ranges.
    """

    name: str
    handler: str
    subsystem: str
    arg_ranges: Tuple[Tuple[int, int], ...] = ()

    @property
    def num_args(self) -> int:
        return len(self.arg_ranges)

    def clamp_args(self, args: List[int]) -> List[int]:
        """Pad/truncate ``args`` to the declared arity (values unrestricted)."""
        fixed = list(args[: self.num_args])
        while len(fixed) < self.num_args:
            fixed.append(0)
        return fixed
