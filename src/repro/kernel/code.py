"""Code objects: basic blocks, functions, and the kernel container.

A :class:`Kernel` is the unit everything else operates on: the fuzzer draws
syscalls from its syscall table, the executors interpret its blocks, the
static analyser builds its whole-kernel CFG, and the graph builder renders
its blocks' assembly into model features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import KernelBuildError
from repro.kernel.isa import Instruction, Opcode, asm_text
from repro.kernel.memory import MemoryImage
from repro.kernel.bugs import BugSpec
from repro.kernel.syscalls import SyscallSpec

__all__ = ["BasicBlock", "Function", "Kernel"]


@dataclass
class BasicBlock:
    """A basic block: a straight-line instruction sequence.

    ``block_id`` is globally unique within a kernel. ``successors`` lists the
    statically known successor block ids (branch targets and fallthrough),
    which is what the whole-kernel CFG is built from.
    """

    block_id: int
    function: str
    instructions: List[Instruction] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def asm(self) -> str:
        """Assembly text of the block (the vertex feature in CT graphs)."""
        return asm_text(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Function:
    """A kernel function: an entry block plus a set of blocks."""

    name: str
    subsystem: str
    entry_block: int
    block_ids: List[int] = field(default_factory=list)


class Kernel:
    """A fully built synthetic kernel.

    Construction happens through :func:`repro.kernel.builder.build_kernel`;
    the constructor here only wires together already-built parts and
    finalises instruction ids.
    """

    def __init__(
        self,
        version: str,
        blocks: Dict[int, BasicBlock],
        functions: Dict[str, Function],
        syscalls: Dict[str, SyscallSpec],
        memory: MemoryImage,
        locks: List[str],
        bugs: List[BugSpec],
        irq_handlers: Optional[List[str]] = None,
    ) -> None:
        self.version = version
        self.blocks = blocks
        self.functions = functions
        self.syscalls = syscalls
        self.memory = memory
        self.locks = list(locks)
        self.bugs = list(bugs)
        self.irq_handlers = list(irq_handlers or [])
        self._instructions: Dict[int, Tuple[int, int]] = {}
        self._finalize()

    def _finalize(self) -> None:
        """Assign globally unique instruction ids in block order."""
        next_iid = 0
        for block_id in sorted(self.blocks):
            block = self.blocks[block_id]
            for index, instruction in enumerate(block.instructions):
                instruction.iid = next_iid
                self._instructions[next_iid] = (block_id, index)
                next_iid += 1
        self._validate()

    def _validate(self) -> None:
        for block in self.blocks.values():
            for successor in block.successors:
                if successor not in self.blocks:
                    raise KernelBuildError(
                        f"block {block.block_id} has unknown successor {successor}"
                    )
        for function in self.functions.values():
            if function.entry_block not in self.blocks:
                raise KernelBuildError(
                    f"function {function.name} has unknown entry block"
                )
        for syscall in self.syscalls.values():
            if syscall.handler not in self.functions:
                raise KernelBuildError(
                    f"syscall {syscall.name} references unknown handler "
                    f"{syscall.handler}"
                )

    # -- lookups ---------------------------------------------------------

    def block(self, block_id: int) -> BasicBlock:
        return self.blocks[block_id]

    def function(self, name: str) -> Function:
        return self.functions[name]

    def locate(self, iid: int) -> Tuple[int, int]:
        """Map a global instruction id to ``(block_id, index)``."""
        return self._instructions[iid]

    def instruction(self, iid: int) -> Instruction:
        block_id, index = self._instructions[iid]
        return self.blocks[block_id].instructions[index]

    def block_of_instruction(self, iid: int) -> int:
        return self._instructions[iid][0]

    def iter_instructions(self) -> Iterator[Instruction]:
        for block_id in sorted(self.blocks):
            yield from self.blocks[block_id].instructions

    # -- stats -----------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def num_instructions(self) -> int:
        return len(self._instructions)

    def syscall_names(self) -> List[str]:
        return sorted(self.syscalls)

    def blocks_of_function(self, name: str) -> List[BasicBlock]:
        return [self.blocks[bid] for bid in self.functions[name].block_ids]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"kernel {self.version}: {len(self.functions)} functions, "
            f"{self.num_blocks} blocks, {self.num_instructions} instructions, "
            f"{len(self.syscalls)} syscalls, {len(self.bugs)} injected bugs"
        )
