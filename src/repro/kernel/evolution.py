"""Kernel version evolution.

RQ3 of the paper asks whether the predictor's training cost amortises as
the kernel evolves (Linux 5.12 → 5.13 → 6.1). This module provides the
evolution operator for the synthetic substrate: given a kernel, produce a
new version that

- keeps most code byte-identical (so a model trained on the old version
  transfers, as §5.4 finds),
- rebuilds a configurable fraction of functions with fresh bodies,
- adds new helper functions and new syscalls, and
- optionally injects *new* concurrency bugs behind the new syscalls (the
  "new bugs in 6.1" that Table 3 reports).

Existing bug specs are carried over with their racing-pair instruction ids
re-resolved against the new kernel (ids shift when code is added).
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro import rng as rngmod
from repro.errors import KernelBuildError
from repro.kernel.bugs import BugKind, BugSpec
from repro.kernel.builder import KernelBuilder, KernelConfig
from repro.kernel.code import BasicBlock, Function, Kernel
from repro.kernel.isa import Instruction, Opcode, Operand
from repro.kernel.memory import MemoryImage
from repro.kernel.syscalls import SyscallSpec

__all__ = ["EvolutionConfig", "evolve_kernel"]

_VAR_PATTERN = re.compile(r"^(sub\d+)\.v\d+$")
_LOCK_PATTERN = re.compile(r"^(sub\d+)\.lock\d+$")


@dataclass(frozen=True)
class EvolutionConfig:
    """Parameters of one version step."""

    version: str
    #: Fraction of helper functions whose bodies are regenerated.
    rebuild_fraction: float = 0.25
    #: Newly added helper functions per subsystem.
    new_helpers_per_subsystem: int = 1
    #: Newly added (gadget-free) syscalls per subsystem.
    new_syscalls_per_subsystem: int = 1
    #: Newly injected bugs, hosted behind newly added syscall pairs.
    new_atomicity_bugs: int = 0
    new_order_bugs: int = 0
    new_data_races: int = 0
    #: Drop this many of the oldest existing bugs (models upstream fixes).
    fixed_bugs: int = 0


class _EvolvingBuilder(KernelBuilder):
    """A builder primed with the deep-copied state of an existing kernel."""

    def __init__(
        self, old: Kernel, config: KernelConfig, rng_generator
    ) -> None:
        super().__init__(config, rng_generator)
        self.blocks = {
            block_id: _copy_block(block) for block_id, block in old.blocks.items()
        }
        self.functions = {
            name: Function(
                name=fn.name,
                subsystem=fn.subsystem,
                entry_block=fn.entry_block,
                block_ids=list(fn.block_ids),
            )
            for name, fn in old.functions.items()
        }
        self.syscalls = dict(old.syscalls)
        self.memory = MemoryImage(
            names=dict(old.memory.names), initial=dict(old.memory.initial)
        )
        self.locks = list(old.locks)
        self._next_block_id = max(old.blocks) + 1 if old.blocks else 0
        self._recover_layout()

    def _recover_layout(self) -> None:
        """Re-derive per-subsystem variable/lock/helper tables from names."""
        for name, address in self.memory.names.items():
            match = _VAR_PATTERN.match(name)
            if match:
                self.subsystem_vars.setdefault(match.group(1), []).append(address)
        for lock in self.locks:
            match = _LOCK_PATTERN.match(lock)
            if match:
                self.subsystem_locks.setdefault(match.group(1), []).append(lock)
        for fn in self.functions.values():
            if "_helper" in fn.name:
                self.helpers.setdefault(fn.subsystem, []).append(fn.name)
        for names in self.helpers.values():
            names.sort()

    def remove_function_body(self, name: str) -> None:
        """Delete a function and its blocks (prior to regeneration)."""
        function = self.functions.pop(name)
        for block_id in function.block_ids:
            del self.blocks[block_id]


def _copy_block(block: BasicBlock) -> BasicBlock:
    """Deep-copy a block so finalisation never mutates the old kernel."""
    return BasicBlock(
        block_id=block.block_id,
        function=block.function,
        instructions=[
            Instruction(opcode=i.opcode, operands=i.operands)
            for i in block.instructions
        ],
        successors=list(block.successors),
    )


def _carry_over_bugs(
    old: Kernel, builder: _EvolvingBuilder, dropped: int
) -> List[Tuple[BugSpec, Instruction, Instruction]]:
    """Map surviving old bug specs onto the copied instruction objects."""
    carried = []
    for spec in old.bugs[dropped:]:
        write_block, write_index = old.locate(spec.write_iid)
        read_block, read_index = old.locate(spec.read_iid)
        write_instr = builder.blocks[write_block].instructions[write_index]
        read_instr = builder.blocks[read_block].instructions[read_index]
        carried.append((spec, write_instr, read_instr))
    return carried


def evolve_kernel(
    old: Kernel,
    evolution: EvolutionConfig,
    seed: int = 0,
    base_config: Optional[KernelConfig] = None,
) -> Kernel:
    """Produce the next kernel version from ``old``.

    ``base_config`` controls the shape of regenerated/new code; it defaults
    to :class:`KernelConfig` defaults with the new version string.
    """
    cfg = replace(base_config or KernelConfig(), version=evolution.version)
    rng = rngmod.split(seed, f"evolve:{old.version}->{evolution.version}")
    builder = _EvolvingBuilder(old, cfg, rng)

    protected = _gadget_functions(old)

    # 1. Rebuild a fraction of helper functions (never gadget hosts).
    helper_names = sorted(
        name
        for name, fn in builder.functions.items()
        if "_helper" in name and name not in protected
    )
    num_rebuild = int(round(evolution.rebuild_fraction * len(helper_names)))
    rebuilt = list(rng.choice(helper_names, size=num_rebuild, replace=False))
    for name in rebuilt:
        subsystem = builder.functions[name].subsystem
        callable_helpers = [h for h in builder.helpers[subsystem] if h < name]
        builder.remove_function_body(name)
        builder.build_function(name, subsystem, callable_helpers)

    # 2. Add new helper functions.
    for subsystem, existing in sorted(builder.helpers.items()):
        for i in range(evolution.new_helpers_per_subsystem):
            name = f"{subsystem}_helper{len(existing) + i}_{evolution.version}"
            builder.build_function(name, subsystem, existing[:])
            existing.append(name)

    # 3. Add new (gadget-free) syscalls.
    for subsystem in sorted(builder.subsystem_vars):
        for i in range(evolution.new_syscalls_per_subsystem):
            _add_plain_syscall(builder, subsystem, i, evolution.version)

    # 4. Inject new bugs behind brand-new syscall pairs.
    next_bug_id = (max((b.bug_id for b in old.bugs), default=-1)) + 1
    new_bug_records = _inject_new_bugs(builder, evolution, next_bug_id)

    carried = _carry_over_bugs(old, builder, evolution.fixed_bugs)

    kernel = Kernel(
        version=evolution.version,
        blocks=builder.blocks,
        functions=builder.functions,
        syscalls=builder.syscalls,
        memory=builder.memory,
        locks=builder.locks,
        bugs=[],
        irq_handlers=list(old.irq_handlers),
    )
    kernel.bugs = [
        replace(spec, racing_pair=(w.iid, r.iid))
        for spec, w, r in carried + new_bug_records
    ]
    return kernel


def _gadget_functions(old: Kernel) -> set:
    """Functions hosting bug gadget code (never rebuilt)."""
    names = set()
    for spec in old.bugs:
        for iid in spec.racing_pair:
            block_id = old.block_of_instruction(iid)
            names.add(old.blocks[block_id].function)
        names.add(old.blocks[spec.manifest_block].function)
    return names


def _add_plain_syscall(
    builder: _EvolvingBuilder, subsystem: str, index: int, version: str
) -> None:
    syscall_name = f"sys_{subsystem}_new{index}_{version}"
    handler_fn = f"{syscall_name}_impl"
    entry = builder.new_block(handler_fn)
    builder._register_function(handler_fn, subsystem, entry)
    exit_block = builder._build_body(
        handler_fn, subsystem, entry, builder.helpers.get(subsystem, [])
    )
    builder.emit(exit_block, Opcode.RET)
    builder._collect_function_blocks(handler_fn)
    arg_ranges = tuple(
        (0, int(builder.rng.integers(3, 8)))
        for _ in range(int(builder.rng.integers(1, 4)))
    )
    builder.syscalls[syscall_name] = SyscallSpec(
        name=syscall_name,
        handler=handler_fn,
        subsystem=subsystem,
        arg_ranges=arg_ranges,
    )


def _inject_new_bugs(
    builder: _EvolvingBuilder, evolution: EvolutionConfig, next_bug_id: int
) -> List[Tuple[BugSpec, Instruction, Instruction]]:
    plan: List[Tuple[BugKind, bool]] = []
    plan.extend(
        (BugKind.ATOMICITY_VIOLATION, True)
        for _ in range(evolution.new_atomicity_bugs)
    )
    plan.extend((BugKind.ORDER_VIOLATION, True) for _ in range(evolution.new_order_bugs))
    plan.extend(
        (BugKind.DATA_RACE, i % 2 == 0) for i in range(evolution.new_data_races)
    )
    injectors = {
        BugKind.ATOMICITY_VIOLATION: builder._inject_atomicity_bug,
        BugKind.ORDER_VIOLATION: builder._inject_order_bug,
        BugKind.DATA_RACE: builder._inject_data_race,
    }
    subsystems = sorted(builder.subsystem_vars)
    records: List[Tuple[BugSpec, Instruction, Instruction]] = []
    for offset, (kind, harmful) in enumerate(plan):
        bug_id = next_bug_id + offset
        subsystem = subsystems[offset % len(subsystems)]
        halves = {}
        magics = {}
        for role in ("writer", "reader"):
            syscall_name = f"sys_{subsystem}_bug{bug_id}_{role}"
            handler_fn = f"{syscall_name}_impl"
            entry = builder.new_block(handler_fn)
            builder._register_function(handler_fn, subsystem, entry)
            magic = int(builder.rng.integers(1, 4))
            magics[role] = magic
            gadget_entry, cont = builder._gadget_gate(handler_fn, entry, magic)
            halves[role] = (handler_fn, gadget_entry, cont, syscall_name)
            exit_block = builder._build_body(
                handler_fn, subsystem, cont, builder.helpers.get(subsystem, [])
            )
            builder.emit(exit_block, Opcode.RET)
            builder.syscalls[syscall_name] = SyscallSpec(
                name=syscall_name,
                handler=handler_fn,
                subsystem=subsystem,
                arg_ranges=((0, 4), (0, 4), (0, 4)),
            )
        w_fn, w_entry, w_cont, w_sys = halves["writer"]
        r_fn, r_entry, r_cont, r_sys = halves["reader"]
        spec, write_instr, read_instr = injectors[kind](
            bug_id,
            subsystem,
            (w_fn, w_entry, w_cont),
            (r_fn, r_entry, r_cont),
            w_sys,
            r_sys,
            harmful,
        )
        spec = replace(spec, trigger_args=(magics["writer"], magics["reader"]))
        builder._collect_function_blocks(w_fn)
        builder._collect_function_blocks(r_fn)
        records.append((spec, write_instr, read_instr))
    return records
