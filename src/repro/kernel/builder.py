"""Synthetic kernel generator.

This module is the stand-in for the Linux kernel in the paper. It builds a
:class:`~repro.kernel.code.Kernel` with the properties the Snowcat pipeline
needs from its testing target:

- **Subsystems** with private shared variables and locks, so inter-thread
  data flow is common within a subsystem and rare across subsystems.
- **Syscall handlers** whose control flow depends both on user arguments
  (so the fuzzer's input space matters) and on *shared state* loaded from
  memory (so the interleaving matters): a branch like ``load r5,[v]; jnz``
  takes one arm in a single-threaded run but can be flipped by a concurrent
  writer, producing exactly the 1-hop uncovered-reachable blocks (URBs) the
  paper's predictor targets.
- **Injected concurrency bugs** (atomicity violations, order violations,
  plain data races) as small gadgets hidden behind argument checks inside
  ordinary handlers, with ground-truth :class:`~repro.kernel.bugs.BugSpec`
  records for the evaluation harness.

Generation is fully deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import rng as rngmod
from repro.errors import KernelBuildError
from repro.kernel.bugs import BugKind, BugSpec
from repro.kernel.code import BasicBlock, Function, Kernel
from repro.kernel.isa import Instruction, Opcode, Operand
from repro.kernel.memory import MemoryImage
from repro.kernel.syscalls import SyscallSpec

__all__ = ["KernelConfig", "build_kernel", "KernelBuilder"]

# Scratch registers available to generated body code; r0..r2 carry syscall
# arguments and are left intact by the prologue.
ARG_REGISTERS = (0, 1, 2)
SCRATCH_REGISTERS = (3, 4, 5, 6, 7)
#: Counter register of generated bounded loops; loop bodies never write it.
LOOP_REGISTER = 7


@dataclass(frozen=True)
class KernelConfig:
    """Shape parameters of a generated kernel.

    The defaults yield a kernel of a few hundred blocks — big enough that
    CT graphs have the skewed URB label distribution the paper reports
    (~1% positive), small enough that dynamic executions are cheap.
    """

    num_subsystems: int = 4
    functions_per_subsystem: int = 6
    syscalls_per_subsystem: int = 4
    vars_per_subsystem: int = 10
    locks_per_subsystem: int = 2
    #: Min/max number of straight-line segments per function body.
    segments_per_function: Tuple[int, int] = (3, 6)
    #: Min/max non-terminator instructions per block.
    instructions_per_block: Tuple[int, int] = (2, 5)
    #: Probability that a segment ends in a conditional diamond.
    branch_prob: float = 0.65
    #: Of those branches, probability the condition loads shared state.
    shared_branch_prob: float = 0.55
    #: Probability a body block stores to a shared variable.
    store_prob: float = 0.35
    #: Probability a handler segment calls a helper function.
    call_prob: float = 0.30
    #: Probability a segment is a bounded loop (0 keeps CFGs acyclic,
    #: preserving historic kernels byte-for-byte).
    loop_prob: float = 0.0
    #: Inclusive range of loop trip counts.
    loop_trips: Tuple[int, int] = (2, 4)
    #: Probability a store/load sequence is wrapped in a subsystem lock.
    lock_prob: float = 0.25
    #: Injected bugs per kind.
    num_atomicity_bugs: int = 3
    num_order_bugs: int = 2
    num_data_races: int = 3
    #: Interrupt handlers per subsystem (§6: interrupt-handler coverage).
    irq_handlers_per_subsystem: int = 1
    #: Fraction of shared variables initialised to 1 instead of 0.
    var_init_one_frac: float = 0.25
    version: str = "v5.12"

    def validate(self) -> None:
        handlers = self.num_subsystems * self.syscalls_per_subsystem
        gadget_halves = 2 * (
            self.num_atomicity_bugs + self.num_order_bugs + self.num_data_races
        )
        if handlers < gadget_halves:
            raise KernelBuildError(
                f"need at least {gadget_halves} syscall handlers to host bug "
                f"gadget halves, have {handlers}"
            )
        if self.segments_per_function[0] < 1:
            raise KernelBuildError("functions need at least one segment")


class KernelBuilder:
    """Stateful builder; use :func:`build_kernel` for the one-shot API.

    The builder is also the extension point used by kernel *evolution*
    (:mod:`repro.kernel.evolution`), which reuses the body-generation
    machinery to rebuild a subset of functions for a new version.
    """

    def __init__(self, config: KernelConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self.rng = rng
        self.memory = MemoryImage()
        self.blocks: Dict[int, BasicBlock] = {}
        self.functions: Dict[str, Function] = {}
        self.syscalls: Dict[str, SyscallSpec] = {}
        self.locks: List[str] = []
        self.bugs: List[BugSpec] = []
        self._next_block_id = 0
        #: subsystem name -> list of variable addresses
        self.subsystem_vars: Dict[str, List[int]] = {}
        #: subsystem name -> list of lock names
        self.subsystem_locks: Dict[str, List[str]] = {}
        #: subsystem name -> helper function names (callable from handlers)
        self.helpers: Dict[str, List[str]] = {}
        #: interrupt handler function names (machine-injected, §6)
        self.irq_handlers: List[str] = []

    # -- low-level emission ------------------------------------------------

    def new_block(self, function: str) -> BasicBlock:
        block = BasicBlock(block_id=self._next_block_id, function=function)
        self._next_block_id += 1
        self.blocks[block.block_id] = block
        return block

    @staticmethod
    def emit(block: BasicBlock, opcode: Opcode, *operands: Operand) -> Instruction:
        instruction = Instruction(opcode=opcode, operands=tuple(operands))
        block.instructions.append(instruction)
        return instruction

    def link(self, block: BasicBlock, successor: BasicBlock) -> None:
        if successor.block_id not in block.successors:
            block.successors.append(successor.block_id)

    def emit_jmp(self, block: BasicBlock, target: BasicBlock) -> None:
        self.emit(block, Opcode.JMP, Operand.make_label(target.block_id))
        self.link(block, target)

    def emit_branch(
        self,
        block: BasicBlock,
        opcode: Opcode,
        reg: int,
        taken: BasicBlock,
        fallthrough: BasicBlock,
    ) -> None:
        self.emit(
            block,
            opcode,
            Operand.make_reg(reg),
            Operand.make_label(taken.block_id),
        )
        self.link(block, taken)
        self.link(block, fallthrough)

    # -- memory layout -------------------------------------------------------

    def _allocate_state(self) -> None:
        cfg = self.config
        for s in range(cfg.num_subsystems):
            name = f"sub{s}"
            addresses = []
            for v in range(cfg.vars_per_subsystem):
                init = 1 if self.rng.random() < cfg.var_init_one_frac else 0
                addresses.append(self.memory.allocate(f"{name}.v{v}", init))
            self.subsystem_vars[name] = addresses
            lock_names = [f"{name}.lock{i}" for i in range(cfg.locks_per_subsystem)]
            self.subsystem_locks[name] = lock_names
            self.locks.extend(lock_names)

    # -- body generation -------------------------------------------------

    def _emit_filler(
        self,
        block: BasicBlock,
        subsystem: str,
        forbid_regs: Tuple[int, ...] = (),
    ) -> None:
        """Emit a small amount of register arithmetic / shared-memory traffic.

        ``forbid_regs`` excludes registers from the *write* targets (loop
        bodies protect their counter). With the default empty tuple the
        generation — including the RNG consumption — is byte-identical to
        the historic behaviour.
        """
        cfg = self.config
        writable = (
            SCRATCH_REGISTERS
            if not forbid_regs
            else tuple(r for r in SCRATCH_REGISTERS if r not in forbid_regs)
        )
        lo, hi = cfg.instructions_per_block
        count = int(self.rng.integers(lo, hi + 1))
        variables = self.subsystem_vars[subsystem]
        for _ in range(count):
            roll = self.rng.random()
            rd = int(self.rng.choice(writable))
            if roll < 0.25:
                self.emit(
                    block,
                    Opcode.MOVI,
                    Operand.make_reg(rd),
                    Operand.make_imm(int(self.rng.integers(0, 8))),
                )
            elif roll < 0.45:
                rs = int(self.rng.choice(SCRATCH_REGISTERS + ARG_REGISTERS))
                op = Opcode.ADD if self.rng.random() < 0.6 else Opcode.XOR
                self.emit(block, op, Operand.make_reg(rd), Operand.make_reg(rs))
            elif roll < 0.45 + cfg.store_prob:
                address = int(self.rng.choice(variables))
                if self.rng.random() < 0.5:
                    self.emit(
                        block,
                        Opcode.STOREI,
                        Operand.make_addr(address),
                        Operand.make_imm(int(self.rng.integers(0, 2))),
                    )
                else:
                    rs = int(self.rng.choice(SCRATCH_REGISTERS + ARG_REGISTERS))
                    self.emit(
                        block,
                        Opcode.STORE,
                        Operand.make_addr(address),
                        Operand.make_reg(rs),
                    )
            else:
                address = int(self.rng.choice(variables))
                self.emit(
                    block,
                    Opcode.LOAD,
                    Operand.make_reg(rd),
                    Operand.make_addr(address),
                )

    def _maybe_lock_wrap(self, block: BasicBlock, subsystem: str) -> Optional[str]:
        """Possibly open a critical section; returns the lock name if so."""
        if self.rng.random() < self.config.lock_prob:
            lock = str(self.rng.choice(self.subsystem_locks[subsystem]))
            self.emit(block, Opcode.LOCK, Operand.make_lock(lock))
            return lock
        return None

    def _build_body(
        self,
        function_name: str,
        subsystem: str,
        entry: BasicBlock,
        callable_helpers: Sequence[str],
    ) -> BasicBlock:
        """Generate segments after ``entry``; returns the exit block.

        The body is a chain of segments; each segment may fork into a
        conditional diamond (arg-conditioned or shared-state-conditioned)
        and may call a helper function. The CFG is a DAG, so every run
        terminates.
        """
        cfg = self.config
        lo, hi = cfg.segments_per_function
        num_segments = int(self.rng.integers(lo, hi + 1))
        current = entry
        for _ in range(num_segments):
            # Short-circuit keeps RNG consumption (and therefore historic
            # kernels) untouched when loops are disabled.
            if cfg.loop_prob > 0 and self.rng.random() < cfg.loop_prob:
                current = self._emit_loop(current, function_name, subsystem)
                continue
            lock = self._maybe_lock_wrap(current, subsystem)
            self._emit_filler(current, subsystem)
            if lock is not None:
                self.emit(current, Opcode.UNLOCK, Operand.make_lock(lock))
            if callable_helpers and self.rng.random() < cfg.call_prob:
                helper = str(self.rng.choice(list(callable_helpers)))
                self.emit(current, Opcode.CALL, Operand.make_fn(helper))
            if self.rng.random() < cfg.branch_prob:
                current = self._emit_diamond(current, function_name, subsystem)
            else:
                nxt = self.new_block(function_name)
                self.emit_jmp(current, nxt)
                current = nxt
        return current

    def _emit_loop(
        self, block: BasicBlock, function_name: str, subsystem: str
    ) -> BasicBlock:
        """Emit a counted loop segment; returns the loop's exit block.

        The counter lives in :data:`LOOP_REGISTER`, which the loop body's
        filler is forbidden from writing, so the counter strictly
        decreases and termination is guaranteed.
        """
        lo, hi = self.config.loop_trips
        trips = int(self.rng.integers(lo, hi + 1))
        self.emit(
            block,
            Opcode.MOVI,
            Operand.make_reg(LOOP_REGISTER),
            Operand.make_imm(trips),
        )
        head = self.new_block(function_name)
        exit_block = self.new_block(function_name)
        self.emit_jmp(block, head)
        self._emit_filler(head, subsystem, forbid_regs=(LOOP_REGISTER,))
        self.emit(
            head,
            Opcode.ADDI,
            Operand.make_reg(LOOP_REGISTER),
            Operand.make_imm(-1),
        )
        self.emit_branch(head, Opcode.JNZ, LOOP_REGISTER, head, exit_block)
        return exit_block

    def _emit_diamond(
        self, block: BasicBlock, function_name: str, subsystem: str
    ) -> BasicBlock:
        """End ``block`` with a conditional; emit then/else arms and a join."""
        cfg = self.config
        cond_reg = int(self.rng.choice(SCRATCH_REGISTERS))
        if self.rng.random() < cfg.shared_branch_prob:
            # Shared-state condition: the concurrency-sensitive case.
            address = int(self.rng.choice(self.subsystem_vars[subsystem]))
            self.emit(
                block,
                Opcode.LOAD,
                Operand.make_reg(cond_reg),
                Operand.make_addr(address),
            )
        else:
            # Argument-derived condition: stable across interleavings.
            arg = int(self.rng.choice(ARG_REGISTERS))
            self.emit(block, Opcode.MOV, Operand.make_reg(cond_reg), Operand.make_reg(arg))
            self.emit(
                block,
                Opcode.ADDI,
                Operand.make_reg(cond_reg),
                Operand.make_imm(-int(self.rng.integers(0, 4))),
            )
        taken = self.new_block(function_name)
        fallthrough = self.new_block(function_name)
        join = self.new_block(function_name)
        opcode = Opcode.JNZ if self.rng.random() < 0.5 else Opcode.JZ
        self.emit_branch(block, opcode, cond_reg, taken, fallthrough)
        for arm in (taken, fallthrough):
            self._emit_filler(arm, subsystem)
            self.emit_jmp(arm, join)
        return join

    def _register_function(
        self, name: str, subsystem: str, entry: BasicBlock
    ) -> Function:
        function = Function(name=name, subsystem=subsystem, entry_block=entry.block_id)
        self.functions[name] = function
        return function

    def _collect_function_blocks(self, name: str) -> None:
        """Fill ``block_ids`` for a function from the global block table."""
        self.functions[name].block_ids = sorted(
            block_id
            for block_id, block in self.blocks.items()
            if block.function == name
        )

    def build_function(
        self, name: str, subsystem: str, callable_helpers: Sequence[str]
    ) -> Function:
        """Build one complete helper function (entry → body → ret)."""
        entry = self.new_block(name)
        function = self._register_function(name, subsystem, entry)
        exit_block = self._build_body(name, subsystem, entry, callable_helpers)
        self.emit(exit_block, Opcode.RET)
        self._collect_function_blocks(name)
        return function

    # -- bug gadgets -------------------------------------------------------

    def _gadget_gate(
        self, handler: str, entry: BasicBlock, magic: int
    ) -> Tuple[BasicBlock, BasicBlock]:
        """Emit the arg gate ``if r0 == magic`` at the top of a handler.

        Returns ``(gadget_entry, continue_block)``: gadget code goes into
        ``gadget_entry`` (and must eventually jump to ``continue_block``),
        ordinary handler code continues at ``continue_block``.
        """
        gate_reg = 6
        self.emit(entry, Opcode.MOV, Operand.make_reg(gate_reg), Operand.make_reg(0))
        self.emit(
            entry, Opcode.ADDI, Operand.make_reg(gate_reg), Operand.make_imm(-magic)
        )
        gadget_entry = self.new_block(handler)
        continue_block = self.new_block(handler)
        self.emit_branch(entry, Opcode.JZ, gate_reg, gadget_entry, continue_block)
        return gadget_entry, continue_block

    def _inject_atomicity_bug(
        self,
        bug_id: int,
        subsystem: str,
        writer: Tuple[str, BasicBlock, BasicBlock],
        reader: Tuple[str, BasicBlock, BasicBlock],
        writer_syscall: str,
        reader_syscall: str,
        harmful: bool,
    ) -> Tuple[BugSpec, Instruction, Instruction]:
        """Check-then-use atomicity violation.

        Writer half opens a transient window where ``x == 1``; reader half
        enters a region only if it observes ``x == 1`` (the region is a URB
        in any single-threaded run, where ``x`` stays 0) and then re-reads
        ``x``: seeing 0 inside the region is the violation.

        The recorded racing pair is (writer's opening store, reader's
        *in-region* re-read): the racing read lives in a URB, so a strict
        Razzer-style search over sequential coverage can never propose a
        triggering input — exactly the limitation §5.6.1 highlights.
        """
        x = self.memory.allocate(f"{subsystem}.bug{bug_id}.x", 0)
        w_name, w_entry, w_cont = writer
        r_name, r_entry, r_cont = reader
        # Writer half: x <- 1 ; small window ; x <- 0.
        open_store = self.emit(
            w_entry, Opcode.STOREI, Operand.make_addr(x), Operand.make_imm(1)
        )
        for _ in range(3):
            self.emit(w_entry, Opcode.NOP)
        self.emit(w_entry, Opcode.STOREI, Operand.make_addr(x), Operand.make_imm(0))
        self.emit_jmp(w_entry, w_cont)
        # Reader half: observe x; if set, enter region and re-check.
        self.emit(r_entry, Opcode.LOAD, Operand.make_reg(5), Operand.make_addr(x))
        region = self.new_block(r_name)
        self.emit_branch(r_entry, Opcode.JNZ, 5, region, r_cont)
        self.emit(region, Opcode.NOP)
        region_load = self.emit(
            region, Opcode.LOAD, Operand.make_reg(4), Operand.make_addr(x)
        )
        # x observed 1 then 0: the atomicity assumption broke.
        self.emit(region, Opcode.CHECK, Operand.make_reg(4), Operand.make_imm(0))
        self.emit_jmp(region, r_cont)
        spec = BugSpec(
            bug_id=bug_id,
            kind=BugKind.ATOMICITY_VIOLATION,
            subsystem=subsystem,
            harmful=harmful,
            trigger_syscalls=(writer_syscall, reader_syscall),
            racing_pair=(-1, -1),
            manifest_block=region.block_id,
            variable=x,
            description=(
                f"AV: {w_name}() opens a transient x==1 window; {r_name}() "
                f"checks x then re-reads it inside the guarded region"
            ),
        )
        return spec, open_store, region_load

    def _inject_order_bug(
        self,
        bug_id: int,
        subsystem: str,
        writer: Tuple[str, BasicBlock, BasicBlock],
        reader: Tuple[str, BasicBlock, BasicBlock],
        writer_syscall: str,
        reader_syscall: str,
        harmful: bool,
    ) -> Tuple[BugSpec, Instruction, Instruction]:
        """Order violation: reader dereferences a pointer the writer
        transiently nulls during a teardown/re-init window."""
        ptr = self.memory.allocate(f"{subsystem}.bug{bug_id}.ptr", 1)
        w_name, w_entry, w_cont = writer
        r_name, r_entry, r_cont = reader
        null_store = self.emit(
            w_entry, Opcode.STOREI, Operand.make_addr(ptr), Operand.make_imm(0)
        )
        for _ in range(3):
            self.emit(w_entry, Opcode.NOP)
        self.emit(w_entry, Opcode.STOREI, Operand.make_addr(ptr), Operand.make_imm(1))
        self.emit_jmp(w_entry, w_cont)
        load = self.emit(
            r_entry, Opcode.LOAD, Operand.make_reg(5), Operand.make_addr(ptr)
        )
        self.emit(r_entry, Opcode.DEREF, Operand.make_reg(5))
        self.emit_jmp(r_entry, r_cont)
        spec = BugSpec(
            bug_id=bug_id,
            kind=BugKind.ORDER_VIOLATION,
            subsystem=subsystem,
            harmful=harmful,
            trigger_syscalls=(writer_syscall, reader_syscall),
            racing_pair=(-1, -1),
            manifest_block=r_entry.block_id,
            variable=ptr,
            description=(
                f"OV: {r_name}() dereferences ptr while {w_name}() has "
                f"transiently nulled it"
            ),
        )
        return spec, null_store, load

    def _inject_data_race(
        self,
        bug_id: int,
        subsystem: str,
        writer: Tuple[str, BasicBlock, BasicBlock],
        reader: Tuple[str, BasicBlock, BasicBlock],
        writer_syscall: str,
        reader_syscall: str,
        harmful: bool,
    ) -> Tuple[BugSpec, Instruction, Instruction]:
        """Plain unsynchronised write/read pair; found by the race detector."""
        v = self.memory.allocate(f"{subsystem}.bug{bug_id}.v", 0)
        w_name, w_entry, w_cont = writer
        r_name, r_entry, r_cont = reader
        self.emit(w_entry, Opcode.LOAD, Operand.make_reg(5), Operand.make_addr(v))
        self.emit(w_entry, Opcode.ADDI, Operand.make_reg(5), Operand.make_imm(1))
        store = self.emit(
            w_entry, Opcode.STORE, Operand.make_addr(v), Operand.make_reg(5)
        )
        self.emit_jmp(w_entry, w_cont)
        load = self.emit(
            r_entry, Opcode.LOAD, Operand.make_reg(4), Operand.make_addr(v)
        )
        self.emit(r_entry, Opcode.NOP)
        self.emit_jmp(r_entry, r_cont)
        spec = BugSpec(
            bug_id=bug_id,
            kind=BugKind.DATA_RACE,
            subsystem=subsystem,
            harmful=harmful,
            trigger_syscalls=(writer_syscall, reader_syscall),
            racing_pair=(-1, -1),
            manifest_block=r_entry.block_id,
            variable=v,
            description=f"DR: unsynchronised RMW in {w_name}() races {r_name}()",
        )
        return spec, store, load

    # -- top-level assembly ------------------------------------------------

    def build(self) -> Kernel:
        cfg = self.config
        self._allocate_state()

        # Helper functions, per subsystem, callable from handlers and from
        # later helpers (index ordering prevents recursion).
        for s in range(cfg.num_subsystems):
            subsystem = f"sub{s}"
            names: List[str] = []
            for f in range(cfg.functions_per_subsystem):
                name = f"{subsystem}_helper{f}"
                self.build_function(name, subsystem, callable_helpers=names[:])
                names.append(name)
            self.helpers[subsystem] = names

        # Interrupt handlers: short, lock-free functions touching subsystem
        # state, never called directly — fired by the machine's IRQ
        # injection (sleeping locks are forbidden in interrupt context).
        irq_config = replace(
            cfg, lock_prob=0.0, call_prob=0.0, segments_per_function=(1, 2)
        )
        ordinary_config = self.config
        self.config = irq_config
        try:
            for s in range(cfg.num_subsystems):
                subsystem = f"sub{s}"
                for i in range(cfg.irq_handlers_per_subsystem):
                    name = f"{subsystem}_irq{i}"
                    self.build_function(name, subsystem, callable_helpers=[])
                    self.irq_handlers.append(name)
        finally:
            self.config = ordinary_config

        # Plan bug injection: assign each gadget half to a distinct handler.
        bug_plan: List[Tuple[BugKind, bool]] = []
        bug_plan.extend(
            (BugKind.ATOMICITY_VIOLATION, i % 3 != 2)
            for i in range(cfg.num_atomicity_bugs)
        )
        bug_plan.extend(
            (BugKind.ORDER_VIOLATION, True) for _ in range(cfg.num_order_bugs)
        )
        bug_plan.extend(
            (BugKind.DATA_RACE, i % 2 == 0) for i in range(cfg.num_data_races)
        )

        handler_names: List[Tuple[str, str]] = []  # (syscall, subsystem)
        for s in range(cfg.num_subsystems):
            subsystem = f"sub{s}"
            for k in range(cfg.syscalls_per_subsystem):
                handler_names.append((f"sys_{subsystem}_op{k}", subsystem))

        # Which handlers host a gadget half, and with what magic arg value.
        order = rngmod.shuffled(self.rng, handler_names)
        assignments: Dict[str, Tuple[int, str, int]] = {}
        half_index = 0
        for bug_index, (kind, harmful) in enumerate(bug_plan):
            for role in ("writer", "reader"):
                syscall_name, _sub = order[half_index]
                magic = int(self.rng.integers(1, 4))
                assignments[syscall_name] = (bug_index, role, magic)
                half_index += 1

        # Build handlers; gadget halves are spliced at handler entry behind
        # an argument gate so only the right input reaches them.
        pending: Dict[int, Dict[str, Tuple[str, BasicBlock, BasicBlock, str]]] = {}
        for syscall_name, subsystem in handler_names:
            handler_fn = f"{syscall_name}_impl"
            entry = self.new_block(handler_fn)
            self._register_function(handler_fn, subsystem, entry)
            if syscall_name in assignments:
                bug_index, role, magic = assignments[syscall_name]
                gadget_entry, cont = self._gadget_gate(handler_fn, entry, magic)
                pending.setdefault(bug_index, {})[role] = (
                    handler_fn,
                    gadget_entry,
                    cont,
                    syscall_name,
                )
                body_start = cont
                arg_ranges: Tuple[Tuple[int, int], ...] = ((0, 4), (0, 4), (0, 4))
            else:
                body_start = entry
                arg_ranges = tuple(
                    (0, int(self.rng.integers(3, 8)))
                    for _ in range(int(self.rng.integers(1, 4)))
                )
            exit_block = self._build_body(
                handler_fn, subsystem, body_start, self.helpers[subsystem]
            )
            self.emit(exit_block, Opcode.RET)
            self._collect_function_blocks(handler_fn)
            self.syscalls[syscall_name] = SyscallSpec(
                name=syscall_name,
                handler=handler_fn,
                subsystem=subsystem,
                arg_ranges=arg_ranges,
            )

        # Instruction ids are assigned only when the Kernel is constructed,
        # so injectors return the racing Instruction *objects*; the specs'
        # racing pairs are patched with final iids after construction.
        injectors = {
            BugKind.ATOMICITY_VIOLATION: self._inject_atomicity_bug,
            BugKind.ORDER_VIOLATION: self._inject_order_bug,
            BugKind.DATA_RACE: self._inject_data_race,
        }
        deferred: List[Tuple[BugSpec, Instruction, Instruction]] = []
        for bug_index, (kind, harmful) in enumerate(bug_plan):
            halves = pending[bug_index]
            w_fn, w_entry, w_cont, w_sys = halves["writer"]
            r_fn, r_entry, r_cont, r_sys = halves["reader"]
            subsystem = self.functions[w_fn].subsystem
            spec, write_instr, read_instr = injectors[kind](
                bug_index,
                subsystem,
                (w_fn, w_entry, w_cont),
                (r_fn, r_entry, r_cont),
                w_sys,
                r_sys,
                harmful,
            )
            spec = replace(
                spec,
                trigger_args=(assignments[w_sys][2], assignments[r_sys][2]),
            )
            # Gadget code extended the handler functions: refresh block lists.
            self._collect_function_blocks(w_fn)
            self._collect_function_blocks(r_fn)
            deferred.append((spec, write_instr, read_instr))

        kernel = Kernel(
            version=cfg.version,
            blocks=self.blocks,
            functions=self.functions,
            syscalls=self.syscalls,
            memory=self.memory,
            locks=self.locks,
            bugs=[],
            irq_handlers=self.irq_handlers,
        )
        # Patch racing pairs with the now-final iids.
        kernel.bugs = [
            replace(spec, racing_pair=(w.iid, r.iid)) for spec, w, r in deferred
        ]
        return kernel


def build_kernel(config: Optional[KernelConfig] = None, seed: int = 0) -> Kernel:
    """Build a deterministic synthetic kernel.

    Parameters
    ----------
    config:
        Shape parameters; defaults are suitable for tests and benches.
    seed:
        Seed for all generation randomness.
    """
    cfg = config or KernelConfig()
    rng = rngmod.split(seed, f"kernel:{cfg.version}")
    return KernelBuilder(cfg, rng).build()
