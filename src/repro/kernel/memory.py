"""Shared-memory image of the synthetic kernel.

The kernel's global state is a flat array of integer cells. Named variables
map to addresses; the builder allocates variables per subsystem so that
inter-thread data flow (two syscalls touching the same subsystem state) is
common but not universal, mirroring real kernels where most races live
inside a subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["MemoryImage", "MemoryState"]


@dataclass
class MemoryImage:
    """Static memory layout plus initial values.

    ``names`` maps a variable name (e.g. ``"net.v3"``) to its address;
    ``initial`` maps an address to its boot-time value.
    """

    names: Dict[str, int] = field(default_factory=dict)
    initial: Dict[int, int] = field(default_factory=dict)

    def allocate(self, name: str, initial_value: int = 0) -> int:
        """Allocate a new cell for ``name`` and return its address."""
        if name in self.names:
            raise ValueError(f"variable {name!r} already allocated")
        address = len(self.initial)
        self.names[name] = address
        self.initial[address] = initial_value
        return address

    def address_of(self, name: str) -> int:
        return self.names[name]

    @property
    def size(self) -> int:
        return len(self.initial)

    def fresh_state(self) -> "MemoryState":
        return MemoryState(self)


class MemoryState:
    """A mutable runtime copy of a :class:`MemoryImage`.

    Executors create one per dynamic test, so tests never contaminate each
    other ("reboot the VM between tests").
    """

    __slots__ = ("_cells",)

    def __init__(self, image: MemoryImage) -> None:
        self._cells = dict(image.initial)

    def load(self, address: int) -> int:
        return self._cells.get(address, 0)

    def store(self, address: int, value: int) -> None:
        self._cells[address] = value

    def snapshot(self) -> Dict[int, int]:
        return dict(self._cells)
