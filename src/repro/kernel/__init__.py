"""Synthetic kernel substrate.

The paper tests the Linux kernel; this package provides the stand-in: a
deterministic generator of kernels written in a small assembly-like ISA,
with shared memory, locks, syscalls, branches conditioned on shared state
(the source of concurrency-sensitive coverage) and injected concurrency
bugs. See DESIGN.md for the substitution rationale.
"""

from repro.kernel.isa import (
    Instruction,
    Opcode,
    Operand,
    render_instruction,
    tokenize_instruction,
)
from repro.kernel.code import BasicBlock, Function, Kernel
from repro.kernel.memory import MemoryImage
from repro.kernel.syscalls import SyscallSpec
from repro.kernel.bugs import BugKind, BugSpec
from repro.kernel.builder import KernelConfig, build_kernel
from repro.kernel.evolution import EvolutionConfig, evolve_kernel
from repro.kernel.serialize import (
    kernel_from_dict,
    kernel_to_dict,
    load_kernel,
    save_kernel,
)

__all__ = [
    "Instruction",
    "Opcode",
    "Operand",
    "render_instruction",
    "tokenize_instruction",
    "BasicBlock",
    "Function",
    "Kernel",
    "MemoryImage",
    "SyscallSpec",
    "BugKind",
    "BugSpec",
    "KernelConfig",
    "build_kernel",
    "EvolutionConfig",
    "evolve_kernel",
    "kernel_to_dict",
    "kernel_from_dict",
    "save_kernel",
    "load_kernel",
]
