"""Injected concurrency-bug specifications.

The builder plants bug *gadgets* — small instruction patterns whose
misbehaviour only manifests under particular interleavings — and records a
:class:`BugSpec` for each. Specs carry ground truth the evaluation needs:

- the racing ``(write_iid, read_iid)`` instruction pair (what Razzer's
  static analysis reports, §5.6.1),
- the block that executes when the bug manifests (``manifest_block``), so a
  ``CHECK``/``DEREF`` bug event can be attributed to a spec,
- the bug taxonomy of the paper's Table 3: data race (DR), atomicity
  violation (AV), order violation (OV), and whether it is harmful or benign.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["BugKind", "BugSpec"]


class BugKind(enum.Enum):
    """Taxonomy used in the paper's Table 3."""

    DATA_RACE = "DR"
    ATOMICITY_VIOLATION = "AV"
    ORDER_VIOLATION = "OV"


@dataclass(frozen=True)
class BugSpec:
    """Ground truth for one injected concurrency bug."""

    bug_id: int
    kind: BugKind
    subsystem: str
    harmful: bool
    #: Syscalls whose concurrent invocation can expose the bug.
    trigger_syscalls: Tuple[str, str]
    #: The statically racing instruction pair (a write and a read).
    racing_pair: Tuple[int, int]
    #: Block containing the CHECK/DEREF that fires when the bug manifests.
    manifest_block: int
    #: Shared variable the race is about (address).
    variable: int
    description: str = ""
    #: First-argument values that open the gadget gates in the two
    #: trigger syscalls (writer magic, reader magic).
    trigger_args: Tuple[int, int] = (0, 0)

    @property
    def write_iid(self) -> int:
        return self.racing_pair[0]

    @property
    def read_iid(self) -> int:
        return self.racing_pair[1]
