"""Tests of the cross-process observability layer (PR 6).

The load-bearing claims: (1) trace context propagates over the serve
socket, so a client's and a server's span trees merge into one tree
under one trace id with queue-wait/batch/cache/model attribution; (2)
the operational exports (Prometheus exposition, heartbeats, ``repro
top``, the serve watch line) render real registry data; (3) the flight
recorder dumps a complete atomic post-mortem on SIGUSR1 and on
admission-control rejection; (4) none of it exists when telemetry is
off — a served campaign's results are identical either way.
"""

from __future__ import annotations

import json
import os
import signal
import time

import numpy as np
import pytest

from repro import obs
from repro import rng as rngmod
from repro.execution.pct import propose_hint_pairs
from repro.core.mlpct import ExplorationConfig, MLPCTExplorer, run_campaign
from repro.core.strategies import make_strategy
from repro.errors import AdmissionError
from repro.obs.export import (
    HeartbeatWriter,
    read_heartbeat,
    render_prometheus,
    render_serve_watch,
    render_top,
    snapshot_from_stats,
)
from repro.obs.flight import FlightRecorder, install as install_flight
from repro.obs.propagation import TraceContext, current_context, parse_span_ref
from repro.obs.report import merge_traces, render_merged_report, serve_rows
from repro.obs.sink import MemorySink, read_events_tolerant
from repro.oracle import DifferentialRunner, add_campaign_check
from repro.serve import (
    BatcherConfig,
    MicroBatcher,
    PredictionServer,
    ServerConfig,
    SocketBackend,
)


@pytest.fixture(scope="module")
def candidate_graphs(dataset_builder):
    """A pool of candidate graphs of one CTI (shared template)."""
    entry_a, entry_b = dataset_builder.corpus.sample_pairs(
        rngmod.make_rng(3), 1
    )[0]
    rng = rngmod.make_rng(11)
    pairs = propose_hint_pairs(rng, entry_a.trace, entry_b.trace, 7)
    return [
        dataset_builder.graph_for(entry_a, entry_b, list(pair)) for pair in pairs
    ]


# -- trace-context propagation -----------------------------------------------


class TestTraceContext:
    def test_wire_round_trip(self):
        context = TraceContext(trace_id="ab12cd34ef56ab78", span_ref="client:7")
        assert TraceContext.from_wire(context.to_wire()) == context

    @pytest.mark.parametrize(
        "token",
        [
            None,
            42,
            "",
            "not-a-context",
            "00-xyz-client:7-01",  # non-hex trace id
            "00-ab12cd34-client-01",  # ref missing the span id
            "99-ab12cd34-client:7-01",  # unknown version
        ],
    )
    def test_malformed_tokens_degrade_to_none(self, token):
        assert TraceContext.from_wire(token) is None

    def test_parse_span_ref(self):
        assert parse_span_ref("server:12") == ("server", 12)
        assert parse_span_ref("no-colon") is None
        assert parse_span_ref("proc:notanumber") is None

    def test_current_context_off_is_none(self):
        assert current_context() is None

    def test_current_context_names_the_open_span(self):
        registry = obs.MetricsRegistry(sink=MemorySink(), process="client")
        with obs.use_registry(registry):
            outer = current_context()
            assert outer is not None
            assert outer.trace_id == registry.trace_id
            assert outer.span_ref == "client:0"  # no open span: root ref
            with registry.span("campaign.cti") as span:
                inner = current_context()
                assert inner.span_ref == f"client:{span.span_id}"

    def test_remote_context_propagates_trace_id_onward(self):
        registry = obs.MetricsRegistry(sink=MemorySink(), process="server")
        remote = TraceContext(trace_id="feed0123feed4567", span_ref="client:3")
        with registry.remote_context(remote):
            context = current_context(registry)
            assert context.trace_id == "feed0123feed4567"
        assert current_context(registry).trace_id == registry.trace_id


class TestThreadLocalSpans:
    def test_handler_threads_do_not_corrupt_each_others_stacks(self):
        import threading

        registry = obs.MetricsRegistry(sink=MemorySink())
        barrier = threading.Barrier(4)
        errors = []

        def worker(index):
            try:
                barrier.wait(timeout=10.0)
                for _ in range(50):
                    with registry.span(f"serve.request") as outer:
                        with registry.span("serve.cache") as inner:
                            assert inner.parent_id == outer.span_id
                        assert registry.current_span() is outer
                    assert registry.current_span() is None
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            __import__("threading").Thread(target=worker, args=(i,))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors


# -- client+server merge over the socket -------------------------------------


@pytest.fixture()
def traced_socket_pair(tiny_model, tmp_path):
    """A socket server with its own registry + a client registry."""
    server_sink, client_sink = MemorySink(), MemorySink()
    server_registry = obs.MetricsRegistry(sink=server_sink, process="server")
    client_registry = obs.MetricsRegistry(sink=client_sink, process="client")
    server = PredictionServer(
        tiny_model,
        ServerConfig(
            socket_path=str(tmp_path / "traced.sock"),
            max_batch=4,
            max_wait_ms=1.0,
        ),
        version="v1",
        registry=server_registry,
    ).start()
    yield server, server_registry, client_registry, server_sink, client_sink
    server.stop()


class TestCrossProcessMerge:
    def test_span_trees_merge_under_one_trace_id(
        self, traced_socket_pair, candidate_graphs
    ):
        server, server_reg, client_reg, server_sink, client_sink = (
            traced_socket_pair
        )
        client = SocketBackend(server.config.socket_path)
        try:
            with obs.use_registry(client_reg):
                client.predict_proba_batch(candidate_graphs)
        finally:
            client.close()
        client_reg.close()
        server_reg.close()

        merged = merge_traces(
            [client_sink.events, server_sink.events]
        )
        spans = {span["name"]: span for span in merged["spans"]}
        assert merged["links"] == 1
        assert set(merged["procs"]) == {"client", "server"}

        call = spans["serve.call"]
        request = spans["serve.request"]
        batch = spans["serve.batch"]
        # One tree: server request under client call, attribution under
        # the request, all on the client's trace id.
        assert request["parent"] == call["id"]
        assert spans["serve.cache"]["parent"] == request["id"]
        assert batch["parent"] == request["id"]
        assert spans["serve.queue_wait"]["parent"] == batch["id"]
        assert spans["serve.model"]["parent"] == batch["id"]
        assert (
            call["trace"]
            == request["trace"]
            == batch["trace"]
            == client_reg.trace_id
        )
        # Batch attribution: real batch size and a nonzero queue wait.
        assert batch["attrs"]["batch"] >= 1
        assert batch["attrs"]["queue_wait"] > 0.0
        assert spans["serve.model"]["dur"] > 0.0
        # Time alignment: the server's request starts at/after the
        # client call on the merged timeline (median-offset alignment).
        assert request["start"] >= call["start"] - 1e-6

        report = render_merged_report(merged)
        assert "serve attribution" in report
        assert "serve.batch" in report
        assert "cross-process links resolved: 1" in report

    def test_untraced_client_leaves_the_wire_clean(
        self, traced_socket_pair, candidate_graphs, tiny_model
    ):
        """With client telemetry off no trace header is sent: the server
        records an independent root (no remote link) and predictions are
        still byte-identical to the local model."""
        server, _server_reg, _client_reg, server_sink, _ = traced_socket_pair
        client = SocketBackend(server.config.socket_path)
        try:
            assert obs.active() is None
            served = client.predict_proba_batch(candidate_graphs)
        finally:
            client.close()
        for graph, proba in zip(candidate_graphs, served):
            # Batched compute reorders float sums: ULP-level tolerance.
            np.testing.assert_allclose(
                proba, tiny_model.predict_proba(graph), rtol=1e-12
            )
        requests = [
            event
            for event in server_sink.events
            if event.get("event") == "span" and event["name"] == "serve.request"
        ]
        assert requests and all("remote" not in event for event in requests)

    def test_serve_rows_aggregate_attribution(self):
        spans = [
            {"name": "serve.call", "dur": 0.2, "attrs": {}},
            {"name": "serve.batch", "dur": 0.1,
             "attrs": {"batch": 4, "queue_wait": 0.03}},
            {"name": "serve.batch", "dur": 0.3,
             "attrs": {"batch": 2, "queue_wait": 0.01}},
            {"name": "campaign.cti", "dur": 9.9, "attrs": {}},
        ]
        rows = serve_rows(spans)
        assert [row["span"] for row in rows] == ["serve.call", "serve.batch"]
        batch_row = rows[1]
        assert batch_row["count"] == 2
        assert batch_row["mean batch"] == "3.0"
        assert batch_row["queue wait s"] == "0.0400"


# -- tolerant trace reading --------------------------------------------------


class TestTruncatedTail:
    def test_truncated_final_line_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            json.dumps({"event": "point", "name": "a", "seq": 0})
            + "\n"
            + '{"event": "span", "na'  # crash mid-write
        )
        events, truncated = read_events_tolerant(str(path))
        assert truncated == 1
        assert [event["name"] for event in events] == ["a"]

    def test_interior_garbage_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            'garbage\n' + json.dumps({"event": "point", "seq": 0}) + "\n"
        )
        with pytest.raises(json.JSONDecodeError):
            read_events_tolerant(str(path))

    def test_garbage_only_file_is_not_a_trace(self, tmp_path):
        path = tmp_path / "not-a-trace.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(json.JSONDecodeError):
            read_events_tolerant(str(path))


# -- Prometheus exposition ---------------------------------------------------


class TestPrometheusExposition:
    def test_registry_snapshot_renders(self):
        registry = obs.MetricsRegistry(sink=MemorySink(), process="server")
        registry.counter("serve.cache.hits").add(3)
        registry.gauge("serve.queue.depth").set(2)
        for value in (0.001, 0.002, 0.004):
            registry.histogram("serve.request.seconds").observe(value)
        with registry.span("serve.request"):
            pass
        text = render_prometheus(registry.snapshot())
        assert "# TYPE repro_serve_cache_hits_total counter" in text
        assert "repro_serve_cache_hits_total 3" in text
        assert "repro_serve_queue_depth 2" in text
        assert "# TYPE repro_serve_request_seconds summary" in text
        assert 'repro_serve_request_seconds{quantile="0.99"}' in text
        assert "repro_serve_request_seconds_count 3" in text
        assert 'repro_span_seconds_total{span="serve.request"}' in text

    def test_exposition_parses(self):
        """Every non-comment line is `name{labels}? value` with a float
        value — the format contract a scraper relies on."""
        registry = obs.MetricsRegistry(sink=MemorySink())
        registry.counter("a.b").add(1)
        registry.gauge("c-d").set(1.5)
        registry.histogram("e f").observe(0.2)
        text = render_prometheus(registry.snapshot())
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert line.startswith("# TYPE repro_")
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # must parse
            metric = name.split("{", 1)[0]
            assert metric.startswith("repro_")
            assert " " not in metric

    def test_stats_fallback_snapshot(self):
        snapshot = snapshot_from_stats(
            {
                "requests": 7,
                "cache": {"hits": 5, "misses": 2, "hit_rate": 5 / 7,
                          "bytes": 128, "evictions": 0},
                "batcher": {"flush_full": 1, "flush_deadline": 2,
                            "rejected": 0, "backpressure": 0,
                            "queue_depth": 0},
            }
        )
        text = render_prometheus(snapshot)
        assert "repro_serve_requests_total 7" in text
        assert "repro_serve_cache_hits_total 5" in text


# -- flight recorder ---------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded_and_tees_to_inner(self, tmp_path):
        inner = MemorySink()
        recorder = FlightRecorder(
            str(tmp_path / "dump.json"), capacity=4, inner=inner
        )
        for index in range(10):
            recorder.write({"event": "point", "seq": index})
        assert len(inner.events) == 10  # tee passes everything through
        recorder.dump_now("test")
        dump = json.loads((tmp_path / "dump.json").read_text())
        assert [event["seq"] for event in dump["events"]] == [6, 7, 8, 9]
        assert dump["reason"] == "test"

    def test_dump_on_sigusr1(self, tmp_path):
        path = tmp_path / "flight.json"
        previous = signal.getsignal(signal.SIGUSR1)
        registry = obs.MetricsRegistry(sink=MemorySink())
        try:
            with obs.use_registry(registry):
                recorder = install_flight(str(path), capacity=8)
                obs.point("campaign.heartbeat", done=1)
                os.kill(os.getpid(), signal.SIGUSR1)
                deadline = time.monotonic() + 5.0
                while not path.exists() and time.monotonic() < deadline:
                    time.sleep(0.01)
        finally:
            signal.signal(signal.SIGUSR1, previous)
        dump = json.loads(path.read_text())
        assert dump["reason"] == "sigusr1"
        assert any(
            event.get("name") == "campaign.heartbeat"
            for event in dump["events"]
        )
        assert dump["metrics"] is not None
        assert recorder.inner is registry.sink or recorder is registry.sink

    def test_install_splices_ahead_of_the_active_sink(self, tmp_path):
        sink = MemorySink()
        registry = obs.MetricsRegistry(sink=sink)
        with obs.use_registry(registry):
            recorder = install_flight(
                str(tmp_path / "d.json"), handlers=False
            )
            assert registry.sink is recorder
            assert recorder.inner is sink
            obs.point("a")
        assert sink.events  # events still reach the original sink

    def test_admission_error_triggers_a_dump(self, tmp_path):
        import threading

        path = tmp_path / "admission.json"
        release = threading.Event()

        def compute(payloads):
            release.wait(timeout=10.0)
            return list(payloads)

        registry = obs.MetricsRegistry(sink=MemorySink())
        with obs.use_registry(registry):
            install_flight(str(path), handlers=False)
            batcher = MicroBatcher(
                compute,
                BatcherConfig(max_batch=1, max_queue=1, block_on_full=False),
            )
            try:
                with pytest.raises(AdmissionError):
                    # Worker blocks on the first payload; flood the
                    # 1-deep queue until admission control rejects.
                    for _ in range(8):
                        batcher.submit(object())
            finally:
                release.set()
                batcher.close()
        dump = json.loads(path.read_text())
        assert dump["reason"] == "admission_error"

    def test_slow_request_log(self, tmp_path):
        recorder = FlightRecorder(str(tmp_path / "slow.json"), slow_capacity=2)
        recorder.note_slow("predict_batch", 0.5, graphs=3)
        recorder.note_slow("predict_batch", 0.7, graphs=1)
        recorder.note_slow("predict_batch", 0.9, graphs=2)
        recorder.dump_now("test")
        dump = json.loads((tmp_path / "slow.json").read_text())
        assert [entry["seconds"] for entry in dump["slow_requests"]] == [
            0.7,
            0.9,
        ]

    def test_slow_serve_requests_are_recorded(
        self, tiny_model, tmp_path, candidate_graphs
    ):
        from repro.obs import flight as flight_module

        recorder = FlightRecorder(str(tmp_path / "srv.json"))
        previous = flight_module._RECORDER
        flight_module._RECORDER = recorder
        try:
            server = PredictionServer(
                tiny_model,
                ServerConfig(
                    socket_path=str(tmp_path / "slow.sock"),
                    slow_request_ms=0.0,  # everything is "slow"
                ),
                version="v1",
            ).start()
            client = SocketBackend(server.config.socket_path)
            try:
                client.predict_proba_batch(candidate_graphs[:2])
            finally:
                client.close()
                server.stop()
        finally:
            flight_module._RECORDER = previous
        recorder.dump_now("test")
        dump = json.loads((tmp_path / "srv.json").read_text())
        assert dump["slow_requests"]
        assert dump["slow_requests"][0]["op"] == "predict_batch"


# -- heartbeats and repro top ------------------------------------------------


class TestHeartbeat:
    def test_writer_throttles_and_forces(self, tmp_path):
        clock = [0.0]
        writer = HeartbeatWriter(
            str(tmp_path / "beat.json"), interval=1.0, clock=lambda: clock[0]
        )
        writer.begin("MLPCT-S1", total=10)
        assert not writer.update(done=1)  # within the interval: no write
        clock[0] = 2.0
        assert writer.update(done=2, races=1, executions=5)
        beat = read_heartbeat(str(tmp_path / "beat.json"))
        assert beat["done"] == 2 and beat["total"] == 10
        assert beat["races"] == 1 and beat["executions"] == 5
        assert beat["rate_per_second"] == 1.0
        assert beat["eta_seconds"] == 8.0
        clock[0] = 2.5
        assert writer.update(done=10)  # completion always writes

    def test_render_top(self, tmp_path):
        clock = [0.0]
        writer = HeartbeatWriter(
            str(tmp_path / "one.json"), clock=lambda: clock[0]
        )
        writer.begin("MLPCT-S1", total=4)
        clock[0] = 2.0
        writer.update(done=2, races=3)
        table = render_top(
            [str(tmp_path / "one.json"), str(tmp_path / "absent.json")]
        )
        assert "MLPCT-S1" in table
        assert "2/4 (50%)" in table
        assert "(no heartbeat)" in table

    def test_campaign_loop_emits_heartbeats(self, dataset_builder, tiny_model):
        ctis = dataset_builder.corpus.sample_pairs(rngmod.make_rng(3), 2)
        import tempfile

        sink = MemorySink()
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "beat.json")
            heartbeat = HeartbeatWriter(path, interval=0.0)
            with obs.use_registry(obs.MetricsRegistry(sink=sink)):
                _campaign(dataset_builder, tiny_model, ctis, heartbeat=heartbeat)
            beat = read_heartbeat(path)
        assert beat["done"] == 2 and beat["total"] == 2
        assert beat["label"].startswith("MLPCT")
        points = [
            event
            for event in sink.events
            if event.get("name") == "campaign.heartbeat"
        ]
        assert points and points[-1]["fields"]["done"] == 2


class TestServeWatch:
    def test_render_line(self):
        status = {
            "requests": 120,
            "uptime_seconds": 60.0,
            "model_name": "pic",
            "version": "v1",
            "cache": {"hit_rate": 0.5},
            "batcher": {"queue_depth": 3},
        }
        snapshot = {
            "histograms": {
                "serve.request.seconds": {"p50": 0.002, "p99": 0.010}
            }
        }
        line = render_serve_watch((status, snapshot))
        assert "qps    2.0" in line
        assert "p50    2.00 ms" in line
        assert "p99   10.00 ms" in line
        assert "cache hit  50.0%" in line
        assert "model pic v1" in line
        previous = (dict(status, requests=100), snapshot)
        line = render_serve_watch((status, snapshot), previous, elapsed=2.0)
        assert "qps   10.0" in line


# -- telemetry on/off equivalence for a served campaign ----------------------


def _campaign(dataset_builder, predictor, ctis, backend=None, heartbeat=None):
    explorer = MLPCTExplorer(
        dataset_builder,
        predictor=predictor,
        strategy=make_strategy("S1"),
        backend=backend,
        config=ExplorationConfig(
            execution_budget=5,
            inference_cap=24,
            proposal_pool=24,
            score_batch_size=32,
        ),
        seed=0,
    )
    return run_campaign(explorer, ctis, heartbeat=heartbeat)


class TestTelemetryOnOffEquivalence:
    def test_socket_campaign_is_identical_with_and_without_telemetry(
        self, dataset_builder, tiny_model, tmp_path
    ):
        ctis = dataset_builder.corpus.sample_pairs(rngmod.make_rng(3), 2)
        server = PredictionServer(
            tiny_model,
            ServerConfig(socket_path=str(tmp_path / "equiv.sock"), max_batch=4),
            version="v1",
        ).start()
        try:
            client = SocketBackend(server.config.socket_path)
            try:
                assert obs.active() is None
                plain = _campaign(dataset_builder, None, ctis, backend=client)
            finally:
                client.close()
            client = SocketBackend(server.config.socket_path)
            sink = MemorySink()
            try:
                with obs.use_registry(
                    obs.MetricsRegistry(sink=sink, process="client")
                ):
                    traced = _campaign(
                        dataset_builder, None, ctis, backend=client
                    )
            finally:
                client.close()
        finally:
            server.stop()
        runner = DifferentialRunner("telemetry-equivalence")
        add_campaign_check(runner, "campaign", lambda: plain, lambda: traced)
        runner.run().raise_if_failed()
        # The traced run really did record the serve path.
        names = {
            event.get("name")
            for event in sink.events
            if event.get("event") == "span"
        }
        assert "serve.call" in names
