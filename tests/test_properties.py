"""Cross-cutting property-based tests on system invariants.

These encode the correctness arguments the rest of the evaluation rests
on: concurrent executions of non-interfering inputs behave like their
sequential composition, scheduling only matters when threads share state,
coverage sets are well-formed, and exploration never exceeds its budgets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import rng as rngmod
from repro.execution import (
    ScheduleHint,
    find_potential_races,
    run_concurrent,
    run_sequential,
)
from repro.fuzz import StiGenerator
from repro.kernel import KernelConfig, build_kernel


@pytest.fixture(scope="module")
def generator(kernel):
    return StiGenerator(kernel, seed=77)


def _random_sti(kernel, generator, seed):
    rng = rngmod.make_rng(seed)
    names = kernel.syscall_names()
    name = str(rng.choice(names))
    spec = kernel.syscalls[name]
    args = [int(rng.integers(0, 5)) for _ in range(spec.num_args)]
    return [(name, args)]


class TestNonInterferenceProperties:
    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=15, deadline=None)
    def test_disjoint_footprints_compose(self, kernel, generator, seed):
        """If two STIs touch disjoint memory, any interleaving covers
        exactly the union of their sequential coverages and races are
        impossible."""
        rng = rngmod.make_rng(seed)
        sti_a = _random_sti(kernel, generator, seed)
        sti_b = _random_sti(kernel, generator, seed + 1000)
        trace_a = run_sequential(kernel, sti_a)
        trace_b = run_sequential(kernel, sti_b)
        if trace_a.accessed_addresses() & trace_b.accessed_addresses():
            return  # property only applies to disjoint footprints
        # Random hints:
        hints = []
        if trace_a.iid_trace:
            hints.append(
                ScheduleHint(0, trace_a.iid_trace[int(rng.integers(len(trace_a.iid_trace)))])
            )
        if trace_b.iid_trace:
            hints.append(
                ScheduleHint(1, trace_b.iid_trace[int(rng.integers(len(trace_b.iid_trace)))])
            )
        result = run_concurrent(kernel, (sti_a, sti_b), hints=hints)
        assert result.covered_blocks[0] == trace_a.covered_blocks
        assert result.covered_blocks[1] == trace_b.covered_blocks
        assert find_potential_races(result.accesses) == set()

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_sequential_coverage_is_subset_of_kernel(self, kernel, generator, seed):
        sti = _random_sti(kernel, generator, seed)
        trace = run_sequential(kernel, sti)
        assert trace.covered_blocks <= set(kernel.blocks)

    @given(st.integers(min_value=0, max_value=20))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_coverage_contains_entries(self, kernel, generator, seed):
        """Whatever the schedule, each thread covers its handler entries."""
        sti_a = _random_sti(kernel, generator, seed)
        sti_b = _random_sti(kernel, generator, seed + 500)
        result = run_concurrent(kernel, (sti_a, sti_b))
        for thread, sti in enumerate((sti_a, sti_b)):
            handler = kernel.syscalls[sti[0][0]].handler
            entry = kernel.functions[handler].entry_block
            assert entry in result.covered_blocks[thread]


class TestDeterminismProperties:
    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_concurrent_execution_is_a_function_of_hints(
        self, kernel, generator, seed
    ):
        sti_a = _random_sti(kernel, generator, seed)
        sti_b = _random_sti(kernel, generator, seed + 99)
        trace_a = run_sequential(kernel, sti_a)
        if not trace_a.iid_trace:
            return
        hints = [ScheduleHint(0, trace_a.iid_trace[len(trace_a.iid_trace) // 2])]
        r1 = run_concurrent(kernel, (sti_a, sti_b), hints=hints)
        r2 = run_concurrent(kernel, (sti_a, sti_b), hints=hints)
        assert r1.covered_blocks == r2.covered_blocks
        assert [a.iid for a in r1.accesses] == [a.iid for a in r2.accesses]
        assert r1.num_switches == r2.num_switches


class TestExplorationBudgets:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=8, deadline=None)
    def test_budgets_never_exceeded(
        self, dataset_builder, tiny_model, budget, cap
    ):
        from repro.core.mlpct import ExplorationConfig, MLPCTExplorer
        from repro.core.strategies import make_strategy

        config = ExplorationConfig(
            execution_budget=budget, inference_cap=cap, proposal_pool=cap
        )
        explorer = MLPCTExplorer(
            dataset_builder,
            predictor=tiny_model,
            strategy=make_strategy("S1"),
            config=config,
            seed=0,
        )
        entry_a, entry_b = dataset_builder.corpus.entries[:2]
        stats = explorer.explore_cti(entry_a, entry_b)
        assert stats.executions <= budget
        assert stats.inferences <= cap
        assert stats.executions <= stats.inferences


class TestScenarioAxisProperties:
    """Property checks over the N-thread / IRQ / TSO campaign axes."""

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=3))
    @settings(max_examples=10, deadline=None)
    def test_n_thread_unpruned_count_is_multinomial(self, nop_counts):
        from math import factorial

        from repro.oracle import explore_interleavings

        from tests._oracle_kernels import straightline_nops_n

        kernel, programs = straightline_nops_n(nop_counts)
        truth = explore_interleavings(kernel, programs, pruning="none")
        steps = [count + 2 for count in nop_counts]
        expected = factorial(sum(steps))
        for part in steps:
            expected //= factorial(part)
        assert truth.num_schedules == expected

    @given(st.integers(min_value=0, max_value=2_000))
    @settings(max_examples=10, deadline=None)
    def test_three_thread_pruning_preserves_behaviour(self, seed):
        """POR and sleep-set pruning on random 3-thread kernels drop
        schedules, never behaviours."""
        from repro.oracle import explore_interleavings

        from tests._oracle_kernels import random_tiny_kernel_n

        kernel, programs = random_tiny_kernel_n(seed, num_threads=3)
        por = explore_interleavings(kernel, programs, pruning="por")
        sleep = explore_interleavings(kernel, programs, pruning="sleep")
        assert sleep.behavior_key() == por.behavior_key()
        assert sleep.num_schedules <= por.num_schedules

    @given(st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_tso_execution_is_a_function_of_hints(
        self, kernel, generator, seed
    ):
        """TSO runs are deterministic: store-buffer drains are driven by
        the schedule, never by hidden state."""
        sti_a = _random_sti(kernel, generator, seed)
        sti_b = _random_sti(kernel, generator, seed + 99)
        trace_a = run_sequential(kernel, sti_a)
        if not trace_a.iid_trace:
            return
        hints = [ScheduleHint(0, trace_a.iid_trace[len(trace_a.iid_trace) // 2])]
        r1 = run_concurrent(kernel, (sti_a, sti_b), hints=hints, memory_model="tso")
        r2 = run_concurrent(kernel, (sti_a, sti_b), hints=hints, memory_model="tso")
        assert r1.covered_blocks == r2.covered_blocks
        assert [a.iid for a in r1.accesses] == [a.iid for a in r2.accesses]

    @given(st.integers(min_value=1, max_value=80))
    @settings(max_examples=10, deadline=None)
    def test_irq_injection_is_deterministic(self, kernel, generator, step):
        """The same irq_plan fires identically on repeated runs."""
        sti_a = _random_sti(kernel, generator, step)
        sti_b = _random_sti(kernel, generator, step + 7)
        handler = kernel.irq_handlers[0]
        plan = [(step, handler)]
        r1 = run_concurrent(kernel, (sti_a, sti_b), irq_plan=plan)
        r2 = run_concurrent(kernel, (sti_a, sti_b), irq_plan=plan)
        assert r1.irqs_fired == r2.irqs_fired
        assert r1.covered_blocks == r2.covered_blocks
        assert [a.iid for a in r1.accesses] == [a.iid for a in r2.accesses]

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=10, deadline=None)
    def test_hint_tuple_stream_matches_pair_stream(
        self, dataset_builder, seed
    ):
        """The N-thread proposal generaliser reproduces the historical
        two-thread RNG stream exactly."""
        from repro.execution.pct import propose_hint_pairs, propose_hint_tuples

        entry_a, entry_b = dataset_builder.corpus.entries[:2]
        pairs = propose_hint_pairs(
            rngmod.make_rng(seed), entry_a.trace, entry_b.trace, 12
        )
        tuples = propose_hint_tuples(
            rngmod.make_rng(seed), (entry_a.trace, entry_b.trace), 12
        )
        assert pairs == tuples


class TestKernelGenerationProperties:
    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=5, deadline=None)
    def test_any_seed_builds_valid_kernel(self, seed):
        config = KernelConfig(
            num_subsystems=2,
            functions_per_subsystem=3,
            syscalls_per_subsystem=4,
            segments_per_function=(2, 3),
            num_atomicity_bugs=1,
            num_order_bugs=1,
            num_data_races=1,
        )
        kernel = build_kernel(config, seed=seed)
        # Executable: every syscall runs to completion single-threaded.
        for name in kernel.syscall_names():
            trace = run_sequential(kernel, [(name, [1, 2, 3])])
            assert trace.completed
            assert trace.covered_blocks
