"""Tests for interrupt injection (§6: interrupt-handler coverage)."""

import pytest

from repro.errors import ExecutionError
from repro.execution import run_concurrent, run_sequential
from repro.execution.machine import Machine
from repro.execution.races import find_potential_races


class TestKernelIrqHandlers:
    def test_handlers_generated(self, kernel):
        assert kernel.irq_handlers
        for name in kernel.irq_handlers:
            assert name in kernel.functions

    def test_handlers_are_lock_and_call_free(self, kernel):
        from repro.kernel.isa import Opcode

        for name in kernel.irq_handlers:
            for block in kernel.blocks_of_function(name):
                for instruction in block.instructions:
                    assert instruction.opcode not in (
                        Opcode.LOCK,
                        Opcode.UNLOCK,
                        Opcode.CALL,
                    )

    def test_handlers_not_called_by_other_code(self, kernel):
        from repro.kernel.isa import Opcode

        irq_names = set(kernel.irq_handlers)
        for block in kernel.blocks.values():
            for instruction in block.instructions:
                if instruction.opcode is Opcode.CALL:
                    assert instruction.operand(0).name not in irq_names

    def test_handlers_survive_evolution(self, kernel):
        from repro.kernel import EvolutionConfig, evolve_kernel

        evolved = evolve_kernel(kernel, EvolutionConfig(version="vI"), seed=4)
        assert evolved.irq_handlers == kernel.irq_handlers


class TestFireIrq:
    def test_state_saved_and_restored(self, kernel):
        machine = Machine(kernel)
        name = kernel.syscall_names()[0]
        thread = machine.create_thread([(name, [1, 2])])
        for _ in range(10):
            machine.step(thread)
        saved = (
            list(thread.registers),
            thread.block_id,
            thread.index,
            list(thread.call_stack),
        )
        machine.fire_irq(thread, kernel.irq_handlers[0])
        assert list(thread.registers) == saved[0]
        assert thread.block_id == saved[1]
        assert thread.index == saved[2]
        assert list(thread.call_stack) == saved[3]
        # The interrupted thread still runs to completion afterwards.
        while machine.runnable(thread):
            machine.step(thread)

    def test_irq_coverage_recorded(self, kernel):
        from repro.execution.machine import TraceSink

        class Recorder(TraceSink):
            def __init__(self):
                self.blocks = set()

            def on_block_entry(self, thread, block_id):
                self.blocks.add(block_id)

        recorder = Recorder()
        machine = Machine(kernel, recorder)
        thread = machine.create_thread([(kernel.syscall_names()[0], [1])])
        for _ in range(5):
            machine.step(thread)
        handler = kernel.irq_handlers[0]
        machine.fire_irq(thread, handler)
        entry = kernel.functions[handler].entry_block
        assert entry in recorder.blocks

    def test_unknown_handler_rejected(self, kernel):
        machine = Machine(kernel)
        thread = machine.create_thread([(kernel.syscall_names()[0], [1])])
        machine.step(thread)
        with pytest.raises(ExecutionError):
            machine.fire_irq(thread, "no_such_handler")


class TestIrqPlans:
    def test_plan_fires_and_adds_coverage(self, kernel):
        names = kernel.syscall_names()
        stis = ([(names[0], [1])], [(names[1], [2])])
        plain = run_concurrent(kernel, stis)
        handler = kernel.irq_handlers[0]
        with_irq = run_concurrent(kernel, stis, irq_plan=[(5, handler)])
        assert with_irq.irqs_fired == 1
        entry = kernel.functions[handler].entry_block
        assert entry in with_irq.all_covered()
        assert entry not in plain.all_covered()

    def test_plan_determinism(self, kernel):
        names = kernel.syscall_names()
        stis = ([(names[0], [1])], [(names[1], [2])])
        plan = [(5, kernel.irq_handlers[0]), (40, kernel.irq_handlers[-1])]
        a = run_concurrent(kernel, stis, irq_plan=plan)
        b = run_concurrent(kernel, stis, irq_plan=plan)
        assert a.covered_blocks == b.covered_blocks
        assert a.irqs_fired == b.irqs_fired == 2

    def test_irq_code_can_race_with_threads(self, kernel):
        """IRQ accesses attribute to the interrupted thread's id, so IRQ
        writes can race with the *other* thread's accesses."""
        names = kernel.syscall_names()
        # Same-subsystem syscalls + that subsystem's IRQ handler.
        sub = kernel.syscalls[names[0]].subsystem
        handler = next(
            h for h in kernel.irq_handlers
            if kernel.functions[h].subsystem == sub
        )
        stis = ([(names[0], [1])], [(names[1], [2])])
        base = run_concurrent(kernel, stis)
        base_races = find_potential_races(base.accesses)
        boosted = run_concurrent(
            kernel, stis, irq_plan=[(step, handler) for step in (5, 25, 45)]
        )
        boosted_races = find_potential_races(boosted.accesses)
        # IRQ traffic can only add potential communication; counting both
        # runs' unique races, the IRQ run contributes pairs of its own.
        assert boosted.irqs_fired == 3
        assert len(boosted_races | base_races) >= len(base_races)
