"""Tests for the NumPy autograd: every op numerically grad-checked."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.ml.autograd import (
    Parameter,
    Tensor,
    bce_with_logits,
    concat_rows,
    dropout,
    gather_rows,
    masked_mean,
    matmul,
    propagate,
    relu,
    softmax_cross_entropy,
    spmm,
)

EPS = 1e-6
TOL = 1e-6


def numeric_grad(parameter, compute_loss):
    grad = np.zeros_like(parameter.data)
    flat = parameter.data.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        up = compute_loss()
        flat[i] = original - EPS
        down = compute_loss()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * EPS)
    return grad


def check(parameter, build_loss):
    loss = build_loss()
    loss.backward()
    analytic = parameter.grad.copy()
    numeric = numeric_grad(parameter, lambda: build_loss().item())
    assert np.abs(analytic - numeric).max() < 1e-4


class TestElementwise:
    def test_add_broadcast_bias(self):
        rng = np.random.default_rng(0)
        x = Tensor(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4,)), name="b")
        check(b, lambda: ((x + b) * (x + b)).sum())

    def test_mul_gradients(self):
        rng = np.random.default_rng(1)
        a = Parameter(rng.normal(size=(2, 3)), name="a")
        c = Tensor(rng.normal(size=(2, 3)))
        check(a, lambda: (a * c).sum())

    def test_sub_and_neg(self):
        rng = np.random.default_rng(2)
        a = Parameter(rng.normal(size=(2, 2)), name="a")
        check(a, lambda: ((a - 3.0) * (-a)).sum())

    def test_mean(self):
        rng = np.random.default_rng(3)
        a = Parameter(rng.normal(size=(5,)), name="a")
        check(a, lambda: (a * a).mean())

    def test_relu(self):
        rng = np.random.default_rng(4)
        a = Parameter(rng.normal(size=(4, 4)) + 0.05, name="a")
        check(a, lambda: (relu(a) * relu(a)).sum())


class TestMatmul:
    def test_left_gradient(self):
        rng = np.random.default_rng(5)
        a = Parameter(rng.normal(size=(3, 4)), name="a")
        b = Tensor(rng.normal(size=(4, 2)))
        check(a, lambda: matmul(a, b).sum())

    def test_right_gradient(self):
        rng = np.random.default_rng(6)
        a = Tensor(rng.normal(size=(3, 4)))
        b = Parameter(rng.normal(size=(4, 2)), name="b")
        check(b, lambda: (matmul(a, b) * matmul(a, b)).sum())


class TestGatherAndPropagate:
    def test_gather_rows_2d_indices(self):
        rng = np.random.default_rng(7)
        table = Parameter(rng.normal(size=(6, 3)), name="t")
        ids = np.array([[0, 2, 5], [1, 1, 3]])
        check(table, lambda: (gather_rows(table, ids) * 0.5).sum())

    def test_propagate(self):
        rng = np.random.default_rng(8)
        h = Parameter(rng.normal(size=(5, 3)), name="h")
        src = np.array([0, 1, 2, 4])
        dst = np.array([1, 2, 2, 0])
        weights = np.array([1.0, 0.5, 0.5, 2.0])
        def loss():
            out = propagate(h, src, dst, 5, weights)
            return (out * out).sum()

        check(h, loss)

    def test_spmm_matches_propagate(self):
        rng = np.random.default_rng(9)
        h_data = rng.normal(size=(5, 3))
        src = np.array([0, 1, 2, 4])
        dst = np.array([1, 2, 2, 0])
        weights = np.array([1.0, 0.5, 0.5, 2.0])
        matrix = sp.csr_matrix((weights, (dst, src)), shape=(5, 5))
        dense = propagate(Tensor(h_data), src, dst, 5, weights).data
        sparse = spmm(matrix, Tensor(h_data)).data
        assert np.allclose(dense, sparse)

    def test_spmm_gradient(self):
        rng = np.random.default_rng(10)
        h = Parameter(rng.normal(size=(4, 2)), name="h")
        matrix = sp.csr_matrix(
            (np.array([1.0, 0.5]), (np.array([0, 2]), np.array([1, 3]))),
            shape=(4, 4),
        )
        check(h, lambda: (spmm(matrix, h) * spmm(matrix, h)).sum())


class TestPoolingAndLosses:
    def test_masked_mean(self):
        rng = np.random.default_rng(11)
        x = Parameter(rng.normal(size=(2, 4, 3)), name="x")
        mask = np.array([[1, 1, 0, 0], [1, 1, 1, 1]])
        check(x, lambda: (masked_mean(x, mask) * masked_mean(x, mask)).sum())

    def test_bce_gradient(self):
        rng = np.random.default_rng(12)
        z = Parameter(rng.normal(size=(6, 1)), name="z")
        y = (rng.random((6, 1)) > 0.5).astype(float)
        check(z, lambda: bce_with_logits(z, y))

    def test_bce_weighted_gradient(self):
        rng = np.random.default_rng(13)
        z = Parameter(rng.normal(size=(5, 1)), name="z")
        y = (rng.random((5, 1)) > 0.5).astype(float)
        w = rng.random((5, 1)) + 0.1
        check(z, lambda: bce_with_logits(z, y, w))

    def test_bce_extreme_logits_stable(self):
        z = Tensor(np.array([[1000.0], [-1000.0]]), requires_grad=True)
        y = np.array([[1.0], [0.0]])
        loss = bce_with_logits(z, y)
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_softmax_ce_gradient(self):
        rng = np.random.default_rng(14)
        logits = Parameter(rng.normal(size=(4, 6)), name="l")
        targets = np.array([0, 5, 2, 2])
        check(logits, lambda: softmax_cross_entropy(logits, targets))

    def test_concat_rows_gradient(self):
        rng = np.random.default_rng(15)
        a = Parameter(rng.normal(size=(3, 2)), name="a")
        b = Tensor(rng.normal(size=(3, 4)))
        check(a, lambda: (concat_rows([a, b]) * concat_rows([a, b])).sum())


class TestDropout:
    def test_identity_when_not_training(self):
        rng = np.random.default_rng(16)
        x = Tensor(rng.normal(size=(4, 4)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_preserves_expectation_roughly(self):
        rng = np.random.default_rng(17)
        x = Tensor(np.ones((200, 50)))
        out = dropout(x, 0.3, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.05


class TestBackwardPlumbing:
    def test_grad_accumulates_across_uses(self):
        a = Parameter(np.array([2.0]), name="a")
        loss = (a * a) + (a * 3.0)
        loss.backward()
        # d/da (a^2 + 3a) = 2a + 3 = 7
        assert np.allclose(a.grad, [7.0])

    def test_no_grad_for_constant_tensors(self):
        x = Tensor(np.ones((2, 2)))
        y = x * 2.0
        y.backward(np.ones((2, 2)))
        assert x.grad is None

    def test_zero_grad(self):
        a = Parameter(np.array([1.0]), name="a")
        (a * a).backward()
        a.zero_grad()
        assert a.grad is None

    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=20, deadline=None)
    def test_unbroadcast_shapes(self, rows, cols):
        """Adding a row vector to a matrix back-propagates correct shapes."""
        rng = np.random.default_rng(rows * 10 + cols)
        m = Parameter(rng.normal(size=(rows, cols)), name="m")
        v = Parameter(rng.normal(size=(1, cols)), name="v")
        loss = ((m + v) * (m + v)).sum()
        loss.backward()
        assert m.grad.shape == (rows, cols)
        assert v.grad.shape == (1, cols)
