"""Tests for dataset-builder caching and bulk example construction."""

import numpy as np
import pytest

from repro.graphs.dataset import GraphDatasetBuilder


class TestTemplateCacheEviction:
    def test_cache_capped(self, kernel):
        builder = GraphDatasetBuilder(kernel, seed=1)
        builder.grow_corpus(rounds=120)
        builder._template_cache_cap = 4
        entries = builder.corpus.entries
        pairs = [
            (entries[i], entries[j])
            for i in range(3)
            for j in range(3, 6)
        ]
        for entry_a, entry_b in pairs:
            builder.template_for(entry_a, entry_b)
        assert len(builder._template_cache) <= 4

    def test_eviction_drops_oldest(self, kernel):
        builder = GraphDatasetBuilder(kernel, seed=1)
        builder.grow_corpus(rounds=120)
        builder._template_cache_cap = 2
        entries = builder.corpus.entries
        t1 = builder.template_for(entries[0], entries[1])
        builder.template_for(entries[1], entries[2])
        builder.template_for(entries[2], entries[3])  # evicts (0,1)
        t1_again = builder.template_for(entries[0], entries[1])
        assert t1_again is not t1  # rebuilt after eviction


class TestExamplesForCti:
    def test_requested_interleavings(self, dataset_builder):
        entries = dataset_builder.corpus.entries
        examples = dataset_builder.examples_for_cti(
            (entries[0], entries[1]), interleavings=5
        )
        assert 1 <= len(examples) <= 5
        keys = {e.graph.hints for e in examples}
        assert len(keys) == len(examples)  # distinct schedules

    def test_results_dropped_by_default(self, dataset_builder):
        entries = dataset_builder.corpus.entries
        examples = dataset_builder.examples_for_cti(
            (entries[0], entries[2]), interleavings=2
        )
        assert all(e.result is None for e in examples)

    def test_results_kept_on_request(self, dataset_builder):
        entries = dataset_builder.corpus.entries
        examples = dataset_builder.examples_for_cti(
            (entries[0], entries[3]), interleavings=2, keep_results=True
        )
        assert all(e.result is not None for e in examples)


class TestBuildCtiPool:
    def test_pool_members_distinct(self, dataset_builder):
        pool = dataset_builder.build_cti_pool(10)
        assert len(pool) == 10
        for entry_a, entry_b in pool:
            assert entry_a.sti.sti_id != entry_b.sti.sti_id
