"""Model checkpoints (versioned, checksummed, atomic) and the other
atomic artefact writes the pipeline does."""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.errors import CheckpointError
from repro.ml.pic import CHECKPOINT_SCHEMA, PICModel

pytestmark = pytest.mark.slow  # CI recovery suite: run via `-m slow`


class TestModelCheckpoint:
    def test_round_trip_is_exact(self, tiny_model, small_splits, tmp_path):
        path = str(tmp_path / "model.npz")
        tiny_model.save(path)
        loaded = PICModel.load(path)
        assert loaded.config == tiny_model.config
        assert loaded.threshold == tiny_model.threshold
        graph = small_splits.evaluation[0].graph
        np.testing.assert_array_equal(
            loaded.predict_proba(graph), tiny_model.predict_proba(graph)
        )

    def test_save_leaves_no_temp_files(self, tiny_model, tmp_path):
        tiny_model.save(str(tmp_path / "model.npz"))
        assert sorted(os.listdir(tmp_path)) == ["model.npz"]

    def test_truncated_checkpoint_refused(self, tiny_model, tmp_path):
        path = str(tmp_path / "model.npz")
        tiny_model.save(path)
        with open(path, "rb") as handle:
            data = handle.read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 2])
        with pytest.raises(CheckpointError):
            PICModel.load(path)

    def test_garbage_file_refused(self, tmp_path):
        path = str(tmp_path / "model.npz")
        with open(path, "wb") as handle:
            handle.write(b"this is not a model checkpoint")
        with pytest.raises(CheckpointError):
            PICModel.load(path)

    def test_headerless_archive_refused(self, tmp_path):
        path = str(tmp_path / "model.npz")
        np.savez(open(path, "wb"), weights=np.zeros(3))
        with pytest.raises(CheckpointError, match="lacks"):
            PICModel.load(path)

    def test_tampered_payload_fails_checksum(self, tiny_model, tmp_path):
        path = str(tmp_path / "model.npz")
        tiny_model.save(path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["pic.w_out"] = payload["pic.w_out"] + 1.0
        np.savez(open(path, "wb"), **payload)
        with pytest.raises(CheckpointError, match="checksum"):
            PICModel.load(path)

    def test_wrong_schema_refused(self, tiny_model, tmp_path):
        path = str(tmp_path / "model.npz")
        tiny_model.save(path)
        with np.load(path) as archive:
            payload = {key: archive[key] for key in archive.files}
        payload["__schema__"] = np.asarray([CHECKPOINT_SCHEMA + 1])
        np.savez(open(path, "wb"), **payload)
        with pytest.raises(CheckpointError, match="schema"):
            PICModel.load(path)

    def test_restore_validates_architecture(self, tiny_model, tmp_path):
        path = str(tmp_path / "model.npz")
        tiny_model.save(path)
        wrong = replace(
            tiny_model.config, hidden_dim=tiny_model.config.hidden_dim + 8
        )
        with pytest.raises(CheckpointError, match="incompatible"):
            PICModel.restore(path, wrong)

    def test_restore_allows_rename(self, tiny_model, small_splits, tmp_path):
        path = str(tmp_path / "model.npz")
        tiny_model.save(path)
        renamed = replace(tiny_model.config, name="PIC-renamed")
        restored = PICModel.restore(path, renamed)
        assert restored.config.name == "PIC-renamed"
        graph = small_splits.evaluation[0].graph
        np.testing.assert_array_equal(
            restored.predict_proba(graph), tiny_model.predict_proba(graph)
        )


class TestAtomicArtefacts:
    def test_save_kernel_is_atomic_and_round_trips(self, kernel, tmp_path):
        from repro.kernel.serialize import load_kernel, save_kernel

        path = tmp_path / "kernel.json"
        save_kernel(kernel, str(path))
        assert sorted(os.listdir(tmp_path)) == ["kernel.json"]
        loaded = load_kernel(str(path))
        assert loaded.version == kernel.version
        assert set(loaded.syscalls) == set(kernel.syscalls)

    def test_jsonlines_sink_is_durable(self, tmp_path):
        from repro.obs.sink import JsonLinesSink, read_events

        path = tmp_path / "trace.jsonl"
        sink = JsonLinesSink(str(path))
        sink.write({"event": "point", "seq": 0})
        # events stream into a temp file; the destination appears only on
        # a clean close (a crash mid-run never leaves a torn trace)
        assert not path.exists()
        sink.close()
        assert read_events(str(path)) == [{"event": "point", "seq": 0}]
        assert sorted(os.listdir(tmp_path)) == ["trace.jsonl"]
        sink.close()  # idempotent

    def test_sink_close_replaces_previous_trace(self, tmp_path):
        from repro.obs.sink import JsonLinesSink, read_events

        path = tmp_path / "trace.jsonl"
        path.write_text('{"event": "old", "seq": 0}\n')
        sink = JsonLinesSink(str(path))
        sink.write({"event": "new", "seq": 0})
        assert read_events(str(path)) == [{"event": "old", "seq": 0}]
        sink.close()
        assert read_events(str(path)) == [{"event": "new", "seq": 0}]

    def test_sink_rejects_directory_destination(self, tmp_path):
        from repro.obs.sink import JsonLinesSink

        with pytest.raises(IsADirectoryError):
            JsonLinesSink(str(tmp_path))

    def test_sink_unwritable_directory_fails_at_construction(self, tmp_path):
        from repro.obs.sink import JsonLinesSink

        with pytest.raises(OSError):
            JsonLinesSink(str(tmp_path / "no-such-dir" / "t.jsonl"))

    def test_atomic_write_leaves_no_temp_on_success(self, tmp_path):
        from repro.resilience.atomic import atomic_write_text

        path = tmp_path / "artefact.txt"
        atomic_write_text(str(path), "first\n")
        atomic_write_text(str(path), "second\n")
        assert path.read_text() == "second\n"
        assert sorted(os.listdir(tmp_path)) == ["artefact.txt"]

    def test_probe_writable(self, tmp_path):
        from repro.resilience.atomic import probe_writable

        probe_writable(str(tmp_path / "fine.npz"))  # no exception
        assert os.listdir(tmp_path) == []  # probe cleans up after itself
        with pytest.raises(OSError):
            probe_writable(str(tmp_path / "no-such-dir" / "x.npz"))
        with pytest.raises(OSError):
            probe_writable(str(tmp_path))  # a directory is not writable
