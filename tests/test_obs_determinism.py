"""Telemetry must be invisible to results: on/off runs are identical.

The acceptance contract of the observability layer is that enabling it
changes *nothing* about what the pipeline computes — no RNG stream is
consumed, no result is perturbed. These tests run the same seeded
pipeline twice, once with telemetry off and once with a live registry,
and require byte-identical training histories, model parameters, and
campaign curves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core import ExplorationConfig, Snowcat, SnowcatConfig
from repro.kernel import build_kernel
from repro.obs import MemorySink, MetricsRegistry
from tests.conftest import SMALL_KERNEL_CONFIG

TINY_CONFIG = SnowcatConfig(
    seed=5,
    corpus_rounds=60,
    dataset_ctis=5,
    train_interleavings=3,
    evaluation_interleavings=3,
    pretrain_epochs=1,
    epochs=2,
    token_dim=16,
    hidden_dim=24,
    num_layers=2,
    exploration=ExplorationConfig(
        execution_budget=5, inference_cap=30, proposal_pool=30
    ),
)


def _run_pipeline():
    """Train a tiny Snowcat and run a tiny campaign; returns artefacts."""
    kernel = build_kernel(SMALL_KERNEL_CONFIG, seed=5)
    snowcat = Snowcat(kernel, TINY_CONFIG)
    training = snowcat.train()
    explorer = snowcat.mlpct_explorer("S1")
    campaign = snowcat.run_campaign(explorer, num_ctis=2)
    return snowcat, training, campaign


@pytest.fixture(scope="module")
def paired_runs():
    assert obs.active() is None
    baseline = _run_pipeline()
    with obs.use_registry(MetricsRegistry(sink=MemorySink())) as registry:
        traced = _run_pipeline()
        registry.close()
    assert obs.active() is None
    return baseline, traced, registry


class TestTrainingDeterminism:
    def test_history_identical(self, paired_runs):
        (_, base_training, _), (_, traced_training, _), _ = paired_runs
        assert base_training.history == traced_training.history
        assert base_training.best_epoch == traced_training.best_epoch
        assert base_training.threshold == traced_training.threshold

    def test_model_parameters_byte_identical(self, paired_runs):
        (base_snowcat, _, _), (traced_snowcat, _, _), _ = paired_runs
        base_state = base_snowcat.model.state_dict()
        traced_state = traced_snowcat.model.state_dict()
        assert base_state.keys() == traced_state.keys()
        for key in base_state:
            base_array = np.asarray(base_state[key])
            traced_array = np.asarray(traced_state[key])
            assert base_array.tobytes() == traced_array.tobytes(), key

    def test_startup_hours_identical(self, paired_runs):
        (base_snowcat, _, _), (traced_snowcat, _, _), _ = paired_runs
        assert base_snowcat.startup_hours == traced_snowcat.startup_hours


class TestCampaignDeterminism:
    def test_history_and_ledger_identical(self, paired_runs):
        (_, _, base_campaign), (_, _, traced_campaign), _ = paired_runs
        assert base_campaign.history == traced_campaign.history
        assert base_campaign.bug_history == traced_campaign.bug_history
        assert base_campaign.manifested_bugs == traced_campaign.manifested_bugs
        assert base_campaign.ledger.executions == traced_campaign.ledger.executions
        assert base_campaign.ledger.inferences == traced_campaign.ledger.inferences
        assert base_campaign.ledger.total_hours == traced_campaign.ledger.total_hours

    def test_per_cti_stats_identical(self, paired_runs):
        (_, _, base_campaign), (_, _, traced_campaign), _ = paired_runs
        assert len(base_campaign.per_cti) == len(traced_campaign.per_cti)
        for base_stats, traced_stats in zip(
            base_campaign.per_cti, traced_campaign.per_cti
        ):
            assert base_stats == traced_stats


class TestTraceCoverage:
    """The traced run must attribute work to every pipeline stage."""

    def test_all_stages_present(self, paired_runs):
        _, _, registry = paired_runs
        names = {event["name"] for event in registry.sink.events
                 if event["event"] == "span"}
        for required in (
            "corpus.grow",
            "dataset.build_splits",
            "pretrain.encoder",
            "train.pipeline",
            "train.pic",
            "campaign.run",
            "campaign.cti",
        ):
            assert required in names, required

    def test_decision_counters_recorded(self, paired_runs):
        _, (_, _, campaign), registry = paired_runs
        counters = {
            name: counter.snapshot()
            for name, counter in registry.counters.items()
        }
        assert counters["campaign.executions"] == campaign.ledger.executions
        assert counters["campaign.inferences"] == campaign.ledger.inferences
        assert (
            counters["campaign.executions_saved"]
            == campaign.ledger.inferences - campaign.ledger.executions
        )
        assert counters["dataset.graphs_labeled"] > 0
        # Campaign executions and dataset labeling both go through the
        # execution machine.
        assert (
            counters["execution.runs"]
            >= counters["campaign.executions"]
            + counters["dataset.graphs_labeled"]
        )

    def test_per_epoch_points_recorded(self, paired_runs):
        _, _, registry = paired_runs
        points = [event for event in registry.sink.events
                  if event["event"] == "point" and event["name"] == "train.epoch"]
        assert len(points) == TINY_CONFIG.epochs
        for event in points:
            assert set(event["fields"]) >= {
                "epoch", "train_loss", "validation_urb_ap", "seconds"
            }
