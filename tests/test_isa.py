"""Tests for the synthetic ISA: rendering and tokenization."""

import pytest
from hypothesis import given, strategies as st

from repro.kernel.isa import (
    Instruction,
    Opcode,
    Operand,
    asm_text,
    render_instruction,
    tokenize_instruction,
)


def make(opcode, *operands):
    return Instruction(opcode=opcode, operands=tuple(operands))


class TestRendering:
    def test_nop(self):
        assert render_instruction(make(Opcode.NOP)) == "nop"

    def test_load(self):
        instr = make(Opcode.LOAD, Operand.make_reg(3), Operand.make_addr(42))
        assert render_instruction(instr) == "load r3, [v42]"

    def test_storei(self):
        instr = make(Opcode.STOREI, Operand.make_addr(7), Operand.make_imm(1))
        assert render_instruction(instr) == "storei [v7], $1"

    def test_branch(self):
        instr = make(Opcode.JNZ, Operand.make_reg(5), Operand.make_label(12))
        assert render_instruction(instr) == "jnz r5, .B12"

    def test_call(self):
        instr = make(Opcode.CALL, Operand.make_fn("sub0_helper1"))
        assert render_instruction(instr) == "call sub0_helper1"

    def test_lock(self):
        instr = make(Opcode.LOCK, Operand.make_lock("sub0.lock0"))
        assert render_instruction(instr) == "lock sub0.lock0"

    def test_asm_text_joins_lines(self):
        text = asm_text([make(Opcode.NOP), make(Opcode.RET)])
        assert text == "nop\nret"


class TestTokenization:
    def test_numeric_elision_for_immediates(self):
        instr = make(Opcode.MOVI, Operand.make_reg(1), Operand.make_imm(123))
        tokens = tokenize_instruction(instr)
        assert tokens == ["movi", "r1", "$imm"]
        assert "123" not in " ".join(tokens)

    def test_numeric_elision_for_addresses(self):
        instr = make(Opcode.LOAD, Operand.make_reg(2), Operand.make_addr(999))
        tokens = tokenize_instruction(instr)
        assert "999" not in " ".join(tokens)
        assert "var" in tokens

    def test_labels_elided(self):
        instr = make(Opcode.JMP, Operand.make_label(55))
        assert tokenize_instruction(instr) == ["jmp", ".label"]

    def test_function_names_elided(self):
        instr = make(Opcode.CALL, Operand.make_fn("secret_fn"))
        tokens = tokenize_instruction(instr)
        assert "secret_fn" not in tokens
        assert "@fn" in tokens

    def test_registers_preserved(self):
        instr = make(Opcode.ADD, Operand.make_reg(3), Operand.make_reg(7))
        assert tokenize_instruction(instr) == ["add", "r3", "r7"]

    @given(st.integers(min_value=-(10**6), max_value=10**6))
    def test_no_digits_leak_from_operand_payloads(self, value):
        instr = make(Opcode.ADDI, Operand.make_reg(0), Operand.make_imm(value))
        tokens = tokenize_instruction(instr)
        # Only the register token may contain a digit (r0..r7).
        for token in tokens:
            if token.startswith("r") and len(token) == 2:
                continue
            assert not any(ch.isdigit() for ch in token)


class TestInstructionProperties:
    def test_memory_address_of_load(self):
        instr = make(Opcode.LOAD, Operand.make_reg(0), Operand.make_addr(5))
        assert instr.memory_address == 5
        assert not instr.is_write

    def test_memory_address_of_store(self):
        instr = make(Opcode.STORE, Operand.make_addr(9), Operand.make_reg(1))
        assert instr.memory_address == 9
        assert instr.is_write

    def test_non_memory_has_no_address(self):
        assert make(Opcode.NOP).memory_address is None

    def test_terminators(self):
        assert make(Opcode.RET).is_terminator
        assert make(Opcode.JMP, Operand.make_label(1)).is_terminator
        assert not make(Opcode.NOP).is_terminator

    def test_unknown_operand_kind_rejected(self):
        with pytest.raises(ValueError):
            render_instruction(make(Opcode.NOP, Operand(kind="bogus")))
