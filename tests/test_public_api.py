"""The public API surface: everything README/TUTORIAL references imports."""

import importlib

import pytest


PUBLIC_SYMBOLS = {
    "repro": ["ReproError", "__version__"],
    "repro.kernel": [
        "KernelConfig",
        "build_kernel",
        "EvolutionConfig",
        "evolve_kernel",
        "save_kernel",
        "load_kernel",
        "Kernel",
        "BugKind",
        "BugSpec",
    ],
    "repro.execution": [
        "run_sequential",
        "run_concurrent",
        "ScheduleHint",
        "PctScheduler",
        "propose_hint_pairs",
        "RaceDetector",
        "find_potential_races",
        "alias_coverage",
        "Machine",
    ],
    "repro.fuzz": ["STI", "SyscallCall", "StiGenerator", "Corpus"],
    "repro.analysis": ["build_kernel_cfg", "find_urbs", "urb_frontier"],
    "repro.graphs": [
        "CTGraph",
        "CTIGraphTemplate",
        "build_ct_graph",
        "build_ct_template",
        "GraphDatasetBuilder",
        "CTExample",
        "Vocabulary",
    ],
    "repro.ml": [
        "PICModel",
        "PICConfig",
        "train_pic",
        "fine_tune_pic",
        "AllPositive",
        "FairCoin",
        "BiasedCoin",
        "average_precision",
        "tune_threshold",
        "Adam",
        "Tensor",
    ],
    "repro.core": [
        "Snowcat",
        "SnowcatConfig",
        "MLPCTExplorer",
        "PCTExplorer",
        "run_campaign",
        "make_strategy",
        "FilterModel",
        "DirectedScheduleSearch",
        "CostLedger",
        "OverlapPrioritizedGenerator",
    ],
    "repro.integrations": ["RazzerHarness", "RazzerVariant", "SnowboardHarness"],
    "repro.oracle": [
        "ExhaustiveExplorer",
        "GroundTruth",
        "explore_interleavings",
        "DifferentialRunner",
        "ConformanceReport",
        "QualityConfig",
        "run_quality_gate",
        "measure_quality",
    ],
    "repro.reporting": [
        "format_table",
        "format_series",
        "format_timeline",
        "downsample_history",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_SYMBOLS))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for symbol in PUBLIC_SYMBOLS[module_name]:
        assert hasattr(module, symbol), f"{module_name}.{symbol} missing"


def test_all_lists_are_accurate():
    """Every name in __all__ must actually exist."""
    for module_name in PUBLIC_SYMBOLS:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists {name}"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
