"""Tests for the encoder, GNN, PIC model, optimizer and baselines."""

import numpy as np
import pytest

from repro import rng as rngmod
from repro.errors import CheckpointError, ModelError
from repro.graphs.tokens import build_vocabulary
from repro.ml.autograd import Parameter, Tensor
from repro.ml.baselines import (
    AllPositive,
    BiasedCoin,
    FairCoin,
    observed_urb_positive_rate,
)
from repro.ml.encoder import AsmEncoder, EncoderConfig, pretrain_encoder
from repro.ml.gnn import GNNConfig, RelationalGCN
from repro.ml.optim import Adam
from repro.ml.pic import PICConfig, PICModel


@pytest.fixture(scope="module")
def vocabulary(kernel):
    return build_vocabulary(kernel)


@pytest.fixture(scope="module")
def sample_graph(small_splits):
    return small_splits.train[0].graph


class TestAdam:
    def test_minimises_quadratic(self):
        x = Parameter(np.array([5.0, -3.0]), name="x")
        optimizer = Adam([x], learning_rate=0.1)
        for _ in range(300):
            optimizer.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            optimizer.step()
        assert np.abs(x.data).max() < 0.05

    def test_clip_norm_bounds_update(self):
        x = Parameter(np.array([1e6]), name="x")
        optimizer = Adam([x], learning_rate=0.1, clip_norm=1.0)
        optimizer.zero_grad()
        (x * x).backward()
        assert np.abs(x.grad).max() > 1.0
        optimizer._clip()
        assert np.abs(x.grad).max() <= 1.0 + 1e-9

    def test_skips_parameters_without_grad(self):
        x = Parameter(np.array([1.0]), name="x")
        optimizer = Adam([x], learning_rate=0.1)
        optimizer.step()  # no grad: no crash, no change
        assert x.data[0] == 1.0


class TestEncoder:
    def test_output_shape(self, vocabulary):
        encoder = AsmEncoder(EncoderConfig(vocab_size=len(vocabulary)), seed=0)
        ids = np.zeros((5, 10), dtype=np.int64)
        out = encoder.encode(ids, vocabulary.pad_id)
        assert out.shape == (5, encoder.config.output_dim)

    def test_pretraining_reduces_loss(self, kernel, vocabulary):
        encoder = AsmEncoder(
            EncoderConfig(vocab_size=len(vocabulary), token_dim=16, output_dim=24),
            seed=0,
        )
        result = pretrain_encoder(
            encoder, kernel, vocabulary, epochs=3, seed=0, batch_size=128
        )
        assert result.improved
        assert result.final_loss < result.losses[0]

    def test_padding_ignored_in_pooling(self, vocabulary):
        encoder = AsmEncoder(EncoderConfig(vocab_size=len(vocabulary)), seed=0)
        short = np.full((1, 8), vocabulary.pad_id, dtype=np.int64)
        short[0, :3] = [5, 6, 7]
        longer = np.full((1, 16), vocabulary.pad_id, dtype=np.int64)
        longer[0, :3] = [5, 6, 7]
        a = encoder.encode(short, vocabulary.pad_id).data
        b = encoder.encode(longer, vocabulary.pad_id).data
        assert np.allclose(a, b)


class TestGNN:
    def test_forward_shape(self, sample_graph):
        gnn = RelationalGCN(GNNConfig(hidden_dim=16, num_layers=2), seed=1)
        h = Tensor(np.random.default_rng(0).normal(size=(sample_graph.num_nodes, 16)))
        out = gnn.forward(h, sample_graph)
        assert out.shape == (sample_graph.num_nodes, 16)

    def test_forward_numpy_matches_forward(self, sample_graph):
        gnn = RelationalGCN(GNNConfig(hidden_dim=16, num_layers=3), seed=1)
        h = np.random.default_rng(0).normal(size=(sample_graph.num_nodes, 16))
        slow = gnn.forward(Tensor(h), sample_graph).data
        fast = gnn.forward_numpy(h, sample_graph)
        assert np.allclose(slow, fast)

    def test_messages_flow_along_edges(self, sample_graph):
        """Zeroing one node's input must change its neighbours' output."""
        gnn = RelationalGCN(GNNConfig(hidden_dim=8, num_layers=1), seed=2)
        rng = np.random.default_rng(1)
        h = rng.normal(size=(sample_graph.num_nodes, 8))
        base = gnn.forward_numpy(h, sample_graph)
        src = int(sample_graph.edges[0, 0])
        dst = int(sample_graph.edges[0, 1])
        h2 = h.copy()
        h2[src] = 0.0
        changed = gnn.forward_numpy(h2, sample_graph)
        assert not np.allclose(base[dst], changed[dst])


class TestPICModel:
    def _config(self, vocabulary, **overrides):
        params = dict(
            vocab_size=len(vocabulary),
            pad_id=vocabulary.pad_id,
            token_dim=8,
            hidden_dim=12,
            num_layers=2,
            name="PIC-test",
        )
        params.update(overrides)
        return PICConfig(**params)

    def test_predict_proba_shape_and_range(self, vocabulary, sample_graph):
        model = PICModel(self._config(vocabulary), seed=0)
        proba = model.predict_proba(sample_graph)
        assert proba.shape == (sample_graph.num_nodes,)
        assert (proba >= 0).all() and (proba <= 1).all()

    def test_predict_uses_threshold(self, vocabulary, sample_graph):
        model = PICModel(self._config(vocabulary), seed=0)
        model.threshold = 0.0
        assert model.predict(sample_graph).all()
        model.threshold = 1.1
        assert not model.predict(sample_graph).any()

    def test_fast_path_matches_autograd_path(self, vocabulary, sample_graph):
        model = PICModel(self._config(vocabulary), seed=0)
        z = model.logits(sample_graph, training=False).data[:, 0]
        slow = 1.0 / (1.0 + np.exp(-z))
        fast = model.predict_proba(sample_graph)
        assert np.allclose(slow, fast)

    def test_loss_decreases_with_training(self, vocabulary, small_splits):
        model = PICModel(self._config(vocabulary), seed=0)
        example = small_splits.train[0]
        optimizer = Adam(model.parameters(), learning_rate=3e-3)
        first = model.loss(example).item()
        for _ in range(15):
            optimizer.zero_grad()
            loss = model.loss(example)
            loss.backward()
            optimizer.step()
        assert model.loss(example, training=False).item() < first

    def test_checkpoint_roundtrip(self, tmp_path, vocabulary, sample_graph):
        model = PICModel(self._config(vocabulary), seed=0)
        model.threshold = 0.3
        path = str(tmp_path / "model.npz")
        model.save(path)
        restored = PICModel.restore(path, self._config(vocabulary), seed=99)
        assert restored.threshold == 0.3
        assert np.allclose(
            model.predict_proba(sample_graph), restored.predict_proba(sample_graph)
        )

    def test_load_rejects_shape_mismatch(self, vocabulary):
        model = PICModel(self._config(vocabulary), seed=0)
        state = model.state_dict()
        state["pic.w_out"] = np.zeros((99, 1))
        with pytest.raises(CheckpointError):
            model.load_state_dict(state)

    def test_clone_is_independent(self, vocabulary, sample_graph):
        model = PICModel(self._config(vocabulary), seed=0)
        twin = model.clone(name="twin")
        before = model.predict_proba(sample_graph)
        twin.w_out.data += 10.0
        after = model.predict_proba(sample_graph)
        assert np.allclose(before, after)

    def test_encoder_mismatch_rejected(self, vocabulary):
        encoder = AsmEncoder(
            EncoderConfig(vocab_size=len(vocabulary), token_dim=8, output_dim=99),
            seed=0,
        )
        with pytest.raises(ModelError):
            PICModel(self._config(vocabulary), seed=0, pretrained_encoder=encoder)

    def test_inference_cache_invalidated_by_training(
        self, vocabulary, small_splits
    ):
        model = PICModel(self._config(vocabulary), seed=0)
        example = small_splits.train[0]
        before = model.predict_proba(example.graph)
        optimizer = Adam(model.parameters(), learning_rate=0.05)
        for _ in range(3):
            optimizer.zero_grad()
            model.loss(example).backward()
            optimizer.step()
        after = model.predict_proba(example.graph)
        assert not np.allclose(before, after)


class TestBaselines:
    def test_all_positive(self, sample_graph):
        predictor = AllPositive()
        assert predictor.predict(sample_graph).all()
        assert (predictor.predict_proba(sample_graph) == 1.0).all()

    def test_fair_coin_rate(self, sample_graph):
        predictor = FairCoin(seed=0)
        draws = np.concatenate([predictor.predict(sample_graph) for _ in range(50)])
        assert 0.4 < draws.mean() < 0.6

    def test_biased_coin_rate(self, sample_graph):
        predictor = BiasedCoin(0.05, seed=0)
        draws = np.concatenate([predictor.predict(sample_graph) for _ in range(100)])
        assert 0.01 < draws.mean() < 0.12

    def test_biased_coin_validates_probability(self):
        with pytest.raises(ValueError):
            BiasedCoin(1.5)

    def test_observed_rate_matches_labels(self, small_splits):
        rate = observed_urb_positive_rate(small_splits.train)
        assert 0.0 <= rate <= 1.0
